//! Differential testing harness: the generated hardware must behave
//! exactly like the reference interpreter.
//!
//! For a packet sequence, the pipeline (with all its parallelism, flushes
//! and buffered writes) must produce, per packet, the same XDP action and
//! the same output bytes as running the program *sequentially* on the VM —
//! and the final map contents must agree. This is the central correctness
//! property of eHDL's consistency machinery (§4.1): hazards may cost
//! cycles, never correctness.

use crate::fault::{FaultConfig, FaultEvent, FaultStats};
use crate::sim::{PipelineSim, SimCounters, SimOptions};
use ehdl_core::{Compiler, CompilerOptions, PipelineDesign};
use ehdl_ebpf::vm::{Vm, XdpAction};
use ehdl_ebpf::Program;

/// A per-packet divergence between the VM and the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Actions differ.
    Action {
        /// Packet sequence number.
        seq: usize,
        /// VM verdict.
        vm: XdpAction,
        /// Pipeline verdict.
        hw: XdpAction,
    },
    /// Output bytes differ.
    Packet {
        /// Packet sequence number.
        seq: usize,
        /// First differing byte offset.
        at: usize,
    },
    /// Final contents of a map differ.
    Map {
        /// Map id.
        map: u32,
    },
    /// The pipeline produced a different number of packets.
    Count {
        /// VM packet count.
        vm: usize,
        /// Pipeline packet count.
        hw: usize,
    },
    /// A compile-time proof (packet-bounds fact or statically-decided
    /// branch from `ehdl_ebpf::absint`) contradicted by a concrete
    /// execution in either engine — an analysis-soundness bug.
    Proof {
        /// Human-readable description of the violated proof.
        detail: String,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Action { seq, vm, hw } => {
                write!(f, "packet {seq}: vm={vm} hw={hw}")
            }
            Divergence::Packet { seq, at } => {
                write!(f, "packet {seq}: output bytes differ at offset {at}")
            }
            Divergence::Map { map } => write!(f, "map {map}: final contents differ"),
            Divergence::Count { vm, hw } => write!(f, "packet counts differ: vm={vm} hw={hw}"),
            Divergence::Proof { detail } => write!(f, "violated proof: {detail}"),
        }
    }
}

/// Compare VM and pipeline over a packet sequence. Returns all
/// divergences (empty = equivalent).
///
/// Packets that the VM *errors* on (e.g. out-of-bounds access guarded only
/// by an elided check) are expected to be dropped by the hardware.
pub fn compare(program: &Program, design: &PipelineDesign, packets: &[Vec<u8>]) -> Vec<Divergence> {
    compare_with(program, design, packets, |_| {})
}

/// Like [`compare`], applying `setup` (host-side control plane writes,
/// e.g. installing routes) to both engines' maps first.
pub fn compare_with(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
) -> Vec<Divergence> {
    compare_ignoring(program, design, packets, setup, &[])
}

/// Like [`compare_with`], skipping the final-content comparison for the
/// listed maps.
///
/// Intended for pure *allocator* state (e.g. DNAT's port counter): a
/// flushed packet's already-committed fetch-and-add is not replayed — the
/// allocation is simply skipped, exactly as in the real hardware — so the
/// counter legitimately runs ahead of the sequential reference while every
/// observable translation stays identical.
pub fn compare_ignoring(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
) -> Vec<Divergence> {
    compare_full(
        program,
        design,
        packets,
        setup,
        ignore_maps,
        SimOptions { freeze_time_ns: Some(1000), check_proofs: true, ..Default::default() },
    )
}

/// Fully parameterized comparison (explicit simulator options, e.g. the
/// dead-state poisoning validation mode).
pub fn compare_full(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
    sim_options: SimOptions,
) -> Vec<Divergence> {
    let mut vm = Vm::new(program);
    vm.set_time_ns(sim_options.freeze_time_ns.unwrap_or(1000));
    // Soundness gate: every fact the abstract interpreter claims about the
    // program is rechecked against the reference execution.
    if let Ok(decoded) = program.decode() {
        vm.check_facts(ehdl_ebpf::absint::analyze(&decoded));
    }
    let mut sim = PipelineSim::with_options(design, sim_options);
    // Both map stores are configured before either engine runs, so the
    // two executions start from identical state.
    setup(vm.maps_mut());
    setup(sim.maps_mut());

    // The engines never communicate until both are drained: run the
    // cycle-level simulation on its own thread while the reference
    // interpreter processes the same trace here.
    let mut vm_actions = Vec::with_capacity(packets.len());
    let mut vm_packets = Vec::with_capacity(packets.len());
    let outs = std::thread::scope(|scope| {
        let sim = &mut sim;
        let hw = scope.spawn(move || {
            for p in packets {
                sim.enqueue(p.clone());
            }
            sim.settle(50_000_000);
            sim.drain()
        });
        for p in packets {
            let mut bytes = p.clone();
            match vm.run(&mut bytes, 0) {
                Ok(out) => {
                    vm_actions.push(out.action);
                    vm_packets.push(bytes);
                }
                Err(_) => {
                    // The hardware drops on access faults.
                    vm_actions.push(XdpAction::Drop);
                    vm_packets.push(p.clone());
                }
            }
        }
        hw.join().expect("simulator thread panicked")
    });

    let mut divs = Vec::new();
    if outs.len() != packets.len() {
        divs.push(Divergence::Count { vm: packets.len(), hw: outs.len() });
        return divs;
    }
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(out.seq as usize, i, "pipeline must preserve packet order");
        if out.action != vm_actions[i] {
            divs.push(Divergence::Action { seq: i, vm: vm_actions[i], hw: out.action });
            continue;
        }
        if out.action.forwards() && out.packet != vm_packets[i] {
            let at = out
                .packet
                .iter()
                .zip(&vm_packets[i])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| out.packet.len().min(vm_packets[i].len()));
            divs.push(Divergence::Packet { seq: i, at });
        }
    }

    // Compare final map contents as sorted key→value sets.
    for def in &program.maps {
        if ignore_maps.contains(&def.id) {
            continue;
        }
        let a = vm.maps().get(def.id).expect("vm map");
        let b = sim.maps().get(def.id).expect("sim map");
        let mut ea: Vec<_> = a.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        let mut eb: Vec<_> = b.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        ea.sort();
        eb.sort();
        if ea != eb {
            divs.push(Divergence::Map { map: def.id });
        }
    }

    for v in vm.proof_violations() {
        divs.push(Divergence::Proof { detail: format!("vm: {v}") });
    }
    let hw_violations = sim.counters().proof_violations;
    if hw_violations > 0 {
        divs.push(Divergence::Proof {
            detail: format!("pipeline: {hw_violations} unguarded accesses left proven bounds"),
        });
    }
    divs
}

/// Result of a fault-injection differential run ([`compare_under_faults`]).
///
/// Equivalence is judged only on *non-fault* packets: a protected design
/// must keep every packet the faults never touched bit-identical to the
/// sequential reference, while fault-affected packets (silently corrupted,
/// or sacrificed by the watchdog) are reported but not counted as
/// divergences.
#[derive(Debug, Clone)]
pub struct FaultCompareReport {
    /// Divergences among packets no fault touched.
    pub divergences: Vec<Divergence>,
    /// Map ids whose final contents differ from the reference. Meaningful
    /// only when no fault reached map state (`affected` empty and
    /// `map_storage_corrupted` false); otherwise expected to be non-empty.
    pub map_divergences: Vec<u32>,
    /// Sequence numbers of packets a fault corrupted or killed.
    pub affected: Vec<u64>,
    /// Non-affected packets that never completed (pipeline wedged without
    /// a watchdog).
    pub missing: u64,
    /// Whether map backing storage took an unrecovered upset.
    pub map_storage_corrupted: bool,
    /// Fault engine tallies for the run.
    pub stats: FaultStats,
    /// Full fault event log (cycle/site/kind/outcome per injection).
    pub log: Vec<FaultEvent>,
    /// Simulator counters (fault replays, watchdog resets, ...).
    pub counters: SimCounters,
    /// Fraction of cycles the pipeline was not wedged.
    pub availability: f64,
}

/// Differential VM-vs-pipeline run with a fault-injection engine attached.
///
/// Runs the sequential reference fault-free, runs the pipeline under the
/// seeded campaign `fault`, and compares per packet — excluding the
/// packets the engine reports as fault-affected. Outcomes are matched by
/// sequence number (watchdog recovery can retire packets out of order).
pub fn compare_under_faults(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
    fault: FaultConfig,
) -> FaultCompareReport {
    let sim_options = SimOptions { freeze_time_ns: Some(1000), ..Default::default() };
    let mut vm = Vm::new(program);
    vm.set_time_ns(1000);
    let mut sim = PipelineSim::with_options(design, sim_options);
    setup(vm.maps_mut());
    setup(sim.maps_mut());
    sim.attach_faults(fault);

    let mut vm_actions = Vec::with_capacity(packets.len());
    let mut vm_packets = Vec::with_capacity(packets.len());
    for p in packets {
        let mut bytes = p.clone();
        match vm.run(&mut bytes, 0) {
            Ok(out) => {
                vm_actions.push(out.action);
                vm_packets.push(bytes);
            }
            Err(_) => {
                vm_actions.push(XdpAction::Drop);
                vm_packets.push(p.clone());
            }
        }
    }

    for p in packets {
        sim.enqueue(p.clone());
    }
    sim.settle(50_000_000);
    let mut outs = sim.drain();
    outs.sort_by_key(|o| o.seq);
    sim.finalize_faults();

    let (affected, map_storage_corrupted, stats, log) = match sim.fault_engine() {
        Some(e) => {
            (e.affected_seqs().to_vec(), e.map_storage_corrupted(), *e.stats(), e.log().to_vec())
        }
        None => (Vec::new(), false, FaultStats::default(), Vec::new()),
    };

    let mut divs = Vec::new();
    let mut missing = 0u64;
    let mut next = outs.iter().peekable();
    for seq in 0..packets.len() as u64 {
        let out = match next.peek() {
            Some(o) if o.seq == seq => next.next().expect("peeked"),
            _ => {
                if affected.binary_search(&seq).is_err() {
                    missing += 1;
                }
                continue;
            }
        };
        if affected.binary_search(&seq).is_ok() {
            continue;
        }
        let i = seq as usize;
        if out.action != vm_actions[i] {
            divs.push(Divergence::Action { seq: i, vm: vm_actions[i], hw: out.action });
            continue;
        }
        if out.action.forwards() && out.packet != vm_packets[i] {
            let at = out
                .packet
                .iter()
                .zip(&vm_packets[i])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| out.packet.len().min(vm_packets[i].len()));
            divs.push(Divergence::Packet { seq: i, at });
        }
    }

    let mut map_divergences = Vec::new();
    for def in &program.maps {
        if ignore_maps.contains(&def.id) {
            continue;
        }
        let (Some(a), Some(b)) = (vm.maps().get(def.id), sim.maps().get(def.id)) else {
            continue;
        };
        let mut ea: Vec<_> = a.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        let mut eb: Vec<_> = b.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        ea.sort();
        eb.sort();
        if ea != eb {
            map_divergences.push(def.id);
        }
    }

    FaultCompareReport {
        divergences: divs,
        map_divergences,
        affected,
        missing,
        map_storage_corrupted,
        stats,
        log,
        counters: *sim.counters(),
        availability: sim.availability(),
    }
}

/// Compile `program` with `options` and differentially test it on
/// `packets`, panicking with a readable report on divergence.
pub fn assert_equivalent(program: &Program, options: CompilerOptions, packets: &[Vec<u8>]) {
    assert_equivalent_with(program, options, packets, |_| {});
}

/// [`assert_equivalent`] with host-side map setup.
pub fn assert_equivalent_with(
    program: &Program,
    options: CompilerOptions,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
) {
    assert_equivalent_ignoring(program, options, packets, setup, &[]);
}

/// [`assert_equivalent_with`] with an allocator-map ignore list.
pub fn assert_equivalent_ignoring(
    program: &Program,
    options: CompilerOptions,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
) {
    let design = Compiler::with_options(options)
        .compile(program)
        .unwrap_or_else(|e| panic!("compile {}: {e}", program.name));
    let divs = compare_ignoring(program, &design, packets, setup, ignore_maps);
    if !divs.is_empty() {
        let report: Vec<String> = divs.iter().take(5).map(|d| d.to_string()).collect();
        panic!(
            "pipeline diverges from VM for `{}` ({} issues):\n  {}",
            program.name,
            divs.len(),
            report.join("\n  ")
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::asm::Asm;
    use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};

    #[test]
    fn branching_program_equivalent() {
        let mut a = Asm::new();
        let drop = a.new_label();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::W, 8, 1, 4);
        a.mov64_reg(2, 7);
        a.alu64_imm(AluOp::Add, 2, 14);
        a.jmp_reg(JmpOp::Jgt, 2, 8, drop);
        a.load(MemSize::B, 3, 7, 12);
        a.jmp_imm(JmpOp::Jeq, 3, 8, drop);
        a.mov64_imm(0, 3);
        a.exit();
        a.bind(drop);
        a.mov64_imm(0, 1);
        a.exit();
        let p = Program::from_insns(a.into_insns());
        let mut packets: Vec<Vec<u8>> = (0..32).map(|i| vec![i as u8; 64]).collect();
        packets.push(vec![0; 10]); // short packet exercises the elided check
        assert_equivalent(&p, CompilerOptions::default(), &packets);
    }

    #[test]
    fn packet_rewrite_equivalent() {
        let mut a = Asm::new();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::H, 2, 7, 0);
        a.load(MemSize::H, 3, 7, 6);
        a.store_reg(MemSize::H, 7, 0, 3);
        a.store_reg(MemSize::H, 7, 6, 2);
        a.mov64_imm(0, 3);
        a.exit();
        let p = Program::from_insns(a.into_insns());
        let packets: Vec<Vec<u8>> = (0..16)
            .map(|i| {
                let mut v = vec![0u8; 64];
                v[0] = i;
                v[6] = 0xf0 | i;
                v
            })
            .collect();
        assert_equivalent(&p, CompilerOptions::default(), &packets);
    }
}
