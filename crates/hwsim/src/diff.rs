//! Differential testing harness: the generated hardware must behave
//! exactly like the reference interpreter.
//!
//! For a packet sequence, the pipeline (with all its parallelism, flushes
//! and buffered writes) must produce, per packet, the same XDP action and
//! the same output bytes as running the program *sequentially* on the VM —
//! and the final map contents must agree. This is the central correctness
//! property of eHDL's consistency machinery (§4.1): hazards may cost
//! cycles, never correctness.

use crate::batch::{coalesce_ops, expand_results, CoalescedOp, MapShape};
use crate::ctrl::{CtrlOptions, HostOp, HostOpResult};
use crate::fault::{FaultConfig, FaultEvent, FaultStats, ReplicaFaultConfig};
use crate::shared::{check_linearizable, ShardedNic, SharedMapOptions};
use crate::sim::{PipelineSim, SimCounters, SimOptions};
use ehdl_core::{Compiler, CompilerOptions, PipelineDesign};
use ehdl_ebpf::maps::{MapError, MapKind, MapStore};
use ehdl_ebpf::vm::{Vm, XdpAction};
use ehdl_ebpf::Program;

/// A per-packet divergence between the VM and the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Actions differ.
    Action {
        /// Packet sequence number.
        seq: usize,
        /// VM verdict.
        vm: XdpAction,
        /// Pipeline verdict.
        hw: XdpAction,
    },
    /// Output bytes differ.
    Packet {
        /// Packet sequence number.
        seq: usize,
        /// First differing byte offset.
        at: usize,
    },
    /// Final contents of a map differ.
    Map {
        /// Map id.
        map: u32,
    },
    /// The pipeline produced a different number of packets.
    Count {
        /// VM packet count.
        vm: usize,
        /// Pipeline packet count.
        hw: usize,
    },
    /// A compile-time proof (packet-bounds fact or statically-decided
    /// branch from `ehdl_ebpf::absint`) contradicted by a concrete
    /// execution in either engine — an analysis-soundness bug.
    Proof {
        /// Human-readable description of the violated proof.
        detail: String,
    },
    /// A host control-channel op returned a different result than the
    /// same op applied at the same position of the sequential reference.
    HostOp {
        /// Submission id (op order in the event schedule).
        id: u64,
        /// Human-readable mismatch description.
        detail: String,
    },
    /// The shared-map access history of a sharded run is not per-key
    /// linearizable — a replica observed a value canonical storage never
    /// held at that point (fabric or swap-discipline bug).
    Coherence {
        /// Human-readable violation description.
        detail: String,
    },
    /// A replica-failure invariant broke: a packet was lost without
    /// being accounted, a failure went undetected or blew its detection
    /// budget, or a loss hit a flow that never belonged to a failed
    /// replica.
    Loss {
        /// Human-readable violation description.
        detail: String,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Action { seq, vm, hw } => {
                write!(f, "packet {seq}: vm={vm} hw={hw}")
            }
            Divergence::Packet { seq, at } => {
                write!(f, "packet {seq}: output bytes differ at offset {at}")
            }
            Divergence::Map { map } => write!(f, "map {map}: final contents differ"),
            Divergence::Count { vm, hw } => write!(f, "packet counts differ: vm={vm} hw={hw}"),
            Divergence::Proof { detail } => write!(f, "violated proof: {detail}"),
            Divergence::HostOp { id, detail } => write!(f, "host op {id}: {detail}"),
            Divergence::Coherence { detail } => write!(f, "coherence: {detail}"),
            Divergence::Loss { detail } => write!(f, "loss: {detail}"),
        }
    }
}

/// One element of an interleaved packet / host-op schedule
/// ([`compare_with_ops`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostEvent {
    /// A packet arriving on the wire.
    Packet(Vec<u8>),
    /// A host op submitted at this position in the arrival order: it must
    /// behave as if it executed after every preceding packet and before
    /// every following one.
    Op(HostOp),
}

/// Apply `op` directly to a map store, returning the result the hardware
/// control channel is required to produce for the same op at the same
/// position — the sequential-reference semantics of a host op.
pub fn apply_host_op_to_store(maps: &mut MapStore, op: &HostOp) -> Result<HostOpResult, MapError> {
    match op {
        HostOp::Lookup { map, key } => {
            let m = maps.get_mut(*map).expect("host op targets a known map");
            match m.lookup(key)? {
                Some(slot) => Ok(HostOpResult::Value(Some(m.value(slot).to_vec()))),
                None => Ok(HostOpResult::Value(None)),
            }
        }
        HostOp::Update { map, key, value, flags } => maps
            .get_mut(*map)
            .expect("host op targets a known map")
            .update(key, value, *flags)
            .map(|_| HostOpResult::Updated),
        HostOp::Delete { map, key } => maps
            .get_mut(*map)
            .expect("host op targets a known map")
            .delete(key)
            .map(|()| HostOpResult::Deleted),
        HostOp::Dump { map } => {
            let m = maps.get(*map).expect("host op targets a known map");
            Ok(HostOpResult::Entries(m.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect()))
        }
    }
}

/// Compare VM and pipeline over a packet sequence. Returns all
/// divergences (empty = equivalent).
///
/// Packets that the VM *errors* on (e.g. out-of-bounds access guarded only
/// by an elided check) are expected to be dropped by the hardware.
pub fn compare(program: &Program, design: &PipelineDesign, packets: &[Vec<u8>]) -> Vec<Divergence> {
    compare_with(program, design, packets, |_| {})
}

/// Like [`compare`], applying `setup` (host-side control plane writes,
/// e.g. installing routes) to both engines' maps first.
pub fn compare_with(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
) -> Vec<Divergence> {
    compare_ignoring(program, design, packets, setup, &[])
}

/// Like [`compare_with`], skipping the final-content comparison for the
/// listed maps.
///
/// Intended for pure *allocator* state (e.g. DNAT's port counter): a
/// flushed packet's already-committed fetch-and-add is not replayed — the
/// allocation is simply skipped, exactly as in the real hardware — so the
/// counter legitimately runs ahead of the sequential reference while every
/// observable translation stays identical.
pub fn compare_ignoring(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
) -> Vec<Divergence> {
    compare_full(
        program,
        design,
        packets,
        setup,
        ignore_maps,
        SimOptions { freeze_time_ns: Some(1000), check_proofs: true, ..Default::default() },
    )
}

/// Fully parameterized comparison (explicit simulator options, e.g. the
/// dead-state poisoning validation mode).
pub fn compare_full(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
    sim_options: SimOptions,
) -> Vec<Divergence> {
    let mut vm = Vm::new(program);
    vm.set_time_ns(sim_options.freeze_time_ns.unwrap_or(1000));
    // Soundness gate: every fact the abstract interpreter claims about the
    // program is rechecked against the reference execution.
    if let Ok(decoded) = program.decode() {
        vm.check_facts(ehdl_ebpf::absint::analyze(&decoded));
    }
    let mut sim = PipelineSim::with_options(design, sim_options);
    // Both map stores are configured before either engine runs, so the
    // two executions start from identical state.
    setup(vm.maps_mut());
    setup(sim.maps_mut());

    // The engines never communicate until both are drained: run the
    // cycle-level simulation on its own thread while the reference
    // interpreter processes the same trace here.
    let mut vm_actions = Vec::with_capacity(packets.len());
    let mut vm_packets = Vec::with_capacity(packets.len());
    let outs = std::thread::scope(|scope| {
        let sim = &mut sim;
        let hw = scope.spawn(move || {
            for p in packets {
                sim.enqueue(p.clone());
            }
            sim.settle(50_000_000);
            sim.drain()
        });
        for p in packets {
            let mut bytes = p.clone();
            match vm.run(&mut bytes, 0) {
                Ok(out) => {
                    vm_actions.push(out.action);
                    vm_packets.push(bytes);
                }
                Err(_) => {
                    // The hardware drops on access faults.
                    vm_actions.push(XdpAction::Drop);
                    vm_packets.push(p.clone());
                }
            }
        }
        hw.join().expect("simulator thread panicked")
    });

    let mut divs = Vec::new();
    if outs.len() != packets.len() {
        divs.push(Divergence::Count { vm: packets.len(), hw: outs.len() });
        return divs;
    }
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(out.seq as usize, i, "pipeline must preserve packet order");
        if out.action != vm_actions[i] {
            divs.push(Divergence::Action { seq: i, vm: vm_actions[i], hw: out.action });
            continue;
        }
        if out.action.forwards() && out.packet != vm_packets[i] {
            let at = out
                .packet
                .iter()
                .zip(&vm_packets[i])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| out.packet.len().min(vm_packets[i].len()));
            divs.push(Divergence::Packet { seq: i, at });
        }
    }

    // Compare final map contents as sorted key→value sets.
    for def in &program.maps {
        if ignore_maps.contains(&def.id) {
            continue;
        }
        let a = vm.maps().get(def.id).expect("vm map");
        let b = sim.maps().get(def.id).expect("sim map");
        let mut ea: Vec<_> = a.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        let mut eb: Vec<_> = b.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        ea.sort();
        eb.sort();
        if ea != eb {
            divs.push(Divergence::Map { map: def.id });
        }
    }

    for v in vm.proof_violations() {
        divs.push(Divergence::Proof { detail: format!("vm: {v}") });
    }
    let hw_violations = sim.counters().proof_violations;
    if hw_violations > 0 {
        divs.push(Divergence::Proof {
            detail: format!("pipeline: {hw_violations} unguarded accesses left proven bounds"),
        });
    }
    divs
}

/// How a map's final contents are reconstructed from N replicas for
/// comparison against the sequential reference ([`compare_sharded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Union of all replicas' entries, with exact duplicates collapsed.
    /// Correct for flow-partitioned hash-like maps: RSS guarantees each
    /// key is only ever *written* by one replica, so two replicas holding
    /// the same key with different values is itself a divergence.
    Union,
    /// Per-key, per-64-bit-word delta sum: `initial + Σ (replica −
    /// initial)`. Correct for private counter arrays updated with
    /// commutative atomic adds.
    SumDelta,
    /// Compare the canonical shared copy directly (maps listed in
    /// [`SharedMapOptions::shared_maps`] have exactly one storage copy).
    Direct,
    /// Skip the map (e.g. a per-replica allocator whose assignments are
    /// order-dependent by design).
    Ignore,
}

/// Little-endian u64 word `w` of a value, zero-padded at the tail.
fn value_word(v: &[u8], w: usize) -> u64 {
    let mut b = [0u8; 8];
    let at = w * 8;
    if at < v.len() {
        let n = (v.len() - at).min(8);
        b[..n].copy_from_slice(&v[at..at + n]);
    }
    u64::from_le_bytes(b)
}

/// Differential check of a [`ShardedNic`] run against the sequential
/// reference: the same trace run packet-by-packet on the VM, with host
/// ops applied at their schedule positions.
///
/// Per packet, the owning replica must produce the VM's action and
/// output bytes (RSS steering never changes verdicts — only which
/// replica renders them). Final map state is reconstructed per
/// [`MergeStrategy`] — callers override per map via `merge`; unlisted
/// maps default to [`MergeStrategy::Direct`] for shared maps,
/// [`MergeStrategy::SumDelta`] for arrays, and [`MergeStrategy::Union`]
/// otherwise. The shared-map access history is additionally checked for
/// per-key linearizability ([`check_linearizable`]), and host-op results
/// must match the reference. The run must also be lossless: any RX-queue
/// drop panics, since a silently shorter trace would vacuously pass.
///
/// # Panics
///
/// Panics if the sharded run drops a packet or the simulator thread
/// panics.
#[allow(clippy::too_many_arguments)]
pub fn compare_sharded(
    program: &Program,
    design: &PipelineDesign,
    replicas: usize,
    seed: u64,
    packets: &[Vec<u8>],
    ops: &[(usize, HostOp)],
    setup: impl Fn(&mut MapStore),
    merge: &[(u32, MergeStrategy)],
    fabric: SharedMapOptions,
    sim_options: SimOptions,
) -> Vec<Divergence> {
    use std::collections::btree_map::Entry;
    use std::collections::BTreeMap;

    let mut vm = Vm::new(program);
    vm.set_time_ns(sim_options.freeze_time_ns.unwrap_or(1000));
    if let Ok(decoded) = program.decode() {
        vm.check_facts(ehdl_ebpf::absint::analyze(&decoded));
    }
    let mut fabric = fabric;
    fabric.log_events = true;
    let shared_ids = fabric.shared_maps.clone();
    let mut nic = ShardedNic::new(design, replicas, seed, sim_options, fabric);
    setup(vm.maps_mut());
    nic.setup_maps(&setup);
    // Baseline for delta merging and the linearizability replay.
    let mut initial = MapStore::new(&design.maps);
    setup(&mut initial);

    // Sequential reference: packets in arrival order, each op applied
    // once the packets before its position have been processed.
    let mut sorted_ops: Vec<(usize, HostOp)> = ops.to_vec();
    sorted_ops.sort_by_key(|&(at, _)| at);
    let mut next_op = 0usize;
    let mut vm_actions = Vec::with_capacity(packets.len());
    let mut vm_packets = Vec::with_capacity(packets.len());
    let mut vm_op_results = Vec::with_capacity(sorted_ops.len());
    for (i, p) in packets.iter().enumerate() {
        while next_op < sorted_ops.len() && sorted_ops[next_op].0 <= i {
            vm_op_results.push(apply_host_op_to_store(vm.maps_mut(), &sorted_ops[next_op].1));
            next_op += 1;
        }
        let mut bytes = p.clone();
        match vm.run(&mut bytes, 0) {
            Ok(out) => {
                vm_actions.push(out.action);
                vm_packets.push(bytes);
            }
            Err(_) => {
                vm_actions.push(XdpAction::Drop);
                vm_packets.push(p.clone());
            }
        }
    }
    while next_op < sorted_ops.len() {
        vm_op_results.push(apply_host_op_to_store(vm.maps_mut(), &sorted_ops[next_op].1));
        next_op += 1;
    }

    let report = nic.run_with_ops(packets.iter().cloned(), &sorted_ops);
    assert_eq!(
        report.dropped,
        vec![0; replicas],
        "sharded differential runs must be lossless (RX overflow would shorten the trace)"
    );

    let mut divs = Vec::new();
    let total: usize = report.outcomes.len();
    if total != packets.len() {
        divs.push(Divergence::Count { vm: packets.len(), hw: total });
        return divs;
    }
    // Re-sequence per-replica completions into global arrival order.
    let mut hw = vec![None; packets.len()];
    for (_, g, out) in &report.outcomes {
        hw[*g as usize] = Some(out);
    }
    for (i, out) in hw.iter().enumerate() {
        let out = out.as_ref().expect("every arrival completes exactly once");
        if out.action != vm_actions[i] {
            divs.push(Divergence::Action { seq: i, vm: vm_actions[i], hw: out.action });
            continue;
        }
        if out.action.forwards() && out.packet != vm_packets[i] {
            let at = out
                .packet
                .iter()
                .zip(&vm_packets[i])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| out.packet.len().min(vm_packets[i].len()));
            divs.push(Divergence::Packet { seq: i, at });
        }
    }

    for (i, (res, vm_res)) in report.host_completions.iter().zip(&vm_op_results).enumerate() {
        if &res.result != vm_res {
            divs.push(Divergence::HostOp {
                id: i as u64,
                detail: format!("shared store returned {:?}, reference {:?}", res.result, vm_res),
            });
        }
    }

    for def in &design.maps {
        let strategy = merge.iter().find(|(m, _)| *m == def.id).map(|&(_, s)| s).unwrap_or(
            if shared_ids.contains(&def.id) {
                MergeStrategy::Direct
            } else {
                match def.kind {
                    MapKind::Array | MapKind::PerCpuArray => MergeStrategy::SumDelta,
                    _ => MergeStrategy::Union,
                }
            },
        );
        let vm_map = vm.maps().get(def.id).expect("vm map");
        let vm_entries = || -> BTreeMap<Vec<u8>, Vec<u8>> {
            vm_map.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect()
        };
        let matches = match strategy {
            MergeStrategy::Ignore => true,
            MergeStrategy::Direct => {
                let m = nic.shared_store().get(def.id).expect("shared map");
                let merged: BTreeMap<Vec<u8>, Vec<u8>> =
                    m.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
                merged == vm_entries()
            }
            MergeStrategy::Union => {
                let mut merged: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
                let mut conflict = false;
                for r in 0..replicas {
                    let m = nic.sim(r).maps().get(def.id).expect("replica map");
                    for (_, k, v) in m.iter() {
                        match merged.entry(k.to_vec()) {
                            Entry::Occupied(e) => conflict |= e.get() != v,
                            Entry::Vacant(e) => {
                                e.insert(v.to_vec());
                            }
                        }
                    }
                }
                !conflict && merged == vm_entries()
            }
            MergeStrategy::SumDelta => {
                let init = initial.get(def.id).expect("initial map");
                let words = def.value_size.div_ceil(8) as usize;
                init.iter().all(|(slot, key, iv)| {
                    let vm_v = vm_map.iter().find(|(_, k, _)| *k == key).map(|(_, _, v)| v);
                    let Some(vm_v) = vm_v else { return false };
                    (0..words).all(|w| {
                        let mut acc = value_word(iv, w);
                        for r in 0..replicas {
                            let rv =
                                nic.sim(r).maps().get(def.id).expect("replica map").value(slot);
                            acc =
                                acc.wrapping_add(value_word(rv, w).wrapping_sub(value_word(iv, w)));
                        }
                        acc == value_word(vm_v, w)
                    })
                })
            }
        };
        if !matches {
            divs.push(Divergence::Map { map: def.id });
        }
    }

    if let Err(v) = check_linearizable(&initial, &shared_ids, &report.events) {
        divs.push(Divergence::Coherence { detail: v.to_string() });
    }

    for v in vm.proof_violations() {
        divs.push(Divergence::Proof { detail: format!("vm: {v}") });
    }
    for r in 0..replicas {
        let hw_violations = nic.sim(r).counters().proof_violations;
        if hw_violations > 0 {
            divs.push(Divergence::Proof {
                detail: format!(
                    "replica {r}: {hw_violations} unguarded accesses left proven bounds"
                ),
            });
        }
    }
    divs
}

/// Assert that a sharded run is equivalent to the sequential reference
/// ([`compare_sharded`] with an empty divergence list), panicking with
/// every divergence otherwise.
#[allow(clippy::too_many_arguments)]
pub fn assert_equivalent_sharded(
    program: &Program,
    design: &PipelineDesign,
    replicas: usize,
    seed: u64,
    packets: &[Vec<u8>],
    ops: &[(usize, HostOp)],
    setup: impl Fn(&mut MapStore),
    merge: &[(u32, MergeStrategy)],
    fabric: SharedMapOptions,
) -> Vec<Divergence> {
    let sim_options = SimOptions { freeze_time_ns: Some(1000), ..Default::default() };
    let divs = compare_sharded(
        program,
        design,
        replicas,
        seed,
        packets,
        ops,
        setup,
        merge,
        fabric,
        sim_options,
    );
    assert!(
        divs.is_empty(),
        "sharded run diverged from the sequential reference:\n{}",
        divs.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
    );
    divs
}

/// Result of a fail-over differential run ([`compare_sharded_failover`]).
#[derive(Debug)]
pub struct FailoverDiff {
    /// Divergences found (empty means the run passed every check).
    pub divergences: Vec<Divergence>,
    /// The sharded run's full report, including [`ShardReport::failover`](crate::shared::ShardReport::failover)
    /// stats, for callers that gate on availability or detection latency.
    pub report: crate::shared::ShardReport,
}

/// Differential check of a [`ShardedNic`] run *under replica failures*
/// against the fault-free sequential reference.
///
/// The reference VM processes every packet; the sharded run takes the
/// same trace with `schedule`'s replica faults injected. Correctness
/// under failure means:
///
/// * **Zero silent loss** — every offered packet is completed, drained,
///   discarded, or an accounted ingress drop; the sums must close.
/// * **Blast-radius containment** — every lost packet belongs to a flow
///   homed on a replica that failed ([`ShardReport::affected`](crate::shared::ShardReport::affected)); a loss
///   outside the affected set means the fail-over leaked into healthy
///   traffic.
/// * **Survivor equivalence** — every completed packet *outside* the
///   affected set must be bit-equivalent (action and output bytes) to
///   the sequential reference. Affected flows are exempt: losing part of
///   a session legitimately changes stateful verdicts downstream.
/// * **Bounded detection** — every injected (non-masked) failure is
///   detected, and never later than the watchdog budget.
/// * **Coherence** — the surviving shared-map history stays per-key
///   linearizable ([`check_linearizable`]).
///
/// Final map state is *not* compared: a failure legitimately loses
/// private state the [`MergeStrategy`] cannot reconstruct. Callers who
/// need map equivalence should use [`compare_sharded`] on a fault-free
/// run.
#[allow(clippy::too_many_arguments)]
pub fn compare_sharded_failover(
    program: &Program,
    design: &PipelineDesign,
    replicas: usize,
    seed: u64,
    packets: &[Vec<u8>],
    rfault: ReplicaFaultConfig,
    setup: impl Fn(&mut MapStore),
    merge: &[(u32, MergeStrategy)],
    fabric: SharedMapOptions,
) -> FailoverDiff {
    let sim_options = SimOptions { freeze_time_ns: Some(1000), ..Default::default() };
    let mut vm = Vm::new(program);
    vm.set_time_ns(1000);
    let mut fabric = fabric;
    fabric.log_events = true;
    let shared_ids = fabric.shared_maps.clone();
    let mut nic = ShardedNic::new(design, replicas, seed, sim_options, fabric);
    nic.attach_replica_faults(rfault.clone(), merge.to_vec());
    setup(vm.maps_mut());
    nic.setup_maps(&setup);
    let mut initial = MapStore::new(&design.maps);
    setup(&mut initial);

    // Fault-free sequential reference over the whole trace.
    let mut vm_actions = Vec::with_capacity(packets.len());
    let mut vm_packets = Vec::with_capacity(packets.len());
    for p in packets {
        let mut bytes = p.clone();
        match vm.run(&mut bytes, 0) {
            Ok(out) => {
                vm_actions.push(out.action);
                vm_packets.push(bytes);
            }
            Err(_) => {
                vm_actions.push(XdpAction::Drop);
                vm_packets.push(p.clone());
            }
        }
    }

    let report = nic.run(packets.iter().cloned());
    let mut divs = Vec::new();

    // Zero silent loss: the accounting must close exactly.
    let offered = packets.len() as u64;
    let completed: u64 = report.completed.iter().sum();
    let drained = report.drained.len() as u64;
    let discarded = report.discarded.len() as u64;
    let dropped: u64 = report.dropped.iter().sum();
    if offered != completed + drained + discarded + dropped {
        divs.push(Divergence::Loss {
            detail: format!(
                "accounting leak: offered {offered} != completed {completed} + drained {drained} \
                 + discarded {discarded} + dropped {dropped}"
            ),
        });
    }

    // Blast-radius containment: losses only inside the affected set.
    let affected: std::collections::BTreeSet<u64> = report.affected.iter().copied().collect();
    for g in report.drained.iter().chain(&report.discarded) {
        if !affected.contains(g) {
            divs.push(Divergence::Loss {
                detail: format!("packet {g} lost outside the affected flow set"),
            });
        }
    }

    // Bounded detection: every non-masked injection is caught in budget.
    let f = report.failover;
    if f.detected + f.masked_brownouts < f.injected {
        divs.push(Divergence::Loss {
            detail: format!(
                "undetected failures: injected {}, detected {}, masked {}",
                f.injected, f.detected, f.masked_brownouts
            ),
        });
    }
    if f.detection_latency_max > rfault.watchdog_budget {
        divs.push(Divergence::Loss {
            detail: format!(
                "detection latency {} blew the watchdog budget {}",
                f.detection_latency_max, rfault.watchdog_budget
            ),
        });
    }

    // Survivor equivalence: completed non-affected packets must be
    // bit-equivalent to the fault-free reference.
    for (_, g, out) in &report.outcomes {
        let i = *g as usize;
        if i >= packets.len() || affected.contains(g) {
            continue;
        }
        if out.action != vm_actions[i] {
            divs.push(Divergence::Action { seq: i, vm: vm_actions[i], hw: out.action });
            continue;
        }
        if out.action.forwards() && out.packet != vm_packets[i] {
            let at = out
                .packet
                .iter()
                .zip(&vm_packets[i])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| out.packet.len().min(vm_packets[i].len()));
            divs.push(Divergence::Packet { seq: i, at });
        }
    }

    if let Err(v) = check_linearizable(&initial, &shared_ids, &report.events) {
        divs.push(Divergence::Coherence { detail: v.to_string() });
    }

    FailoverDiff { divergences: divs, report }
}

/// Differential run with *live* host ops interleaved into the packet
/// stream.
///
/// The pipeline side attaches a control channel and submits each op at its
/// schedule position while packets are still in flight, so ops race the
/// pipeline's hazard machinery for real — including writes landing inside
/// open RAW windows. The reference side is strictly sequential: each op is
/// applied to the VM's map store between the packets it is scheduled
/// between. Divergences cover per-packet outcomes, per-op results, and
/// final map contents.
pub fn compare_with_ops(
    program: &Program,
    design: &PipelineDesign,
    events: &[HostEvent],
    setup: impl Fn(&mut MapStore),
    ignore_maps: &[u32],
    ctrl: CtrlOptions,
) -> Vec<Divergence> {
    compare_ops_core(program, design, events, events, &|r| r, &setup, ignore_maps, ctrl)
}

/// Like [`compare_with_ops`], but the pipeline executes the *coalesced*
/// rewrite of the schedule ([`crate::batch::coalesce_ops`] applied per op
/// train) while the sequential VM reference still executes the original
/// ops one by one. Carrier completions are expanded back to per-original
/// results via the recorded answer mapping, so a pass proves the serving
/// layer's batching is bit-equivalent to sequential submission — same
/// per-packet outcomes, same per-op results, same final maps.
pub fn compare_with_ops_coalesced(
    program: &Program,
    design: &PipelineDesign,
    events: &[HostEvent],
    setup: impl Fn(&mut MapStore),
    ignore_maps: &[u32],
    ctrl: CtrlOptions,
) -> Vec<Divergence> {
    let shapes: std::collections::BTreeMap<u32, MapShape> = program
        .maps
        .iter()
        .map(|d| {
            (d.id, MapShape { key_size: d.key_size as usize, value_size: d.value_size as usize })
        })
        .collect();
    let shape = |id: u32| shapes.get(&id).copied();

    // Rewrite each op train; carriers keep the train's barrier position.
    // `carriers` lines up with hw submission order (the ctrl channel is a
    // FIFO), `bases` records each train's offset into the original op
    // numbering so per-train answer indices can be scattered globally.
    let mut hw_events: Vec<HostEvent> = Vec::with_capacity(events.len());
    let mut carriers: Vec<CoalescedOp> = Vec::new();
    let mut carrier_train: Vec<usize> = Vec::new(); // carrier -> train id
    let mut bases: Vec<usize> = Vec::new(); // train id -> original-op base
    let mut train: Vec<HostOp> = Vec::new();
    let mut nops_original = 0usize;
    let mut flush = |train: &mut Vec<HostOp>, hw_events: &mut Vec<HostEvent>, base: usize| {
        if train.is_empty() {
            return;
        }
        let (coalesced, _) = coalesce_ops(train, shape);
        let tid = bases.len();
        bases.push(base);
        for c in coalesced {
            hw_events.push(HostEvent::Op(c.op.clone()));
            carriers.push(c);
            carrier_train.push(tid);
        }
        train.clear();
    };
    for ev in events {
        match ev {
            HostEvent::Packet(p) => {
                let base = nops_original - train.len();
                flush(&mut train, &mut hw_events, base);
                hw_events.push(HostEvent::Packet(p.clone()));
            }
            HostEvent::Op(op) => {
                train.push(op.clone());
                nops_original += 1;
            }
        }
    }
    let base = nops_original - train.len();
    flush(&mut train, &mut hw_events, base);

    // Expand carrier completions (in FIFO submission order) back to
    // original per-op results.
    let expand = move |results: Vec<Result<HostOpResult, MapError>>| {
        if results.len() != carriers.len() {
            // Signalled as a count divergence by the core; return the raw
            // results so the caller still reports the mismatch.
            return results;
        }
        let mut out: Vec<Option<Result<HostOpResult, MapError>>> = vec![None; nops_original];
        let mut i = 0usize;
        while i < carriers.len() {
            let tid = carrier_train[i];
            let mut j = i;
            while j < carriers.len() && carrier_train[j] == tid {
                j += 1;
            }
            let expanded = expand_results(&carriers[i..j], &results[i..j]);
            for (k, r) in expanded.into_iter().enumerate() {
                out[bases[tid] + k] = Some(r);
            }
            i = j;
        }
        out.into_iter()
            .map(|r| r.expect("every original op is answered by exactly one carrier"))
            .collect()
    };

    compare_ops_core(program, design, &hw_events, events, &expand, &setup, ignore_maps, ctrl)
}

/// Per-op results as the host sees them, in submit order.
type OpResults = Vec<Result<HostOpResult, MapError>>;

/// Shared engine of [`compare_with_ops`] / [`compare_with_ops_coalesced`]:
/// feed `hw_events` to the pipeline, run `ref_events` sequentially on the
/// VM, map the pipeline's op completions through `expand` (identity for
/// the uncoalesced harness), and diff outcomes, op results and final maps.
#[allow(clippy::too_many_arguments)]
fn compare_ops_core(
    program: &Program,
    design: &PipelineDesign,
    hw_events: &[HostEvent],
    ref_events: &[HostEvent],
    expand: &dyn Fn(OpResults) -> OpResults,
    setup: &dyn Fn(&mut MapStore),
    ignore_maps: &[u32],
    ctrl: CtrlOptions,
) -> Vec<Divergence> {
    let sim_options =
        SimOptions { freeze_time_ns: Some(1000), check_proofs: true, ..Default::default() };
    let mut vm = Vm::new(program);
    vm.set_time_ns(1000);
    if let Ok(decoded) = program.decode() {
        vm.check_facts(ehdl_ebpf::absint::analyze(&decoded));
    }
    let mut sim = PipelineSim::with_options(design, sim_options);
    setup(vm.maps_mut());
    setup(sim.maps_mut());
    let nops = hw_events.iter().filter(|e| matches!(e, HostEvent::Op(_))).count();
    // The whole schedule is submitted up front, so the queue must hold
    // every op; arrival latency and fences still govern when each applies.
    sim.attach_ctrl(CtrlOptions { queue_depth: ctrl.queue_depth.max(nops), ..ctrl });

    let npackets = hw_events.len() - nops;
    let mut divs = Vec::new();

    // Pipeline side: feed the schedule in order (packets enqueue, ops
    // submit — each op's barrier is the sequence number of the next
    // packet), then let everything drain together.
    for ev in hw_events {
        match ev {
            HostEvent::Packet(p) => {
                let mut attempts = 0u32;
                while !sim.enqueue(p.clone()) {
                    sim.settle(1_000_000);
                    attempts += 1;
                    assert!(attempts < 64, "rx queue never drained");
                }
            }
            HostEvent::Op(op) => {
                if let Err(e) = sim.submit_host_op(op.clone()) {
                    divs.push(Divergence::HostOp {
                        id: u64::MAX,
                        detail: format!("submission rejected: {e}"),
                    });
                }
            }
        }
    }
    sim.settle(50_000_000);
    let outs = sim.drain();
    let completions = sim.host_completions();

    // Sequential reference: the *original* schedule, ops applied in place.
    let mut vm_actions = Vec::with_capacity(npackets);
    let mut vm_packets = Vec::with_capacity(npackets);
    let mut vm_ops = Vec::with_capacity(nops);
    for ev in ref_events {
        match ev {
            HostEvent::Packet(p) => {
                let mut bytes = p.clone();
                match vm.run(&mut bytes, 0) {
                    Ok(out) => {
                        vm_actions.push(out.action);
                        vm_packets.push(bytes);
                    }
                    Err(_) => {
                        vm_actions.push(XdpAction::Drop);
                        vm_packets.push(p.clone());
                    }
                }
            }
            HostEvent::Op(op) => vm_ops.push(apply_host_op_to_store(vm.maps_mut(), op)),
        }
    }

    if outs.len() != npackets {
        divs.push(Divergence::Count { vm: npackets, hw: outs.len() });
        return divs;
    }
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(out.seq as usize, i, "pipeline must preserve packet order");
        if out.action != vm_actions[i] {
            divs.push(Divergence::Action { seq: i, vm: vm_actions[i], hw: out.action });
            continue;
        }
        if out.action.forwards() && out.packet != vm_packets[i] {
            let at = out
                .packet
                .iter()
                .zip(&vm_packets[i])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| out.packet.len().min(vm_packets[i].len()));
            divs.push(Divergence::Packet { seq: i, at });
        }
    }

    // Host ops complete in submission order (the channel is a FIFO), so
    // completion `i` pairs with the i-th submitted op; `expand` maps the
    // submitted (possibly coalesced) results back onto the reference
    // schedule's op numbering.
    if completions.len() != nops {
        divs.push(Divergence::HostOp {
            id: u64::MAX,
            detail: format!("{} of {nops} submitted ops completed", completions.len()),
        });
    } else {
        let hw_ops = expand(completions.into_iter().map(|c| c.result).collect());
        if hw_ops.len() != vm_ops.len() {
            divs.push(Divergence::HostOp {
                id: u64::MAX,
                detail: format!("{} expanded results for {} ops", hw_ops.len(), vm_ops.len()),
            });
        } else {
            for (i, (hr, vr)) in hw_ops.iter().zip(&vm_ops).enumerate() {
                if hr != vr {
                    divs.push(Divergence::HostOp {
                        id: i as u64,
                        detail: format!("hw={hr:?} vm={vr:?}"),
                    });
                }
            }
        }
    }

    for def in &program.maps {
        if ignore_maps.contains(&def.id) {
            continue;
        }
        let a = vm.maps().get(def.id).expect("vm map");
        let b = sim.maps().get(def.id).expect("sim map");
        let mut ea: Vec<_> = a.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        let mut eb: Vec<_> = b.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        ea.sort();
        eb.sort();
        if ea != eb {
            divs.push(Divergence::Map { map: def.id });
        }
    }

    for v in vm.proof_violations() {
        divs.push(Divergence::Proof { detail: format!("vm: {v}") });
    }
    let hw_violations = sim.counters().proof_violations;
    if hw_violations > 0 {
        divs.push(Divergence::Proof {
            detail: format!("pipeline: {hw_violations} unguarded accesses left proven bounds"),
        });
    }
    divs
}

/// Compile `program` and run [`compare_with_ops`], panicking with a
/// readable report on divergence.
pub fn assert_equivalent_ops(
    program: &Program,
    options: CompilerOptions,
    events: &[HostEvent],
    setup: impl Fn(&mut MapStore),
    ignore_maps: &[u32],
    ctrl: CtrlOptions,
) {
    let design = Compiler::with_options(options)
        .compile(program)
        .unwrap_or_else(|e| panic!("compile {}: {e}", program.name));
    let divs = compare_with_ops(program, &design, events, setup, ignore_maps, ctrl);
    if !divs.is_empty() {
        let report: Vec<String> = divs.iter().take(8).map(|d| d.to_string()).collect();
        panic!(
            "pipeline diverges from VM for `{}` under live host ops ({} issues):\n  {}",
            program.name,
            divs.len(),
            report.join("\n  ")
        );
    }
}

/// Compile `program` and run [`compare_with_ops_coalesced`], panicking
/// with a readable report on divergence.
pub fn assert_equivalent_ops_coalesced(
    program: &Program,
    options: CompilerOptions,
    events: &[HostEvent],
    setup: impl Fn(&mut MapStore),
    ignore_maps: &[u32],
    ctrl: CtrlOptions,
) {
    let design = Compiler::with_options(options)
        .compile(program)
        .unwrap_or_else(|e| panic!("compile {}: {e}", program.name));
    let divs = compare_with_ops_coalesced(program, &design, events, setup, ignore_maps, ctrl);
    if !divs.is_empty() {
        let report: Vec<String> = divs.iter().take(8).map(|d| d.to_string()).collect();
        panic!(
            "coalesced schedule diverges from the sequential oracle for `{}` ({} issues):\n  {}",
            program.name,
            divs.len(),
            report.join("\n  ")
        );
    }
}

/// Result of a fault-injection differential run ([`compare_under_faults`]).
///
/// Equivalence is judged only on *non-fault* packets: a protected design
/// must keep every packet the faults never touched bit-identical to the
/// sequential reference, while fault-affected packets (silently corrupted,
/// or sacrificed by the watchdog) are reported but not counted as
/// divergences.
#[derive(Debug, Clone)]
pub struct FaultCompareReport {
    /// Divergences among packets no fault touched.
    pub divergences: Vec<Divergence>,
    /// Map ids whose final contents differ from the reference. Meaningful
    /// only when no fault reached map state (`affected` empty and
    /// `map_storage_corrupted` false); otherwise expected to be non-empty.
    pub map_divergences: Vec<u32>,
    /// Sequence numbers of packets a fault corrupted or killed.
    pub affected: Vec<u64>,
    /// Non-affected packets that never completed (pipeline wedged without
    /// a watchdog).
    pub missing: u64,
    /// Whether map backing storage took an unrecovered upset.
    pub map_storage_corrupted: bool,
    /// Fault engine tallies for the run.
    pub stats: FaultStats,
    /// Full fault event log (cycle/site/kind/outcome per injection).
    pub log: Vec<FaultEvent>,
    /// Simulator counters (fault replays, watchdog resets, ...).
    pub counters: SimCounters,
    /// Fraction of cycles the pipeline was not wedged.
    pub availability: f64,
}

/// Differential VM-vs-pipeline run with a fault-injection engine attached.
///
/// Runs the sequential reference fault-free, runs the pipeline under the
/// seeded campaign `fault`, and compares per packet — excluding the
/// packets the engine reports as fault-affected. Outcomes are matched by
/// sequence number (watchdog recovery can retire packets out of order).
pub fn compare_under_faults(
    program: &Program,
    design: &PipelineDesign,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
    fault: FaultConfig,
) -> FaultCompareReport {
    let sim_options = SimOptions { freeze_time_ns: Some(1000), ..Default::default() };
    let mut vm = Vm::new(program);
    vm.set_time_ns(1000);
    let mut sim = PipelineSim::with_options(design, sim_options);
    setup(vm.maps_mut());
    setup(sim.maps_mut());
    sim.attach_faults(fault);

    let mut vm_actions = Vec::with_capacity(packets.len());
    let mut vm_packets = Vec::with_capacity(packets.len());
    for p in packets {
        let mut bytes = p.clone();
        match vm.run(&mut bytes, 0) {
            Ok(out) => {
                vm_actions.push(out.action);
                vm_packets.push(bytes);
            }
            Err(_) => {
                vm_actions.push(XdpAction::Drop);
                vm_packets.push(p.clone());
            }
        }
    }

    for p in packets {
        sim.enqueue(p.clone());
    }
    sim.settle(50_000_000);
    let mut outs = sim.drain();
    outs.sort_by_key(|o| o.seq);
    sim.finalize_faults();

    let (affected, map_storage_corrupted, stats, log) = match sim.fault_engine() {
        Some(e) => {
            (e.affected_seqs().to_vec(), e.map_storage_corrupted(), *e.stats(), e.log().to_vec())
        }
        None => (Vec::new(), false, FaultStats::default(), Vec::new()),
    };

    let mut divs = Vec::new();
    let mut missing = 0u64;
    let mut next = outs.iter().peekable();
    for seq in 0..packets.len() as u64 {
        let out = match next.peek() {
            Some(o) if o.seq == seq => next.next().expect("peeked"),
            _ => {
                if affected.binary_search(&seq).is_err() {
                    missing += 1;
                }
                continue;
            }
        };
        if affected.binary_search(&seq).is_ok() {
            continue;
        }
        let i = seq as usize;
        if out.action != vm_actions[i] {
            divs.push(Divergence::Action { seq: i, vm: vm_actions[i], hw: out.action });
            continue;
        }
        if out.action.forwards() && out.packet != vm_packets[i] {
            let at = out
                .packet
                .iter()
                .zip(&vm_packets[i])
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| out.packet.len().min(vm_packets[i].len()));
            divs.push(Divergence::Packet { seq: i, at });
        }
    }

    let mut map_divergences = Vec::new();
    for def in &program.maps {
        if ignore_maps.contains(&def.id) {
            continue;
        }
        let (Some(a), Some(b)) = (vm.maps().get(def.id), sim.maps().get(def.id)) else {
            continue;
        };
        let mut ea: Vec<_> = a.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        let mut eb: Vec<_> = b.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
        ea.sort();
        eb.sort();
        if ea != eb {
            map_divergences.push(def.id);
        }
    }

    FaultCompareReport {
        divergences: divs,
        map_divergences,
        affected,
        missing,
        map_storage_corrupted,
        stats,
        log,
        counters: *sim.counters(),
        availability: sim.availability(),
    }
}

/// Compile `program` with `options` and differentially test it on
/// `packets`, panicking with a readable report on divergence.
pub fn assert_equivalent(program: &Program, options: CompilerOptions, packets: &[Vec<u8>]) {
    assert_equivalent_with(program, options, packets, |_| {});
}

/// [`assert_equivalent`] with host-side map setup.
pub fn assert_equivalent_with(
    program: &Program,
    options: CompilerOptions,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
) {
    assert_equivalent_ignoring(program, options, packets, setup, &[]);
}

/// [`assert_equivalent_with`] with an allocator-map ignore list.
pub fn assert_equivalent_ignoring(
    program: &Program,
    options: CompilerOptions,
    packets: &[Vec<u8>],
    setup: impl Fn(&mut ehdl_ebpf::maps::MapStore),
    ignore_maps: &[u32],
) {
    let design = Compiler::with_options(options)
        .compile(program)
        .unwrap_or_else(|e| panic!("compile {}: {e}", program.name));
    let divs = compare_ignoring(program, &design, packets, setup, ignore_maps);
    if !divs.is_empty() {
        let report: Vec<String> = divs.iter().take(5).map(|d| d.to_string()).collect();
        panic!(
            "pipeline diverges from VM for `{}` ({} issues):\n  {}",
            program.name,
            divs.len(),
            report.join("\n  ")
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::asm::Asm;
    use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};

    #[test]
    fn branching_program_equivalent() {
        let mut a = Asm::new();
        let drop = a.new_label();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::W, 8, 1, 4);
        a.mov64_reg(2, 7);
        a.alu64_imm(AluOp::Add, 2, 14);
        a.jmp_reg(JmpOp::Jgt, 2, 8, drop);
        a.load(MemSize::B, 3, 7, 12);
        a.jmp_imm(JmpOp::Jeq, 3, 8, drop);
        a.mov64_imm(0, 3);
        a.exit();
        a.bind(drop);
        a.mov64_imm(0, 1);
        a.exit();
        let p = Program::from_insns(a.into_insns());
        let mut packets: Vec<Vec<u8>> = (0..32).map(|i| vec![i as u8; 64]).collect();
        packets.push(vec![0; 10]); // short packet exercises the elided check
        assert_equivalent(&p, CompilerOptions::default(), &packets);
    }

    #[test]
    fn packet_rewrite_equivalent() {
        let mut a = Asm::new();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::H, 2, 7, 0);
        a.load(MemSize::H, 3, 7, 6);
        a.store_reg(MemSize::H, 7, 0, 3);
        a.store_reg(MemSize::H, 7, 6, 2);
        a.mov64_imm(0, 3);
        a.exit();
        let p = Program::from_insns(a.into_insns());
        let packets: Vec<Vec<u8>> = (0..16)
            .map(|i| {
                let mut v = vec![0u8; 64];
                v[0] = i;
                v[6] = 0xf0 | i;
                v
            })
            .collect();
        assert_equivalent(&p, CompilerOptions::default(), &packets);
    }

    mod live_ops {
        use super::*;
        use crate::sim::hazard_timing_tests::{pkt, rmw_program};
        use ehdl_ebpf::maps::UpdateFlags;

        fn key(flow: u8) -> Vec<u8> {
            vec![flow, 0, 0, 0]
        }

        fn update(flow: u8, v: u64) -> HostEvent {
            HostEvent::Op(HostOp::Update {
                map: 0,
                key: key(flow),
                value: v.to_le_bytes().to_vec(),
                flags: UpdateFlags::Any,
            })
        }

        #[test]
        fn interleaved_ops_match_sequential_reference() {
            // Ops hammer the same hot key the packets are incrementing,
            // at several barrier positions — including back-to-back with
            // same-flow packets so writes land inside open RAW windows.
            let program = rmw_program();
            let mut events = Vec::new();
            for round in 0..4u64 {
                for _ in 0..3 {
                    events.push(HostEvent::Packet(pkt(1)));
                }
                events.push(update(1, round * 1000));
                events.push(HostEvent::Op(HostOp::Lookup { map: 0, key: key(1) }));
                events.push(HostEvent::Packet(pkt(1)));
                events.push(HostEvent::Op(HostOp::Delete { map: 0, key: key(2) }));
                events.push(HostEvent::Packet(pkt(2)));
                events.push(HostEvent::Op(HostOp::Dump { map: 0 }));
            }
            assert_equivalent_ops(
                &program,
                CompilerOptions::default(),
                &events,
                |_| {},
                &[],
                CtrlOptions { latency_cycles: 1, queue_depth: 64 },
            );
        }

        #[test]
        fn op_results_cover_errors_and_misses() {
            let program = rmw_program();
            let events = vec![
                HostEvent::Op(HostOp::Lookup { map: 0, key: key(9) }), // miss
                HostEvent::Op(HostOp::Delete { map: 0, key: key(9) }), // NoSuchKey
                HostEvent::Packet(pkt(9)),
                HostEvent::Op(HostOp::Update {
                    map: 0,
                    key: key(9),
                    value: 7u64.to_le_bytes().to_vec(),
                    flags: UpdateFlags::NoExist, // KeyExists
                }),
                HostEvent::Op(HostOp::Lookup { map: 0, key: key(9) }), // hit
            ];
            assert_equivalent_ops(
                &program,
                CompilerOptions::default(),
                &events,
                |_| {},
                &[],
                CtrlOptions::default(),
            );
        }

        #[test]
        fn high_latency_channel_still_barrier_ordered() {
            let program = rmw_program();
            let mut events = Vec::new();
            for i in 0..12u8 {
                events.push(HostEvent::Packet(pkt(i % 2)));
                if i % 3 == 0 {
                    events.push(update(i % 2, u64::from(i) * 11));
                }
            }
            assert_equivalent_ops(
                &program,
                CompilerOptions::default(),
                &events,
                |_| {},
                &[],
                CtrlOptions { latency_cycles: 400, queue_depth: 8 },
            );
        }

        #[test]
        fn mismatched_op_result_is_reported() {
            // Sanity-check the harness actually compares op results: an
            // op on a key only the *setup* of one side has must diverge.
            let program = rmw_program();
            let design = Compiler::new().compile(&program).unwrap();
            let events = [HostEvent::Op(HostOp::Lookup { map: 0, key: key(3) })];
            // Divergence is manufactured by mutating the sim store only —
            // run compare manually with asymmetric setup.
            let mut vm = Vm::new(&program);
            vm.set_time_ns(1000);
            let mut sim = crate::sim::PipelineSim::with_options(
                &design,
                SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
            );
            sim.maps_mut()
                .get_mut(0)
                .unwrap()
                .update(&key(3), &5u64.to_le_bytes(), UpdateFlags::Any)
                .unwrap();
            sim.attach_ctrl(CtrlOptions::default());
            let HostEvent::Op(op) = &events[0] else { unreachable!() };
            sim.submit_host_op(op.clone()).unwrap();
            sim.settle(10_000);
            let hw = sim.host_completions()[0].result.clone();
            let vmr = apply_host_op_to_store(vm.maps_mut(), op);
            assert_ne!(hw, vmr, "asymmetric state must surface in op results");
        }
    }

    mod sharded {
        use super::*;
        use crate::shared::Arbitration;
        use ehdl_ebpf::maps::UpdateFlags;
        use ehdl_net::{FiveTuple, IPPROTO_UDP};
        use ehdl_programs::{dnat, simple_firewall};
        use ehdl_traffic::build_flow_packet;

        fn flow(i: usize) -> FiveTuple {
            FiveTuple {
                saddr: [10, 1, (i >> 8) as u8, i as u8],
                daddr: [203, 0, 113, 9],
                sport: 40000 + i as u16,
                dport: 53,
                proto: IPPROTO_UDP,
            }
        }

        /// Bidirectional trace: each flow opens from inside, then the
        /// peer answers, then both directions keep talking — the
        /// symmetric RSS hash must keep every packet of a flow on one
        /// replica or the session state tears apart.
        fn bidirectional_trace(flows: usize, rounds: usize) -> Vec<Vec<u8>> {
            let mut out = Vec::new();
            for i in 0..flows {
                out.push(build_flow_packet(&flow(i), [1; 6], [2; 6], 64));
            }
            for _ in 0..rounds {
                for i in 0..flows {
                    out.push(build_flow_packet(&flow(i).reversed(), [2; 6], [1; 6], 64));
                    out.push(build_flow_packet(&flow(i), [1; 6], [2; 6], 64));
                }
            }
            out
        }

        #[test]
        fn firewall_bit_equivalent_across_replicas_and_seeds() {
            let program = simple_firewall::program();
            let design = Compiler::new().compile(&program).unwrap();
            let packets = bidirectional_trace(48, 2);
            for replicas in [1, 2, 4] {
                for seed in [1, 7] {
                    assert_equivalent_sharded(
                        &program,
                        &design,
                        replicas,
                        seed,
                        &packets,
                        &[],
                        |_| {},
                        &[],
                        SharedMapOptions::default(),
                    );
                }
            }
        }

        #[test]
        fn firewall_shared_stats_with_host_ops() {
            let program = simple_firewall::program();
            let design = Compiler::new().compile(&program).unwrap();
            let packets = bidirectional_trace(32, 2);
            // Host traffic against the *shared* stats array mid-trace:
            // a fenced read must observe the exact sequential-reference
            // count, and a fenced write must serialize into the shared
            // history ahead of all later packets.
            let ops = vec![
                (
                    30usize,
                    HostOp::Lookup {
                        map: simple_firewall::STATS_MAP,
                        key: 0u32.to_le_bytes().to_vec(),
                    },
                ),
                (
                    60usize,
                    HostOp::Update {
                        map: simple_firewall::STATS_MAP,
                        key: 3u32.to_le_bytes().to_vec(),
                        value: 7u64.to_le_bytes().to_vec(),
                        flags: UpdateFlags::Any,
                    },
                ),
            ];
            assert_equivalent_sharded(
                &program,
                &design,
                4,
                9,
                &packets,
                &ops,
                |_| {},
                &[],
                SharedMapOptions {
                    shared_maps: vec![simple_firewall::STATS_MAP],
                    ..Default::default()
                },
            );
        }

        #[test]
        fn contended_fabric_and_caches_never_change_results() {
            let program = simple_firewall::program();
            let design = Compiler::new().compile(&program).unwrap();
            let packets = bidirectional_trace(24, 3);
            // Worst-case timing pressure: one bank, multi-cycle latency,
            // fixed priority (replica 3 starves), read caches on. Timing
            // may crawl; results may not move.
            assert_equivalent_sharded(
                &program,
                &design,
                4,
                5,
                &packets,
                &[],
                |_| {},
                &[],
                SharedMapOptions {
                    banks: 1,
                    latency: 4,
                    arbitration: Arbitration::FixedPriority,
                    read_cache: true,
                    cache_lines: 64,
                    shared_maps: vec![simple_firewall::STATS_MAP],
                    ..Default::default()
                },
            );
        }

        #[test]
        fn dnat_prebound_bit_equivalent() {
            let program = dnat::program();
            let design = Compiler::new().compile(&program).unwrap();
            let flows = 40;
            let mut packets = Vec::new();
            for r in 0..3 {
                for i in 0..flows {
                    packets.push(build_flow_packet(&flow(i), [1; 6], [2; 6], 64 + r * 16));
                }
            }
            // Pre-bind every flow so the order-dependent port allocator
            // never runs: with static bindings the conn table is pure
            // flow-partitioned state and must merge bit-exactly.
            let setup = move |maps: &mut MapStore| {
                let conn = maps.get_mut(dnat::CONN_MAP).expect("conn map");
                for i in 0..flows {
                    let port = dnat::PORT_BASE + i as u16;
                    let mut val = [0u8; 8];
                    val[..4].copy_from_slice(&dnat::NAT_ADDR);
                    val[4..6].copy_from_slice(&port.to_be_bytes());
                    conn.update(&flow(i).to_key(), &val, UpdateFlags::Any).expect("bind");
                }
            };
            assert_equivalent_sharded(
                &program,
                &design,
                4,
                11,
                &packets,
                &[],
                setup,
                &[],
                SharedMapOptions::default(),
            );
        }

        #[test]
        fn firewall_survivors_bit_equivalent_under_replica_kill() {
            use crate::fault::{ReplicaFault, ReplicaFaultConfig, ReplicaFaultKind};
            let program = simple_firewall::program();
            let design = Compiler::new().compile(&program).unwrap();
            let packets = bidirectional_trace(48, 3);
            let diff = compare_sharded_failover(
                &program,
                &design,
                4,
                7,
                &packets,
                ReplicaFaultConfig {
                    schedule: vec![ReplicaFault {
                        at: 80,
                        replica: 2,
                        kind: ReplicaFaultKind::Kill,
                    }],
                    watchdog_budget: 64,
                    reset_cycles: 0,
                },
                |_| {},
                &[(simple_firewall::SESSIONS_MAP, MergeStrategy::Union)],
                SharedMapOptions {
                    shared_maps: vec![simple_firewall::STATS_MAP],
                    ..Default::default()
                },
            );
            assert!(
                diff.divergences.is_empty(),
                "fail-over run violated an invariant:\n{}",
                diff.divergences.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
            );
            let f = diff.report.failover;
            assert_eq!(f.detected, 1, "the kill must be caught");
            assert!(
                !diff.report.affected.is_empty(),
                "a mid-trace kill on a uniform workload must affect some flows"
            );
            assert!(
                f.availability(4, diff.report.cycles) >= 0.75 - 0.05,
                "availability below the (N-1)/N - 5% floor"
            );
        }

        #[test]
        fn failover_harness_flags_fabricated_silent_loss() {
            use crate::fault::{ReplicaFault, ReplicaFaultConfig, ReplicaFaultKind};
            // Negative control: a hang that never fires keeps all
            // replicas healthy, so the harness must find zero losses and
            // zero detections — then a fabricated undetected injection
            // must be representable as a Loss divergence.
            let program = simple_firewall::program();
            let design = Compiler::new().compile(&program).unwrap();
            let packets = bidirectional_trace(16, 1);
            let diff = compare_sharded_failover(
                &program,
                &design,
                2,
                3,
                &packets,
                ReplicaFaultConfig {
                    schedule: vec![ReplicaFault {
                        at: 10_000_000, // far past the trace
                        replica: 0,
                        kind: ReplicaFaultKind::Hang,
                    }],
                    watchdog_budget: 32,
                    reset_cycles: 64,
                },
                |_| {},
                &[],
                SharedMapOptions::default(),
            );
            assert!(diff.divergences.is_empty());
            assert_eq!(diff.report.failover.injected, 0, "the fault never fired");
            let loss = Divergence::Loss { detail: "packet 3 lost outside the affected set".into() };
            assert!(loss.to_string().contains("loss:"), "Loss divergences render distinctly");
        }
    }
}
