//! Deterministic fault injection for the pipeline simulator.
//!
//! Hardware deployed on a NIC runs for months; SEUs in BRAM and flip-flops
//! are a when, not an if. This module is the campaign engine behind the
//! hardened designs `CompilerOptions::protect` emits: a seeded RNG decides
//! each cycle whether to flip a bit somewhere in the in-flight pipeline
//! state (stage registers, stack bytes, predication bits, FEB/WAR delay
//! buffers) or in map BRAM words, or to inject a stuck-at or hung-stage
//! condition. Every injection is logged with its cycle, site, kind and
//! (eventual) outcome, so a campaign is bit-reproducible from its seed.
//!
//! The *semantics* of a fault depend on the design's [`Protection`](ehdl_core::Protection) level:
//!
//! * [`Protection::None`](ehdl_core::Protection::None) — the flip lands: in-flight corruption silently
//!   alters that packet's verdict; map corruption silently alters global
//!   state (and every later packet that reads it).
//! * [`Protection::Parity`](ehdl_core::Protection::Parity) — parity guards on stage boundaries detect
//!   in-flight corruption before it is consumed; the simulator recovers by
//!   replay, reusing the partial-flush checkpoint schedule. Map BRAM is
//!   still unprotected.
//! * [`Protection::EccWatchdog`](ehdl_core::Protection::EccWatchdog) — adds SECDED ECC on map ports
//!   (correct-on-read plus a background scrub; a second upset on the same
//!   word before correction is detected-but-uncorrectable) and a pipeline
//!   watchdog that notices a hung stage, drops the wedged packet, replays
//!   the innocents and performs a map-preserving reinit.
//!
//! [`Protection`]: ehdl_core::Protection

use ehdl_rng::Rng;

/// Campaign parameters. All probabilities are per *injection decision*;
/// one decision is made per simulated cycle.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// RNG seed; identical seeds replay identical campaigns.
    pub seed: u64,
    /// Per-cycle probability of injecting a fault (0 disables the engine).
    pub rate: f64,
    /// Probability that a transient flip targets map BRAM rather than
    /// in-flight pipeline state.
    pub map_bias: f64,
    /// Fraction of injections that are stuck-at faults (a site whose bit
    /// is forced for [`FaultConfig::stuck_duration`] cycles).
    pub stuck_fraction: f64,
    /// Fraction of injections that hang a pipeline stage outright.
    pub hang_fraction: f64,
    /// How long a stuck-at site stays forced, in cycles.
    pub stuck_duration: u64,
    /// Background scrub visits one outstanding map upset every this many
    /// cycles (ECC designs only; 0 disables scrubbing).
    pub scrub_period: u64,
    /// Cycles without retirement progress before the watchdog fires
    /// (watchdog designs only).
    pub watchdog_timeout: u64,
    /// Upper bound on the event log length (stats keep counting past it).
    pub max_events: usize,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 1,
            rate: 0.0,
            map_bias: 0.5,
            stuck_fraction: 0.05,
            hang_fraction: 0.01,
            stuck_duration: 48,
            scrub_period: 256,
            watchdog_timeout: 512,
            max_events: 100_000,
        }
    }
}

/// Where a fault landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Bit `bit` of register `reg` in the packet occupying `stage`.
    StageReg {
        /// Pipeline stage index.
        stage: usize,
        /// eBPF register number (0–10).
        reg: u8,
        /// Bit position within the 64-bit register.
        bit: u8,
    },
    /// Bit `bit` of stack byte `off` in the packet occupying `stage`.
    StageStack {
        /// Pipeline stage index.
        stage: usize,
        /// Byte offset into the 512-byte stack.
        off: u16,
        /// Bit position within the byte.
        bit: u8,
    },
    /// The resolved taken-bit of control block `block` in the packet
    /// occupying `stage` (the predication network's carried state).
    PredBit {
        /// Pipeline stage index.
        stage: usize,
        /// Control block index.
        block: u16,
    },
    /// A bit in entry `index` of the FEB/WAR delay buffer (the queue of
    /// map writes waiting out their WAR hold).
    DelayBuffer {
        /// Index into the pending-write queue at injection time.
        index: usize,
        /// Bit position within the entry's payload.
        bit: u8,
    },
    /// Bit `bit` of byte `byte` of the value stored in `slot` of map `map`.
    MapWord {
        /// Map id.
        map: u32,
        /// Occupied slot index.
        slot: u32,
        /// Byte offset within the stored value.
        byte: u32,
        /// Bit position within the byte.
        bit: u8,
    },
    /// The control logic of `stage` itself (hung-stage condition).
    Pipeline {
        /// Pipeline stage index.
        stage: usize,
    },
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultSite::StageReg { stage, reg, bit } => {
                write!(f, "stage{stage}.r{reg}[{bit}]")
            }
            FaultSite::StageStack { stage, off, bit } => {
                write!(f, "stage{stage}.stack[{off}][{bit}]")
            }
            FaultSite::PredBit { stage, block } => write!(f, "stage{stage}.pred[b{block}]"),
            FaultSite::DelayBuffer { index, bit } => write!(f, "delaybuf[{index}][{bit}]"),
            FaultSite::MapWord { map, slot, byte, bit } => {
                write!(f, "map{map}.slot{slot}[{byte}][{bit}]")
            }
            FaultSite::Pipeline { stage } => write!(f, "stage{stage}.ctrl"),
        }
    }
}

/// What kind of fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A single transient bit flip.
    Transient,
    /// A site forced to a value for a bounded number of cycles.
    StuckAt,
    /// A pipeline stage that stops retiring.
    Hang,
}

impl FaultKind {
    /// Short name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::StuckAt => "stuck-at",
            FaultKind::Hang => "hang",
        }
    }
}

/// How an injected fault was (eventually) resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The targeted site held no live state (empty stage slot, empty map,
    /// empty delay buffer): the flip changed nothing.
    Masked,
    /// The flip landed on unprotected state; results may silently differ.
    SilentCorruption,
    /// A parity guard caught the corruption; the affected window was
    /// recovered by replay from its checkpoints.
    DetectedReplay,
    /// SECDED corrected the upset when a lookup next touched the word.
    CorrectedOnRead,
    /// The background scrubber corrected the upset.
    CorrectedByScrub,
    /// ECC check bits repaired a delay-buffer entry in place.
    CorrectedEcc,
    /// Two upsets accumulated in one protected word before correction:
    /// detected but uncorrectable, storage is corrupt.
    Uncorrectable,
    /// The watchdog drained and reinitialized the pipeline, dropping the
    /// hung packet and replaying the rest.
    HungRecovered,
    /// The stage hung and nothing recovered it (no watchdog).
    HungUnrecovered,
    /// An ECC upset still awaiting correction (interim state; finalized
    /// runs convert these to scrub corrections).
    Outstanding,
}

impl FaultOutcome {
    /// Short name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::SilentCorruption => "silent-corruption",
            FaultOutcome::DetectedReplay => "detected-replay",
            FaultOutcome::CorrectedOnRead => "corrected-on-read",
            FaultOutcome::CorrectedByScrub => "corrected-by-scrub",
            FaultOutcome::CorrectedEcc => "corrected-ecc",
            FaultOutcome::Uncorrectable => "uncorrectable",
            FaultOutcome::HungRecovered => "hung-recovered",
            FaultOutcome::HungUnrecovered => "hung-unrecovered",
            FaultOutcome::Outstanding => "outstanding",
        }
    }
}

/// One logged injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the fault was injected.
    pub cycle: u64,
    /// Where it landed.
    pub site: FaultSite,
    /// What kind of fault it was.
    pub kind: FaultKind,
    /// How it was resolved.
    pub outcome: FaultOutcome,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{} {} {} -> {}", self.cycle, self.kind.name(), self.site, self.outcome.name())
    }
}

/// Campaign tallies (one increment per injected *event*, not per cycle a
/// stuck-at site stays forced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total injections attempted.
    pub injected: u64,
    /// Injections that hit dead state.
    pub masked: u64,
    /// Flips that silently landed on unprotected state.
    pub silent: u64,
    /// Parity detections recovered by replay.
    pub detected_replays: u64,
    /// ECC corrections triggered by a map read.
    pub corrected_read: u64,
    /// ECC corrections performed by the background scrub.
    pub corrected_scrub: u64,
    /// Delay-buffer entries repaired in place by their check bits.
    pub corrected_ecc: u64,
    /// Detected-but-uncorrectable double upsets.
    pub uncorrectable: u64,
    /// Hung-stage conditions injected.
    pub hangs: u64,
    /// Hangs cleared by the watchdog.
    pub watchdog_recoveries: u64,
}

impl FaultStats {
    /// Injections that actually touched live state.
    pub fn effective(&self) -> u64 {
        self.injected - self.masked
    }

    /// Fraction of effective faults that were detected and handled
    /// (corrected, recovered by replay, or cleared by the watchdog).
    /// `1.0` when no effective fault was injected.
    pub fn coverage(&self) -> f64 {
        let eff = self.effective();
        if eff == 0 {
            return 1.0;
        }
        let handled = self.detected_replays
            + self.corrected_read
            + self.corrected_scrub
            + self.corrected_ecc
            + self.watchdog_recoveries;
        handled as f64 / eff as f64
    }
}

/// An active stuck-at fault: `site` is re-forced every cycle until
/// `until`. `event` indexes the injection's log entry so the first
/// effective application can upgrade a provisionally-masked outcome.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StuckFault {
    pub(crate) site: FaultSite,
    pub(crate) until: u64,
    pub(crate) event: usize,
}

/// An outstanding single-bit upset in an ECC-protected map word; the
/// storage itself is still clean (SECDED corrects on every read), the
/// engine only tracks it so a read or a scrub can log the correction —
/// and so a second hit on the same word can be ruled uncorrectable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MapUpset {
    pub(crate) map: u32,
    pub(crate) slot: u32,
    pub(crate) word: u32,
    pub(crate) event: usize,
}

/// An active hung-stage condition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Hang {
    pub(crate) stage: usize,
    pub(crate) since: u64,
    pub(crate) event: usize,
}

/// The per-simulator fault engine: RNG, schedule state, log and tallies.
///
/// Constructed by [`PipelineSim::attach_faults`] and driven once per
/// simulated cycle; the actual mutation of pipeline state lives in the
/// simulator (`sim.rs`), which owns that state.
///
/// [`PipelineSim::attach_faults`]: crate::PipelineSim::attach_faults
#[derive(Debug, Clone)]
pub struct FaultEngine {
    pub(crate) cfg: FaultConfig,
    pub(crate) rng: Rng,
    pub(crate) log: Vec<FaultEvent>,
    pub(crate) stats: FaultStats,
    pub(crate) stuck: Vec<StuckFault>,
    pub(crate) upsets: Vec<MapUpset>,
    pub(crate) hang: Option<Hang>,
    pub(crate) hung_cycles: u64,
    pub(crate) affected: Vec<u64>,
    pub(crate) map_corrupted: bool,
}

impl FaultEngine {
    /// Build an engine seeded from `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> FaultEngine {
        FaultEngine {
            cfg,
            rng: Rng::seed_from_u64(cfg.seed),
            log: Vec::new(),
            stats: FaultStats::default(),
            stuck: Vec::new(),
            upsets: Vec::new(),
            hang: None,
            hung_cycles: 0,
            affected: Vec::new(),
            map_corrupted: false,
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The injection log, oldest first (capped at `cfg.max_events`).
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Campaign tallies.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Sequence numbers of packets whose results may legitimately differ
    /// from a fault-free reference run (corrupted in flight, or dropped by
    /// the watchdog). Sorted, unique.
    pub fn affected_seqs(&self) -> &[u64] {
        &self.affected
    }

    /// Whether map storage itself was corrupted (unprotected hit or an
    /// uncorrectable double upset): final map state may differ from the
    /// reference even for packets not in [`FaultEngine::affected_seqs`].
    pub fn map_storage_corrupted(&self) -> bool {
        self.map_corrupted
    }

    /// Cycles spent with a stage hung.
    pub fn hung_cycles(&self) -> u64 {
        self.hung_cycles
    }

    /// Fraction of `total_cycles` the pipeline was live (not hung).
    pub fn availability(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 1.0;
        }
        1.0 - (self.hung_cycles.min(total_cycles) as f64 / total_cycles as f64)
    }

    /// Append an event, respecting the log cap. Returns the event's index,
    /// or `usize::MAX` if the log is full (tallies still count it).
    pub(crate) fn record(&mut self, ev: FaultEvent) -> usize {
        if self.log.len() >= self.cfg.max_events {
            return usize::MAX;
        }
        self.log.push(ev);
        self.log.len() - 1
    }

    /// Rewrite a previously recorded event's outcome (e.g. an outstanding
    /// ECC upset resolving to a correction).
    pub(crate) fn resolve(&mut self, event: usize, outcome: FaultOutcome) {
        if let Some(ev) = self.log.get_mut(event) {
            ev.outcome = outcome;
        }
    }

    /// Mark a packet's results as legitimately divergent.
    pub(crate) fn mark_affected(&mut self, seq: u64) {
        if let Err(at) = self.affected.binary_search(&seq) {
            self.affected.insert(at, seq);
        }
    }
}

// ---------------------------------------------------------------------------
// Replica-scoped failures (whole-pipeline loss inside a `ShardedNic`)
// ---------------------------------------------------------------------------

/// How a replica fails. Unlike the bit-level faults above, these take out a
/// whole pipeline replica at once — the clock domain dies, not a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFaultKind {
    /// Permanent death: the replica never returns. Its flows are re-steered
    /// to survivors for the rest of the run.
    Kill,
    /// Wedged pipeline: stops retiring but the part still answers the
    /// watchdog's reset strobe. After detection and a fail-stop drain the
    /// replica re-initializes and is re-admitted `reset_cycles` later.
    Hang,
    /// Transient brown-out: the clock returns on its own after `duration`
    /// cycles. Shorter than the watchdog budget it is absorbed invisibly
    /// (in-flight packets resume); longer, it is handled like a hang.
    BrownOut {
        /// Cycles until the replica's clock returns.
        duration: u64,
    },
}

/// One scheduled replica failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFault {
    /// Global `ShardedNic` cycle at which the replica goes dark.
    pub at: u64,
    /// Which replica.
    pub replica: usize,
    /// Failure mode.
    pub kind: ReplicaFaultKind,
}

/// Replica-failure schedule plus the recovery parameters of the sharded
/// layer's watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaFaultConfig {
    /// Failures to inject, in any order (sorted internally by cycle).
    pub schedule: Vec<ReplicaFault>,
    /// Heartbeat budget: a dark replica is detected exactly this many
    /// cycles after its last heartbeat, bounding detection latency.
    pub watchdog_budget: u64,
    /// Re-initialization time for a hung replica after its fail-stop
    /// (reset strobe, BRAM re-arm, steering re-admission).
    pub reset_cycles: u64,
}

impl Default for ReplicaFaultConfig {
    fn default() -> Self {
        ReplicaFaultConfig { schedule: Vec::new(), watchdog_budget: 256, reset_cycles: 2048 }
    }
}

/// Outcome counters for a replica-failure campaign. Every packet a failure
/// touches is accounted for: `drained` frames were still in the dead
/// replica's ingress FIFO and are punted back to the host, `discarded`
/// packets were mid-pipeline when the clock died and are unrecoverable.
/// Nothing is ever silently lost — the sharded layer asserts
/// `offered == completed + drained + discarded`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaFaultStats {
    /// Replica failures injected.
    pub injected: u64,
    /// Failures detected by the watchdog (masked brown-outs excluded).
    pub detected: u64,
    /// Brown-outs shorter than the watchdog budget, absorbed with no
    /// fail-over (their in-flight packets simply resumed).
    pub masked_brownouts: u64,
    /// Sum of detection latencies in cycles (dark → detected).
    pub detection_latency_total: u64,
    /// Worst-case detection latency in cycles.
    pub detection_latency_max: u64,
    /// Ingress-FIFO frames punted back to the host at fail-stop.
    pub drained: u64,
    /// Mid-pipeline packets lost with the clock domain.
    pub discarded: u64,
    /// RSS indirection-table slots rewritten across all re-steers.
    pub resteered_slots: u64,
    /// Replicas re-admitted to service (hang resets + returned brown-outs).
    pub readmissions: u64,
    /// Private-map entries reconciled into the canonical store.
    pub reconciled_entries: u64,
    /// Global cycles with at least one replica out of service.
    pub degraded_cycles: u64,
    /// Per-replica out-of-service cycles summed over all replicas.
    pub replica_down_cycles: u64,
}

impl ReplicaFaultStats {
    /// Mean detection latency in cycles (0 with no detections).
    pub fn mean_detection_latency(&self) -> f64 {
        if self.detected == 0 {
            0.0
        } else {
            self.detection_latency_total as f64 / self.detected as f64
        }
    }

    /// Serving capacity over the run: the fraction of replica-cycles that
    /// were in service. A single permanent kill on an `n`-replica NIC
    /// converges to `(n-1)/n` from above.
    pub fn availability(&self, replicas: usize, total_cycles: u64) -> f64 {
        let denom = replicas as u64 * total_cycles;
        if denom == 0 {
            return 1.0;
        }
        1.0 - (self.replica_down_cycles.min(denom) as f64 / denom as f64)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_deterministic_from_its_seed() {
        let cfg = FaultConfig { seed: 7, rate: 0.5, ..Default::default() };
        let mut a = FaultEngine::new(cfg);
        let mut b = FaultEngine::new(cfg);
        for _ in 0..1000 {
            assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        }
    }

    #[test]
    fn stats_coverage_counts_handled_fraction() {
        let mut s = FaultStats::default();
        assert_eq!(s.coverage(), 1.0);
        s.injected = 10;
        s.masked = 2;
        s.detected_replays = 4;
        s.corrected_read = 2;
        s.corrected_scrub = 1;
        s.silent = 1;
        assert_eq!(s.effective(), 8);
        assert!((s.coverage() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn affected_seqs_stay_sorted_unique() {
        let mut e = FaultEngine::new(FaultConfig::default());
        e.mark_affected(5);
        e.mark_affected(1);
        e.mark_affected(5);
        e.mark_affected(3);
        assert_eq!(e.affected_seqs(), &[1, 3, 5]);
    }

    #[test]
    fn event_log_respects_cap_and_resolution() {
        let cfg = FaultConfig { max_events: 2, ..Default::default() };
        let mut e = FaultEngine::new(cfg);
        let ev = FaultEvent {
            cycle: 1,
            site: FaultSite::Pipeline { stage: 0 },
            kind: FaultKind::Hang,
            outcome: FaultOutcome::Outstanding,
        };
        let i0 = e.record(ev);
        let i1 = e.record(FaultEvent { cycle: 2, ..ev });
        let i2 = e.record(FaultEvent { cycle: 3, ..ev });
        assert_eq!((i0, i1, i2), (0, 1, usize::MAX));
        e.resolve(i0, FaultOutcome::HungRecovered);
        assert_eq!(e.log()[0].outcome, FaultOutcome::HungRecovered);
        assert_eq!(format!("{}", e.log()[0]), "@1 hang stage0.ctrl -> hung-recovered");
    }
}
