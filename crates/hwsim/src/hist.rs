//! Fixed log2-bucket latency histogram shared by packet and host-op
//! latency accounting.
//!
//! The serving layer tracks latencies continuously over campaigns that run
//! for millions of cycles; keeping every sample (as the shell and retry
//! stats used to) grows memory without bound and makes every percentile
//! query an O(n log n) sort. This histogram is the HdrHistogram idea with
//! the knobs fixed: each power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so any recorded value lands in a
//! bucket whose width is at most 1/8 of its magnitude. Percentile queries
//! return the bucket's *upper* edge — an SLO-conservative bound that is
//! never below the exact order statistic and at most 12.5% above it
//! (exact for values below 16).
//!
//! Recording is O(1), memory is a fixed 4 KiB regardless of sample count,
//! and two histograms [`Log2Histogram::merge`] in O(buckets) — which is
//! what lets per-phase campaign histograms roll up into one SLO summary.

/// Linear sub-buckets per power-of-two octave (fixed at 8 = 3 bits of
/// mantissa, giving a worst-case 12.5% bucket width).
pub const SUB_BUCKETS: usize = 8;

/// Values below this resolve exactly (one bucket per value).
const EXACT_LIMIT: u64 = 16;

/// Octaves above the exact range: exponents 4..=63.
const OCTAVES: usize = 60;

/// Total bucket count: 16 exact + 60 octaves x 8 sub-buckets.
pub const NUM_BUCKETS: usize = EXACT_LIMIT as usize + OCTAVES * SUB_BUCKETS;

/// Fixed-size log2-bucket histogram over `u64` samples.
///
/// ```
/// use ehdl_hwsim::hist::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p99 = h.percentile(0.99);
/// assert!((990..=1023).contains(&p99)); // within one bucket of exact 990
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

/// Bucket index of `v`.
fn bucket_of(v: u64) -> usize {
    if v < EXACT_LIMIT {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (exp - 3)) & 0x7) as usize;
        EXACT_LIMIT as usize + (exp - 4) * SUB_BUCKETS + sub
    }
}

/// Largest value that maps into bucket `idx` (the reported percentile
/// representative).
fn upper_of(idx: usize) -> u64 {
    if idx < EXACT_LIMIT as usize {
        idx as u64
    } else {
        let exp = 4 + (idx - EXACT_LIMIT as usize) / SUB_BUCKETS;
        let sub = ((idx - EXACT_LIMIT as usize) % SUB_BUCKETS) as u128;
        let hi = ((9 + sub) << (exp - 3)) - 1;
        u64::try_from(hi).unwrap_or(u64::MAX)
    }
}

impl Log2Histogram {
    /// An empty histogram (4 KiB of zeroed buckets).
    pub fn new() -> Log2Histogram {
        Log2Histogram { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (the sum is kept exactly; only
    /// percentiles are bucketed). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound on the `q`-quantile (`q` in `[0, 1]`), never below the
    /// exact order statistic and at most 12.5% above it; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return upper_of(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Fold `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &Log2Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_rng::Rng;

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every bucket's upper edge maps back to that bucket, and the
        // next value starts the next bucket.
        for idx in 0..NUM_BUCKETS {
            let hi = upper_of(idx);
            assert_eq!(bucket_of(hi), idx, "upper edge of bucket {idx}");
            if hi < u64::MAX {
                assert_eq!(bucket_of(hi + 1), idx + 1, "bucket {idx} boundary");
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Log2Histogram::new();
        for v in 0..EXACT_LIMIT {
            h.record(v);
        }
        for v in 0..EXACT_LIMIT {
            let q = (v + 1) as f64 / EXACT_LIMIT as f64;
            assert_eq!(h.percentile(q), v);
        }
    }

    #[test]
    fn percentiles_match_the_sorted_reference_within_one_bucket() {
        // The satellite's equivalence bar: hist percentile is an upper
        // bound on the sorted-reference order statistic, within 12.5%.
        let mut rng = Rng::seed_from_u64(0x5105);
        for trial in 0..8 {
            let n = 100 + trial * 997;
            let mut h = Log2Histogram::new();
            let mut samples: Vec<u64> = (0..n)
                .map(|_| match rng.gen_index(3) {
                    0 => rng.gen_range_u64(0, 100),
                    1 => rng.gen_range_u64(100, 10_000),
                    _ => rng.gen_range_u64(10_000, 5_000_000),
                })
                .collect();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            for q in [0.5, 0.9, 0.99, 0.999] {
                let exact = exact_quantile(&samples, q);
                let approx = h.percentile(q);
                assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
                assert!(
                    approx as f64 <= exact as f64 * 1.125 + 1.0,
                    "q={q}: {approx} above 12.5% of exact {exact}"
                );
            }
            assert_eq!(h.count(), n as u64);
            assert_eq!(h.max(), *samples.last().unwrap());
            assert_eq!(h.min(), samples[0]);
            let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
            assert!((h.mean() - exact_mean).abs() < 1e-6);
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut rng = Rng::seed_from_u64(7);
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut whole = Log2Histogram::new();
        for i in 0..5_000u64 {
            let v = rng.gen_range_u64(0, 1 << 40);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
