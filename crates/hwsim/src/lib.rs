//! Cycle-level simulator for eHDL-generated hardware pipelines, plus a
//! Corundum-like NIC shell model.
//!
//! The paper prototypes generated designs on a Xilinx Alveo U50; this crate
//! is the reproduction's substitute for that FPGA. It executes a
//! [`ehdl_core::PipelineDesign`] with RTL-equivalent timing semantics:
//!
//! * one packet may occupy each stage; the whole pipeline advances every
//!   clock cycle (250 MHz), so up to `stage_count` packets are processed in
//!   parallel;
//! * stages read their *incoming* state copy and write the next stage's
//!   copy (two-phase), matching the schedule's dependence model;
//! * control flow is predication: disabled stages forward state untouched;
//! * map accesses hit shared `eHDLmap` blocks, reproducing the §4.1 data
//!   hazards — RAW hazards trigger Flush-Evaluation-Block pipeline flushes
//!   (with checkpointed side effects per App. A.2), WAR hazards engage
//!   write-delay buffers with same-packet forwarding, and atomics update
//!   map memory in place;
//! * packets are streamed in 64-byte frames, so larger packets take
//!   proportionally longer to inject — exactly the line-rate arithmetic of
//!   the testbed.
//!
//! [`diff`] provides the differential harness that checks the simulator
//! against the reference interpreter, packet by packet and map by map.
//! [`fault`] injects deterministic, seeded faults into the modeled
//! hardware so the hardened designs' protection machinery (parity, SECDED
//! ECC, watchdog recovery) can be measured rather than asserted.
//! [`ctrl`] models the host control channel — live map access over a
//! PCIe/AXI-Lite-like path, barrier-ordered against in-flight packets.
//! [`shared`] scales one design out to N replicas behind RSS flow
//! steering, with shared maps served by a banked memory interconnect.

#![deny(clippy::unwrap_used)]

pub mod batch;
pub mod ctrl;
pub mod diff;
pub mod fault;
pub mod hist;
pub mod multi;
pub mod shared;
pub mod shell;
pub mod sim;

pub use batch::{coalesce_ops, expand_results, CoalesceStats, CoalescedOp, MapShape, OpAnswer};
pub use ctrl::{
    crc32, decode_frame, encode_frame, CtrlError, CtrlLossConfig, CtrlOptions, CtrlStats,
    FrameError, HostCompletion, HostOp, HostOpResult, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_LEN,
};
pub use diff::{
    assert_equivalent_ops, assert_equivalent_ops_coalesced, compare_sharded,
    compare_sharded_failover, compare_with_ops, compare_with_ops_coalesced, Divergence,
    FailoverDiff, HostEvent, MergeStrategy,
};
pub use fault::{
    FaultConfig, FaultEngine, FaultEvent, FaultKind, FaultOutcome, FaultSite, FaultStats,
    ReplicaFault, ReplicaFaultConfig, ReplicaFaultKind, ReplicaFaultStats,
};
pub use hist::Log2Histogram;
pub use multi::{
    resteer_rss_table, rss_flow_hash, CompiledSteering, MultiNic, MultiReport, Steering,
    SteeringError, SteeringStats,
};
pub use shared::{
    check_linearizable, fabric_from_plan, map_key_hash, merges_from_plan, Arbitration,
    LinearizabilityViolation, MapAccess, MapEvent, MapEventKind, ShardReport, ShardedNic,
    SharedEvent, SharedMapOptions, SharedMapStats, SharedOpCompletion, HOST_REPLICA,
};
pub use shell::{NicShell, ShellOptions, ShellReport};
pub use sim::{Backend, PipelineSim, SimCounters, SimError, SimOptions, SimOutcome};
