//! Multiple XDP programs on one NIC.
//!
//! §2.4 motivates state pruning with exactly this deployment: "in real
//! deployments, it is also possible that multiple XDP programs are loaded
//! at the same time (e.g., to handle different types of protocols /
//! traffic)". This module instantiates several generated pipelines behind
//! one shell with a steering function choosing the pipeline per packet —
//! and exposes the combined resource bill that pruning keeps affordable.

use crate::ctrl::{CtrlError, CtrlOptions, HostCompletion, HostOp};
use crate::sim::{PipelineSim, SimOptions, SimOutcome};
use ehdl_core::{resource, PipelineDesign, ResourceEstimate};

/// How arriving packets are steered to a pipeline.
#[derive(Debug, Clone)]
pub enum Steering {
    /// By EtherType: `(ethertype, pipeline)` pairs with a default.
    ByEtherType {
        /// Match table.
        rules: Vec<(u16, usize)>,
        /// Pipeline for unmatched packets.
        default: usize,
    },
    /// By IPv4 protocol byte, with a default.
    ByIpProto {
        /// Match table.
        rules: Vec<(u8, usize)>,
        /// Pipeline for unmatched packets.
        default: usize,
    },
}

impl Steering {
    /// Choose a pipeline index for a packet.
    ///
    /// One-shot convenience; batch paths should [`Steering::compile`]
    /// once and steer through the compiled form.
    pub fn steer(&self, packet: &[u8]) -> usize {
        self.compile().steer(packet)
    }

    /// Precompute the match structure — a 256-entry dispatch table for
    /// the protocol byte, a sorted table for EtherTypes — mirroring how
    /// the shell's steering logic would actually be synthesized (a small
    /// LUT, not a rule scan). First-match semantics are preserved.
    pub fn compile(&self) -> CompiledSteering {
        match self {
            Steering::ByEtherType { rules, default } => {
                let mut sorted = rules.clone();
                // Stable sort + first-wins dedup preserves rule priority.
                sorted.sort_by_key(|&(t, _)| t);
                sorted.dedup_by_key(|&mut (t, _)| t);
                CompiledSteering::ByEtherType { sorted, default: *default }
            }
            Steering::ByIpProto { rules, default } => {
                let mut table = [*default; 256];
                let mut set = [false; 256];
                for &(proto, p) in rules {
                    if !set[proto as usize] {
                        table[proto as usize] = p;
                        set[proto as usize] = true;
                    }
                }
                CompiledSteering::ByIpProto { table: Box::new(table) }
            }
        }
    }
}

/// A [`Steering`] policy lowered to its dispatch structure.
#[derive(Debug, Clone)]
pub enum CompiledSteering {
    /// Sorted unique `(ethertype, pipeline)` pairs for binary search.
    ByEtherType {
        /// Sorted match table.
        sorted: Vec<(u16, usize)>,
        /// Pipeline for unmatched packets.
        default: usize,
    },
    /// Full 256-entry protocol-byte dispatch table.
    ByIpProto {
        /// `table[proto]` is the target pipeline.
        table: Box<[usize; 256]>,
    },
}

impl CompiledSteering {
    /// Choose a pipeline index for a packet.
    pub fn steer(&self, packet: &[u8]) -> usize {
        match self {
            CompiledSteering::ByEtherType { sorted, default } => {
                let ty = packet.get(12..14).map(|b| u16::from_be_bytes([b[0], b[1]])).unwrap_or(0);
                match sorted.binary_search_by_key(&ty, |&(t, _)| t) {
                    Ok(i) => sorted[i].1,
                    Err(_) => *default,
                }
            }
            CompiledSteering::ByIpProto { table } => {
                table[packet.get(23).copied().unwrap_or(0) as usize]
            }
        }
    }
}

/// Several eHDL pipelines sharing one NIC shell.
///
/// ```
/// use ehdl_core::Compiler;
/// use ehdl_ebpf::asm::Asm;
/// use ehdl_ebpf::Program;
/// use ehdl_hwsim::{MultiNic, SimOptions, Steering};
///
/// let mut a = Asm::new();
/// a.mov64_imm(0, 2);
/// a.exit();
/// let d = Compiler::new().compile(&Program::from_insns(a.into_insns()))?;
/// let mut nic = MultiNic::new(
///     &[d.clone(), d],
///     Steering::ByEtherType { rules: vec![(0x0800, 0)], default: 1 },
///     SimOptions::default(),
/// );
/// let report = nic.run(vec![vec![0u8; 64]]);
/// assert_eq!(report.steered, vec![0, 1]);
/// # Ok::<(), ehdl_core::CompileError>(())
/// ```
#[derive(Debug)]
pub struct MultiNic {
    sims: Vec<PipelineSim>,
    designs: Vec<PipelineDesign>,
    steering: CompiledSteering,
}

/// Per-pipeline slice of a multi-program run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Packets steered to each pipeline.
    pub steered: Vec<u64>,
    /// Packets completed by each pipeline.
    pub completed: Vec<u64>,
    /// All outcomes tagged with their pipeline index, in completion order
    /// per pipeline.
    pub outcomes: Vec<(usize, SimOutcome)>,
    /// Per-pipeline availability (1.0 without fault injection).
    pub availability: Vec<f64>,
}

impl MultiNic {
    /// Instantiate pipelines for `designs` with a steering policy.
    ///
    /// # Panics
    ///
    /// Panics if `designs` is empty or a steering target is out of range.
    pub fn new(designs: &[PipelineDesign], steering: Steering, options: SimOptions) -> MultiNic {
        assert!(!designs.is_empty(), "at least one pipeline");
        let check = |p: usize| assert!(p < designs.len(), "steering target {p} out of range");
        match &steering {
            Steering::ByEtherType { rules, default } => {
                rules.iter().for_each(|(_, p)| check(*p));
                check(*default);
            }
            Steering::ByIpProto { rules, default } => {
                rules.iter().for_each(|(_, p)| check(*p));
                check(*default);
            }
        }
        MultiNic {
            sims: designs.iter().map(|d| PipelineSim::with_options(d, options)).collect(),
            designs: designs.to_vec(),
            steering: steering.compile(),
        }
    }

    /// Mutable access to pipeline `i`'s simulator (host map setup).
    pub fn sim_mut(&mut self, i: usize) -> &mut PipelineSim {
        &mut self.sims[i]
    }

    /// Attach a host control channel to every pipeline. The host reaches
    /// each program's maps independently — one PCIe function per loaded
    /// program, as on a real multi-program NIC.
    pub fn attach_ctrl(&mut self, options: CtrlOptions) {
        for sim in &mut self.sims {
            sim.attach_ctrl(options);
        }
    }

    /// Submit a host op to pipeline `i`'s control channel. Ops submitted
    /// before [`MultiNic::run`] are barrier-ordered against that run's
    /// packets and retire during it.
    pub fn submit_host_op(&mut self, i: usize, op: HostOp) -> Result<u64, CtrlError> {
        self.sims[i].submit_host_op(op)
    }

    /// Drain pipeline `i`'s host-op completions.
    pub fn host_completions(&mut self, i: usize) -> Vec<HostCompletion> {
        self.sims[i].host_completions()
    }

    /// Attach fault injection to every pipeline. Each pipeline's engine is
    /// seeded from `cfg.seed` and its index, so the pipelines see
    /// decorrelated (but still reproducible) fault streams — independent
    /// hardware blocks do not fail in lockstep.
    pub fn attach_faults(&mut self, cfg: crate::fault::FaultConfig) {
        for (i, sim) in self.sims.iter_mut().enumerate() {
            let seed = cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            sim.attach_faults(crate::fault::FaultConfig { seed, ..cfg });
        }
    }

    /// Run a packet burst through the steered pipelines (all pipelines
    /// tick in lockstep, sharing the 250 MHz clock).
    ///
    /// The pipelines are independent hardware blocks exchanging no state,
    /// so each one runs on its own thread, replaying the same global
    /// arrival schedule (one clock tick per arrival, then a drain): the
    /// per-pipeline cycle sequence — and therefore every outcome and
    /// counter — is identical to stepping them in lockstep.
    pub fn run(&mut self, packets: impl IntoIterator<Item = Vec<u8>>) -> MultiReport {
        let n = self.sims.len();
        let packets: Vec<Vec<u8>> = packets.into_iter().collect();
        let targets: Vec<usize> = packets.iter().map(|p| self.steering.steer(p)).collect();
        let mut steered = vec![0u64; n];
        for &t in &targets {
            steered[t] += 1;
        }
        let packets = &packets;
        let targets = &targets;
        let outs: Vec<Vec<SimOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .sims
                .iter_mut()
                .enumerate()
                .map(|(i, sim)| {
                    scope.spawn(move || {
                        for (pkt, &t) in packets.iter().zip(targets) {
                            if t == i {
                                sim.enqueue(pkt.clone());
                            }
                            sim.step();
                        }
                        sim.settle(10_000_000);
                        sim.drain()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("pipeline thread panicked")).collect()
        });
        let mut outcomes = Vec::new();
        let mut completed = vec![0u64; n];
        for (i, outs_i) in outs.into_iter().enumerate() {
            completed[i] = outs_i.len() as u64;
            outcomes.extend(outs_i.into_iter().map(|o| (i, o)));
        }
        let availability = self.sims.iter().map(|s| s.availability()).collect();
        MultiReport { steered, completed, outcomes, availability }
    }

    /// Combined FPGA bill: every pipeline plus one shared shell.
    pub fn resources(&self) -> ResourceEstimate {
        let mut total = ResourceEstimate {
            luts: resource::cost::SHELL_LUTS,
            ffs: resource::cost::SHELL_FFS,
            brams: resource::cost::SHELL_BRAMS,
        };
        for d in &self.designs {
            total = total.plus(resource::estimate_pipeline(d));
        }
        total
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_core::{Compiler, Target};
    use ehdl_ebpf::vm::XdpAction;
    use ehdl_net::{FiveTuple, IPPROTO_TCP, IPPROTO_UDP};
    use ehdl_programs::{router, simple_firewall, suricata, App};
    use ehdl_traffic::build_flow_packet;

    fn designs() -> Vec<PipelineDesign> {
        vec![
            Compiler::new().compile(&simple_firewall::program()).unwrap(),
            Compiler::new().compile(&suricata::program()).unwrap(),
        ]
    }

    #[test]
    fn steering_splits_udp_and_tcp() {
        // UDP → firewall pipeline, TCP → the IDS filter.
        let designs = designs();
        let mut nic = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![(IPPROTO_UDP, 0), (IPPROTO_TCP, 1)], default: 1 },
            SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
        );
        let udp = FiveTuple {
            saddr: [10, 0, 0, 1],
            daddr: [1; 4],
            sport: 9,
            dport: 53,
            proto: IPPROTO_UDP,
        };
        let tcp = FiveTuple {
            saddr: [10, 0, 0, 2],
            daddr: [2; 4],
            sport: 9,
            dport: 80,
            proto: IPPROTO_TCP,
        };
        let mut packets = Vec::new();
        for _ in 0..20 {
            packets.push(build_flow_packet(&udp, [1; 6], [2; 6], 64));
            packets.push(build_flow_packet(&tcp, [1; 6], [2; 6], 64));
        }
        let report = nic.run(packets);
        assert_eq!(report.steered, vec![20, 20]);
        assert_eq!(report.completed, vec![20, 20]);
        // Firewall forwards the inside UDP flow; IDS passes unmatched TCP.
        for (p, out) in &report.outcomes {
            match p {
                0 => assert_eq!(out.action, XdpAction::Tx),
                _ => assert_eq!(out.action, XdpAction::Pass),
            }
        }
        // Each pipeline kept its own maps.
        assert_eq!(simple_firewall::read_stats(nic.sim_mut(0).maps())[0], 20);
        assert_eq!(suricata::read_stats(nic.sim_mut(1).maps())[0], 20);
    }

    #[test]
    fn three_programs_fit_the_fpga() {
        // The sec. 2.4 motivation: pruned pipelines are small enough that
        // several coexist comfortably on the U50.
        let designs: Vec<PipelineDesign> = [App::Firewall, App::Router, App::Tunnel]
            .iter()
            .map(|a| Compiler::new().compile(&a.program()).unwrap())
            .collect();
        let nic = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![], default: 0 },
            SimOptions::default(),
        );
        let u = nic.resources().utilization(Target::ALVEO_U50);
        assert!(u.luts < 0.25, "three pipelines + shell at {:.1}% LUTs", u.luts * 100.0);
        assert!(u.brams < 0.60);
    }

    #[test]
    fn default_steering_catches_unmatched() {
        let designs = designs();
        let mut nic = MultiNic::new(
            &designs,
            Steering::ByEtherType { rules: vec![(0x0800, 0)], default: 1 },
            SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
        );
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        let report = nic.run(vec![arp]);
        assert_eq!(report.steered, vec![0, 1]);
    }

    #[test]
    fn per_pipeline_control_channels_are_independent() {
        use crate::ctrl::{CtrlOptions, HostOp, HostOpResult};
        let designs = designs();
        let mut nic = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![(IPPROTO_UDP, 0), (IPPROTO_TCP, 1)], default: 1 },
            SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
        );
        nic.attach_ctrl(CtrlOptions { latency_cycles: 1, queue_depth: 4 });
        // Pre-run ops have barrier 0: they see each program's *initial*
        // map state even though they retire while packets are in flight.
        nic.submit_host_op(0, HostOp::Dump { map: 0 }).unwrap();
        nic.submit_host_op(1, HostOp::Dump { map: 0 }).unwrap();
        let udp = FiveTuple {
            saddr: [10, 0, 0, 1],
            daddr: [1; 4],
            sport: 9,
            dport: 53,
            proto: IPPROTO_UDP,
        };
        let packets: Vec<_> =
            (0..10).map(|_| build_flow_packet(&udp, [1; 6], [2; 6], 64)).collect();
        let report = nic.run(packets);
        assert_eq!(report.steered[0], 10);
        for i in 0..2 {
            let c = nic.host_completions(i);
            assert_eq!(c.len(), 1, "pipeline {i}");
            let Ok(HostOpResult::Entries(entries)) = &c[0].result else {
                panic!("dump failed on pipeline {i}: {:?}", c[0].result);
            };
            // Barrier-0 snapshot: no packet effects visible.
            for (_, v) in entries {
                assert!(v.iter().all(|&b| b == 0), "pipeline {i} saw packet effects");
            }
        }
        // Post-run ops see the final state.
        nic.submit_host_op(0, HostOp::Dump { map: 0 }).unwrap();
        nic.sim_mut(0).settle(10_000);
        let c = nic.host_completions(0);
        let Ok(HostOpResult::Entries(entries)) = &c[0].result else { panic!() };
        assert!(
            entries.iter().any(|(_, v)| v.iter().any(|&b| b != 0)),
            "post-run dump must see the counted packets"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_steering_target_rejected() {
        let designs = vec![Compiler::new().compile(&router::program()).unwrap()];
        let _ = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![(6, 3)], default: 0 },
            SimOptions::default(),
        );
    }
}
