//! Multiple XDP programs on one NIC.
//!
//! §2.4 motivates state pruning with exactly this deployment: "in real
//! deployments, it is also possible that multiple XDP programs are loaded
//! at the same time (e.g., to handle different types of protocols /
//! traffic)". This module instantiates several generated pipelines behind
//! one shell with a steering function choosing the pipeline per packet —
//! and exposes the combined resource bill that pruning keeps affordable.

use crate::ctrl::{CtrlError, CtrlOptions, HostCompletion, HostOp};
use crate::sim::{PipelineSim, SimOptions, SimOutcome};
use ehdl_core::{resource, PipelineDesign, ResourceEstimate};
use ehdl_net::FiveTuple;

/// How arriving packets are steered to a pipeline.
#[derive(Debug, Clone)]
pub enum Steering {
    /// By EtherType: `(ethertype, pipeline)` pairs with a default.
    ByEtherType {
        /// Match table.
        rules: Vec<(u16, usize)>,
        /// Pipeline for unmatched packets.
        default: usize,
    },
    /// By IPv4 protocol byte, with a default.
    ByIpProto {
        /// Match table.
        rules: Vec<(u8, usize)>,
        /// Pipeline for unmatched packets.
        default: usize,
    },
    /// RSS flow sharding: a symmetric 5-tuple hash picks one of
    /// `replicas` — pipeline replicas running the *same* program — so
    /// both directions of a flow land on the same replica and a flow
    /// never migrates. Non-IP traffic hashes over the Ethernet header.
    RssFlowHash {
        /// Replica pipeline indices (typically `0..n`).
        replicas: Vec<usize>,
        /// Hash seed (Toeplitz-key analogue); same seed + same trace
        /// gives the identical shard assignment on every run.
        seed: u64,
    },
}

/// Why a [`Steering`] policy was rejected at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SteeringError {
    /// The NIC has no pipelines at all.
    NoPipelines,
    /// A rule, default, or replica names a pipeline that does not exist.
    TargetOutOfRange {
        /// The offending pipeline index.
        target: usize,
        /// Number of instantiated pipelines.
        pipelines: usize,
    },
    /// An RSS policy with an empty replica list steers nowhere.
    NoReplicas,
    /// An RSS policy across several replicas with an all-zero hash key:
    /// the Toeplitz-key analogue of a zero seed weakens the hash enough
    /// that crafted (or merely unlucky) traffic piles onto one replica.
    DegenerateSeed,
}

impl std::fmt::Display for SteeringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SteeringError::NoPipelines => write!(f, "at least one pipeline required"),
            SteeringError::TargetOutOfRange { target, pipelines } => {
                write!(f, "steering target {target} out of range (have {pipelines} pipelines)")
            }
            SteeringError::NoReplicas => write!(f, "RSS steering needs at least one replica"),
            SteeringError::DegenerateSeed => {
                write!(f, "RSS steering across replicas rejects the all-zero hash seed")
            }
        }
    }
}

impl std::error::Error for SteeringError {}

/// Symmetric RSS hash over the parsed 5-tuple, with an Ethernet-header
/// fallback for non-tuple-steered traffic.
///
/// Endpoints are canonically ordered before mixing, so a flow and its
/// reverse direction produce the same hash — required by stateful
/// programs (the firewall looks sessions up by the *reverse* tuple on
/// return traffic; both directions must shard to the same replica).
/// Mixing is `ehdl-rng`-style (splitmix64 finalizer), fully determined
/// by `(packet bytes, seed)`. Uses [`FiveTuple::parse_for_steering`]:
/// the hash must key off exactly the bytes XDP programs guard, even on
/// packets that are not well-formed IPv4.
pub fn rss_flow_hash(packet: &[u8], seed: u64) -> u64 {
    match FiveTuple::parse_for_steering(packet) {
        Some(t) => {
            let a = (u64::from(u32::from_be_bytes(t.saddr)) << 16) | u64::from(t.sport);
            let b = (u64::from(u32::from_be_bytes(t.daddr)) << 16) | u64::from(t.dport);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            mix64(seed ^ lo ^ hi.rotate_left(23) ^ (u64::from(t.proto) << 56))
        }
        None => {
            // FNV-1a over the Ethernet header (or whatever bytes exist).
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
            for &b in packet.iter().take(14) {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            mix64(h)
        }
    }
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl Steering {
    /// Check every rule target, default, and replica against the number
    /// of instantiated pipelines.
    ///
    /// # Errors
    ///
    /// The first [`SteeringError`] found, if any.
    pub fn validate(&self, pipelines: usize) -> Result<(), SteeringError> {
        if pipelines == 0 {
            return Err(SteeringError::NoPipelines);
        }
        let check = |p: usize| {
            if p < pipelines {
                Ok(())
            } else {
                Err(SteeringError::TargetOutOfRange { target: p, pipelines })
            }
        };
        match self {
            Steering::ByEtherType { rules, default } => {
                for &(_, p) in rules {
                    check(p)?;
                }
                check(*default)
            }
            Steering::ByIpProto { rules, default } => {
                for &(_, p) in rules {
                    check(p)?;
                }
                check(*default)
            }
            Steering::RssFlowHash { replicas, seed } => {
                if replicas.is_empty() {
                    return Err(SteeringError::NoReplicas);
                }
                if *seed == 0 && replicas.len() > 1 {
                    return Err(SteeringError::DegenerateSeed);
                }
                for &p in replicas {
                    check(p)?;
                }
                Ok(())
            }
        }
    }
    /// Choose a pipeline index for a packet.
    ///
    /// One-shot convenience; batch paths should [`Steering::compile`]
    /// once and steer through the compiled form.
    pub fn steer(&self, packet: &[u8]) -> usize {
        self.compile().steer(packet)
    }

    /// Precompute the match structure — a 256-entry dispatch table for
    /// the protocol byte, a sorted table for EtherTypes — mirroring how
    /// the shell's steering logic would actually be synthesized (a small
    /// LUT, not a rule scan). First-match semantics are preserved.
    pub fn compile(&self) -> CompiledSteering {
        match self {
            Steering::ByEtherType { rules, default } => {
                let mut sorted = rules.clone();
                // Stable sort + first-wins dedup preserves rule priority.
                sorted.sort_by_key(|&(t, _)| t);
                sorted.dedup_by_key(|&mut (t, _)| t);
                CompiledSteering::ByEtherType { sorted, default: *default }
            }
            Steering::ByIpProto { rules, default } => {
                let mut table = [*default; 256];
                let mut set = [false; 256];
                for &(proto, p) in rules {
                    if !set[proto as usize] {
                        table[proto as usize] = p;
                        set[proto as usize] = true;
                    }
                }
                CompiledSteering::ByIpProto { table: Box::new(table) }
            }
            Steering::RssFlowHash { replicas, seed } => CompiledSteering::RssFlowHash {
                replicas: replicas.clone().into_boxed_slice(),
                seed: *seed,
            },
        }
    }
}

/// A [`Steering`] policy lowered to its dispatch structure.
#[derive(Debug, Clone)]
pub enum CompiledSteering {
    /// Sorted unique `(ethertype, pipeline)` pairs for binary search.
    ByEtherType {
        /// Sorted match table.
        sorted: Vec<(u16, usize)>,
        /// Pipeline for unmatched packets.
        default: usize,
    },
    /// Full 256-entry protocol-byte dispatch table.
    ByIpProto {
        /// `table[proto]` is the target pipeline.
        table: Box<[usize; 256]>,
    },
    /// RSS: symmetric flow hash modulo the replica list.
    RssFlowHash {
        /// Replica pipeline indices.
        replicas: Box<[usize]>,
        /// Hash seed.
        seed: u64,
    },
}

impl CompiledSteering {
    /// Choose a pipeline index for a packet.
    pub fn steer(&self, packet: &[u8]) -> usize {
        match self {
            CompiledSteering::ByEtherType { sorted, default } => {
                let ty = packet.get(12..14).map(|b| u16::from_be_bytes([b[0], b[1]])).unwrap_or(0);
                match sorted.binary_search_by_key(&ty, |&(t, _)| t) {
                    Ok(i) => sorted[i].1,
                    Err(_) => *default,
                }
            }
            CompiledSteering::ByIpProto { table } => {
                table[packet.get(23).copied().unwrap_or(0) as usize]
            }
            CompiledSteering::RssFlowHash { replicas, seed } => {
                replicas[(rss_flow_hash(packet, *seed) % replicas.len() as u64) as usize]
            }
        }
    }
}

/// Rewrite an RSS indirection table in place after a replica-set change.
///
/// `table[slot]` is the pipeline currently serving hash bucket `slot`, and
/// `home[slot]` its original owner. Slots whose current owner stopped
/// serving are redistributed round-robin across the serving set; slots
/// whose *home* returned to service get their home back. The table length
/// — and therefore the hash modulus — never changes, so flows hashed to
/// healthy replicas never migrate during a fail-over: exactly how a real
/// NIC reprograms its RSS indirection table.
///
/// Returns the number of slots rewritten; the table is left untouched
/// (and 0 returned) when no replica serves.
pub fn resteer_rss_table(table: &mut [usize], home: &[usize], serving: &[bool]) -> usize {
    let heirs: Vec<usize> = (0..serving.len()).filter(|&r| serving[r]).collect();
    if heirs.is_empty() {
        return 0;
    }
    let mut next = 0usize;
    let mut rewritten = 0usize;
    for (slot, cur) in table.iter_mut().enumerate() {
        let h = home.get(slot).copied().unwrap_or(*cur);
        let want = if serving.get(h).copied().unwrap_or(false) {
            h
        } else {
            let heir = heirs[next % heirs.len()];
            next += 1;
            heir
        };
        if *cur != want {
            *cur = want;
            rewritten += 1;
        }
    }
    rewritten
}

/// Several eHDL pipelines sharing one NIC shell.
///
/// ```
/// use ehdl_core::Compiler;
/// use ehdl_ebpf::asm::Asm;
/// use ehdl_ebpf::Program;
/// use ehdl_hwsim::{MultiNic, SimOptions, Steering};
///
/// let mut a = Asm::new();
/// a.mov64_imm(0, 2);
/// a.exit();
/// let d = Compiler::new().compile(&Program::from_insns(a.into_insns()))?;
/// let mut nic = MultiNic::new(
///     &[d.clone(), d],
///     Steering::ByEtherType { rules: vec![(0x0800, 0)], default: 1 },
///     SimOptions::default(),
/// );
/// let report = nic.run(vec![vec![0u8; 64]]);
/// assert_eq!(report.steered, vec![0, 1]);
/// # Ok::<(), ehdl_core::CompileError>(())
/// ```
#[derive(Debug)]
pub struct MultiNic {
    sims: Vec<PipelineSim>,
    designs: Vec<PipelineDesign>,
    steering: CompiledSteering,
}

/// Per-pipeline slice of a multi-program run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Packets steered to each pipeline.
    pub steered: Vec<u64>,
    /// Packets completed by each pipeline.
    pub completed: Vec<u64>,
    /// Arrivals each pipeline lost to RX-queue overflow during the run.
    pub dropped: Vec<u64>,
    /// Cycles each pipeline ran (injection through settle).
    pub cycles: Vec<u64>,
    /// All outcomes tagged with their pipeline index, in completion order
    /// per pipeline.
    pub outcomes: Vec<(usize, SimOutcome)>,
    /// Per-pipeline availability (1.0 without fault injection).
    pub availability: Vec<f64>,
}

/// Steering/throughput summary of a [`MultiReport`], exported through
/// `RuntimeStats::to_json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SteeringStats {
    /// Packets steered to each pipeline.
    pub steered: Vec<u64>,
    /// Arrivals each pipeline lost to RX-queue overflow.
    pub dropped: Vec<u64>,
    /// Per-pipeline throughput (completed packets per cycle).
    pub pkts_per_cycle: Vec<f64>,
    /// Steering imbalance: max per-pipeline load over mean load
    /// (1.0 = perfectly balanced; 1.0 by convention for an empty run).
    pub imbalance: f64,
}

impl MultiReport {
    /// Per-pipeline throughput in completed packets per cycle.
    pub fn pkts_per_cycle(&self) -> Vec<f64> {
        self.completed
            .iter()
            .zip(&self.cycles)
            .map(|(&c, &cy)| if cy == 0 { 0.0 } else { c as f64 / cy as f64 })
            .collect()
    }

    /// Steering imbalance: the hottest pipeline's share of arrivals over
    /// the mean share. 1.0 means perfectly balanced; `n` means one
    /// pipeline took everything. 1.0 by convention when nothing arrived.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.steered.iter().sum();
        if total == 0 || self.steered.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.steered.len() as f64;
        let max = self.steered.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Bundle the steering/throughput summary for telemetry export.
    pub fn steering_stats(&self) -> SteeringStats {
        SteeringStats {
            steered: self.steered.clone(),
            dropped: self.dropped.clone(),
            pkts_per_cycle: self.pkts_per_cycle(),
            imbalance: self.imbalance(),
        }
    }
}

impl MultiNic {
    /// Instantiate pipelines for `designs` with a steering policy.
    ///
    /// # Panics
    ///
    /// Panics if `designs` is empty or a steering target is out of range;
    /// [`MultiNic::try_new`] reports both as typed errors instead.
    pub fn new(designs: &[PipelineDesign], steering: Steering, options: SimOptions) -> MultiNic {
        match MultiNic::try_new(designs, steering, options) {
            Ok(nic) => nic,
            Err(SteeringError::TargetOutOfRange { target, .. }) => {
                panic!("steering target {target} out of range")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Instantiate pipelines for `designs`, rejecting a bad steering
    /// policy up front instead of panicking deep inside a run.
    ///
    /// # Errors
    ///
    /// Any [`SteeringError`] from [`Steering::validate`].
    pub fn try_new(
        designs: &[PipelineDesign],
        steering: Steering,
        options: SimOptions,
    ) -> Result<MultiNic, SteeringError> {
        steering.validate(designs.len())?;
        Ok(MultiNic {
            sims: designs.iter().map(|d| PipelineSim::with_options(d, options)).collect(),
            designs: designs.to_vec(),
            steering: steering.compile(),
        })
    }

    /// Mutable access to pipeline `i`'s simulator (host map setup).
    pub fn sim_mut(&mut self, i: usize) -> &mut PipelineSim {
        &mut self.sims[i]
    }

    /// Attach a host control channel to every pipeline. The host reaches
    /// each program's maps independently — one PCIe function per loaded
    /// program, as on a real multi-program NIC.
    pub fn attach_ctrl(&mut self, options: CtrlOptions) {
        for sim in &mut self.sims {
            sim.attach_ctrl(options);
        }
    }

    /// Submit a host op to pipeline `i`'s control channel. Ops submitted
    /// before [`MultiNic::run`] are barrier-ordered against that run's
    /// packets and retire during it.
    pub fn submit_host_op(&mut self, i: usize, op: HostOp) -> Result<u64, CtrlError> {
        self.sims[i].submit_host_op(op)
    }

    /// Drain pipeline `i`'s host-op completions.
    pub fn host_completions(&mut self, i: usize) -> Vec<HostCompletion> {
        self.sims[i].host_completions()
    }

    /// Attach fault injection to every pipeline. Each pipeline's engine is
    /// seeded from `cfg.seed` and its index, so the pipelines see
    /// decorrelated (but still reproducible) fault streams — independent
    /// hardware blocks do not fail in lockstep.
    pub fn attach_faults(&mut self, cfg: crate::fault::FaultConfig) {
        for (i, sim) in self.sims.iter_mut().enumerate() {
            let seed = cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            sim.attach_faults(crate::fault::FaultConfig { seed, ..cfg });
        }
    }

    /// Run a packet burst through the steered pipelines (all pipelines
    /// tick in lockstep, sharing the 250 MHz clock).
    ///
    /// The pipelines are independent hardware blocks exchanging no state,
    /// so each one runs on its own thread, replaying the same global
    /// arrival schedule (one clock tick per arrival, then a drain): the
    /// per-pipeline cycle sequence — and therefore every outcome and
    /// counter — is identical to stepping them in lockstep.
    pub fn run(&mut self, packets: impl IntoIterator<Item = Vec<u8>>) -> MultiReport {
        let n = self.sims.len();
        let packets: Vec<Vec<u8>> = packets.into_iter().collect();
        let targets: Vec<usize> = packets.iter().map(|p| self.steering.steer(p)).collect();
        let mut steered = vec![0u64; n];
        for &t in &targets {
            steered[t] += 1;
        }
        let packets = &packets;
        let targets = &targets;
        let before: Vec<(u64, u64)> =
            self.sims.iter().map(|s| (s.cycle(), s.counters().rx_dropped)).collect();
        let outs: Vec<Vec<SimOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .sims
                .iter_mut()
                .enumerate()
                .map(|(i, sim)| {
                    scope.spawn(move || {
                        for (pkt, &t) in packets.iter().zip(targets) {
                            if t == i {
                                // A full RX queue counts in `rx_dropped`;
                                // the report surfaces the per-pipeline
                                // delta so bursts never vanish silently.
                                let _ = sim.enqueue(pkt.clone());
                            }
                            sim.step();
                        }
                        sim.settle(10_000_000);
                        sim.drain()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("pipeline thread panicked")).collect()
        });
        let mut outcomes = Vec::new();
        let mut completed = vec![0u64; n];
        for (i, outs_i) in outs.into_iter().enumerate() {
            completed[i] = outs_i.len() as u64;
            outcomes.extend(outs_i.into_iter().map(|o| (i, o)));
        }
        let availability = self.sims.iter().map(|s| s.availability()).collect();
        let cycles = self.sims.iter().zip(&before).map(|(s, &(c0, _))| s.cycle() - c0).collect();
        let dropped = self
            .sims
            .iter()
            .zip(&before)
            .map(|(s, &(_, d0))| s.counters().rx_dropped - d0)
            .collect();
        MultiReport { steered, completed, dropped, cycles, outcomes, availability }
    }

    /// Combined FPGA bill: every pipeline plus one shared shell.
    pub fn resources(&self) -> ResourceEstimate {
        let mut total = ResourceEstimate {
            luts: resource::cost::SHELL_LUTS,
            ffs: resource::cost::SHELL_FFS,
            brams: resource::cost::SHELL_BRAMS,
        };
        for d in &self.designs {
            total = total.plus(resource::estimate_pipeline(d));
        }
        total
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_core::{Compiler, Target};
    use ehdl_ebpf::vm::XdpAction;
    use ehdl_net::{FiveTuple, IPPROTO_TCP, IPPROTO_UDP};
    use ehdl_programs::{router, simple_firewall, suricata, App};
    use ehdl_traffic::build_flow_packet;

    fn designs() -> Vec<PipelineDesign> {
        vec![
            Compiler::new().compile(&simple_firewall::program()).unwrap(),
            Compiler::new().compile(&suricata::program()).unwrap(),
        ]
    }

    #[test]
    fn steering_splits_udp_and_tcp() {
        // UDP → firewall pipeline, TCP → the IDS filter.
        let designs = designs();
        let mut nic = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![(IPPROTO_UDP, 0), (IPPROTO_TCP, 1)], default: 1 },
            SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
        );
        let udp = FiveTuple {
            saddr: [10, 0, 0, 1],
            daddr: [1; 4],
            sport: 9,
            dport: 53,
            proto: IPPROTO_UDP,
        };
        let tcp = FiveTuple {
            saddr: [10, 0, 0, 2],
            daddr: [2; 4],
            sport: 9,
            dport: 80,
            proto: IPPROTO_TCP,
        };
        let mut packets = Vec::new();
        for _ in 0..20 {
            packets.push(build_flow_packet(&udp, [1; 6], [2; 6], 64));
            packets.push(build_flow_packet(&tcp, [1; 6], [2; 6], 64));
        }
        let report = nic.run(packets);
        assert_eq!(report.steered, vec![20, 20]);
        assert_eq!(report.completed, vec![20, 20]);
        // Firewall forwards the inside UDP flow; IDS passes unmatched TCP.
        for (p, out) in &report.outcomes {
            match p {
                0 => assert_eq!(out.action, XdpAction::Tx),
                _ => assert_eq!(out.action, XdpAction::Pass),
            }
        }
        // Each pipeline kept its own maps.
        assert_eq!(simple_firewall::read_stats(nic.sim_mut(0).maps())[0], 20);
        assert_eq!(suricata::read_stats(nic.sim_mut(1).maps())[0], 20);
    }

    #[test]
    fn three_programs_fit_the_fpga() {
        // The sec. 2.4 motivation: pruned pipelines are small enough that
        // several coexist comfortably on the U50.
        let designs: Vec<PipelineDesign> = [App::Firewall, App::Router, App::Tunnel]
            .iter()
            .map(|a| Compiler::new().compile(&a.program()).unwrap())
            .collect();
        let nic = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![], default: 0 },
            SimOptions::default(),
        );
        let u = nic.resources().utilization(Target::ALVEO_U50);
        assert!(u.luts < 0.25, "three pipelines + shell at {:.1}% LUTs", u.luts * 100.0);
        assert!(u.brams < 0.60);
    }

    #[test]
    fn default_steering_catches_unmatched() {
        let designs = designs();
        let mut nic = MultiNic::new(
            &designs,
            Steering::ByEtherType { rules: vec![(0x0800, 0)], default: 1 },
            SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
        );
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        let report = nic.run(vec![arp]);
        assert_eq!(report.steered, vec![0, 1]);
    }

    #[test]
    fn per_pipeline_control_channels_are_independent() {
        use crate::ctrl::{CtrlOptions, HostOp, HostOpResult};
        let designs = designs();
        let mut nic = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![(IPPROTO_UDP, 0), (IPPROTO_TCP, 1)], default: 1 },
            SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
        );
        nic.attach_ctrl(CtrlOptions { latency_cycles: 1, queue_depth: 4 });
        // Pre-run ops have barrier 0: they see each program's *initial*
        // map state even though they retire while packets are in flight.
        nic.submit_host_op(0, HostOp::Dump { map: 0 }).unwrap();
        nic.submit_host_op(1, HostOp::Dump { map: 0 }).unwrap();
        let udp = FiveTuple {
            saddr: [10, 0, 0, 1],
            daddr: [1; 4],
            sport: 9,
            dport: 53,
            proto: IPPROTO_UDP,
        };
        let packets: Vec<_> =
            (0..10).map(|_| build_flow_packet(&udp, [1; 6], [2; 6], 64)).collect();
        let report = nic.run(packets);
        assert_eq!(report.steered[0], 10);
        for i in 0..2 {
            let c = nic.host_completions(i);
            assert_eq!(c.len(), 1, "pipeline {i}");
            let Ok(HostOpResult::Entries(entries)) = &c[0].result else {
                panic!("dump failed on pipeline {i}: {:?}", c[0].result);
            };
            // Barrier-0 snapshot: no packet effects visible.
            for (_, v) in entries {
                assert!(v.iter().all(|&b| b == 0), "pipeline {i} saw packet effects");
            }
        }
        // Post-run ops see the final state.
        nic.submit_host_op(0, HostOp::Dump { map: 0 }).unwrap();
        nic.sim_mut(0).settle(10_000);
        let c = nic.host_completions(0);
        let Ok(HostOpResult::Entries(entries)) = &c[0].result else { panic!() };
        assert!(
            entries.iter().any(|(_, v)| v.iter().any(|&b| b != 0)),
            "post-run dump must see the counted packets"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_steering_target_rejected() {
        let designs = vec![Compiler::new().compile(&router::program()).unwrap()];
        let _ = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![(6, 3)], default: 0 },
            SimOptions::default(),
        );
    }

    #[test]
    fn validate_reports_typed_errors() {
        let s = Steering::ByIpProto { rules: vec![(6, 3)], default: 0 };
        assert_eq!(s.validate(2), Err(SteeringError::TargetOutOfRange { target: 3, pipelines: 2 }));
        assert_eq!(s.validate(0), Err(SteeringError::NoPipelines));
        assert_eq!(s.validate(4), Ok(()));
        let rss = Steering::RssFlowHash { replicas: vec![], seed: 1 };
        assert_eq!(rss.validate(2), Err(SteeringError::NoReplicas));
        let rss = Steering::RssFlowHash { replicas: vec![0, 2], seed: 1 };
        assert_eq!(
            rss.validate(2),
            Err(SteeringError::TargetOutOfRange { target: 2, pipelines: 2 })
        );
        // A degenerate all-zero hash key is rejected across replicas but
        // tolerated when one replica makes steering constant anyway.
        let rss = Steering::RssFlowHash { replicas: vec![0, 1], seed: 0 };
        assert_eq!(rss.validate(2), Err(SteeringError::DegenerateSeed));
        let rss = Steering::RssFlowHash { replicas: vec![0], seed: 0 };
        assert_eq!(rss.validate(1), Ok(()));
        let designs = vec![Compiler::new().compile(&router::program()).unwrap()];
        let err = MultiNic::try_new(
            &designs,
            Steering::RssFlowHash { replicas: vec![1], seed: 0 },
            SimOptions::default(),
        )
        .err();
        assert_eq!(err, Some(SteeringError::TargetOutOfRange { target: 1, pipelines: 1 }));
    }

    #[test]
    fn rss_hash_is_symmetric_and_spreads() {
        let seed = 0xfeed_beef;
        let mut per_replica = [0u32; 4];
        for i in 0..256u32 {
            let t = FiveTuple {
                saddr: [10, 0, (i >> 8) as u8, i as u8],
                daddr: [192, 168, 1, 1],
                sport: 1000 + i as u16,
                dport: 53,
                proto: IPPROTO_UDP,
            };
            let fwd = build_flow_packet(&t, [1; 6], [2; 6], 64);
            let rev = build_flow_packet(&t.reversed(), [2; 6], [1; 6], 64);
            assert_eq!(
                rss_flow_hash(&fwd, seed),
                rss_flow_hash(&rev, seed),
                "flow {i}: both directions must shard identically"
            );
            per_replica[(rss_flow_hash(&fwd, seed) % 4) as usize] += 1;
        }
        // A decent mix: no replica starves or hogs (256 flows over 4).
        for (r, &n) in per_replica.iter().enumerate() {
            assert!((24..=104).contains(&n), "replica {r} got {n}/256 flows");
        }
        // Non-IP frames hash too (Ethernet fallback), deterministically.
        let arp = vec![0x08u8; 60];
        assert_eq!(rss_flow_hash(&arp, seed), rss_flow_hash(&arp, seed));
        assert_ne!(rss_flow_hash(&arp, seed), rss_flow_hash(&arp, seed ^ 1));
    }

    #[test]
    fn report_exposes_throughput_and_imbalance() {
        let designs = designs();
        let mut nic = MultiNic::new(
            &designs,
            Steering::ByIpProto { rules: vec![(IPPROTO_UDP, 0), (IPPROTO_TCP, 1)], default: 1 },
            SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
        );
        let udp = FiveTuple {
            saddr: [10, 0, 0, 1],
            daddr: [1; 4],
            sport: 9,
            dport: 53,
            proto: IPPROTO_UDP,
        };
        let packets: Vec<_> =
            (0..30).map(|_| build_flow_packet(&udp, [1; 6], [2; 6], 64)).collect();
        let report = nic.run(packets);
        assert_eq!(report.dropped, vec![0, 0]);
        let tp = report.pkts_per_cycle();
        assert!(tp[0] > 0.0, "loaded pipeline has throughput");
        assert_eq!(tp[1], 0.0, "idle pipeline has none");
        // All 30 packets hit pipeline 0 of 2: imbalance is exactly 2.
        assert_eq!(report.imbalance(), 2.0);
        let stats = report.steering_stats();
        assert_eq!(stats.steered, vec![30, 0]);
        assert_eq!(stats.imbalance, 2.0);
    }
}
