//! Many-pipeline scale-out: N replicas of one generated pipeline behind
//! an RSS flow-steering front end, sharing map state through a banked
//! memory interconnect (ROADMAP item 2; VeBPF's many-core architecture).
//!
//! The model has three layers:
//!
//! * **Steering** — [`crate::multi::rss_flow_hash`] shards flows across
//!   replicas; both directions of a flow land on the same replica, so
//!   flow-local map state (firewall sessions, NAT bindings) never
//!   migrates and stays *partitioned* by construction.
//! * **Storage** — one canonical copy of every map. Replicas run in
//!   single-threaded lockstep; each replica's cycle executes against the
//!   canonical store (shared maps are swapped in for exactly that
//!   replica's cycle), so cross-replica reads and writes interleave in a
//!   fixed global order: replica 0's cycle, replica 1's, … — the
//!   sequential consistency a real arbiter serializing one winner per
//!   bank port would give, which makes every run deterministic and the
//!   access history per-key linearizable by construction. The attached
//!   memory-port tap ([`crate::sim::PipelineSim::attach_shared_port`])
//!   records the history so [`check_linearizable`] can *verify* that
//!   instead of assuming it.
//! * **Timing** — every *shared-map* access is routed to a bank
//!   (`hash(map, key) % banks`, one access per bank per cycle); private
//!   maps are replica-local BRAM and never touch the interconnect. When
//!   several replicas hit one bank in the same cycle, the arbiter picks
//!   winners ([`Arbitration`]) and each loser's pipeline is frozen for
//!   its queue position; access latency beyond 1 cycle stalls the
//!   requester too. The stall back-pressures the whole replica exactly
//!   like the FEB reload bubble: its clock is gated, packets sit in
//!   their stages, and the RX queue absorbs arrivals. Optional
//!   per-replica read caches (direct-mapped, write-invalidate) remove
//!   read traffic from the fabric without touching storage — they are a
//!   timing model only, so they can never change results, only stalls.
//!
//! Host ops against shared maps reuse the barrier-fence discipline of
//! the `ehdl-runtime` control plane (PR 5): an op submitted at global
//! arrival position `B` waits until every replica has retired all its
//! pre-`B` arrivals, then executes against canonical storage between two
//! global cycles — exactly the sequential-reference position.

use crate::ctrl::{HostOp, HostOpResult};
use crate::diff::{apply_host_op_to_store, MergeStrategy};
use crate::fault::{ReplicaFaultConfig, ReplicaFaultKind, ReplicaFaultStats};
use crate::multi::{resteer_rss_table, rss_flow_hash};
use crate::sim::{PipelineSim, SimOptions, SimOutcome};
use ehdl_core::PipelineDesign;
use ehdl_ebpf::maps::{MapError, MapStore, UpdateFlags};
use std::collections::VecDeque;

/// One traced shared-map access, as seen by the banked fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapAccess {
    /// Target map id.
    pub map: u32,
    /// Mixed hash of `(map, key)`; bank index and cache tag derive from it.
    pub key_hash: u64,
    /// Write (update/delete/atomic/committed store) vs read (lookup).
    pub write: bool,
}

/// What a shared-map event did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapEventKind {
    /// A lookup; `hit` records whether the key was present.
    Read {
        /// Key was present.
        hit: bool,
    },
    /// An insert/replace (or an atomic, logged with its post-update
    /// value) — `value` holds the bytes now in storage.
    Write,
    /// A delete.
    Delete,
}

/// One fully-described access to a *shared* map, for the
/// linearizability checker. Recorded at the moment storage actually
/// changed (or was read), so log order equals storage order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEvent {
    /// Target map id.
    pub map: u32,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Read: the value observed (empty on miss). Write: the value now
    /// stored (for atomics, the full post-update value). Delete: empty.
    pub value: Vec<u8>,
    /// Access kind.
    pub kind: MapEventKind,
}

/// A [`MapEvent`] in the global (cross-replica) history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedEvent {
    /// Global cycle at which the access happened.
    pub cycle: u64,
    /// Issuing replica, or [`HOST_REPLICA`] for a host control op.
    pub replica: usize,
    /// The access itself.
    pub event: MapEvent,
}

/// `replica` tag for host-issued events in the shared history.
pub const HOST_REPLICA: usize = usize::MAX;

/// Mixed hash of `(map, key)` used for banking and cache tags: FNV-1a
/// over the key bytes folded with the map id, splitmix-finalized so the
/// low bits (bank index) avalanche.
pub fn map_key_hash(map: u32, key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(map).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in key {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Per-bank arbitration policy when several replicas hit one bank in the
/// same cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Arbitration {
    /// The grant pointer rotates every cycle, so no replica starves.
    #[default]
    RoundRobin,
    /// Lowest replica index always wins (replica 0 is never stalled by a
    /// conflict; the highest index bears the brunt).
    FixedPriority,
}

/// Banked shared-map fabric configuration.
#[derive(Debug, Clone)]
pub struct SharedMapOptions {
    /// Number of memory banks (1 access per bank per cycle).
    pub banks: usize,
    /// Access latency in cycles; every fabric access stalls its
    /// requester `latency - 1` cycles on top of conflict serialization.
    pub latency: u64,
    /// Per-bank arbitration policy.
    pub arbitration: Arbitration,
    /// Per-replica read caches (direct-mapped, write-invalidate):
    /// a hit costs no fabric access. Timing-only — data always comes
    /// from canonical storage. Off by default.
    pub read_cache: bool,
    /// Cache lines per replica when `read_cache` is set.
    pub cache_lines: usize,
    /// Map ids with one storage copy shared by *all* replicas (e.g. a
    /// global stats array). Unlisted maps are per-replica private —
    /// correct for flow-local state under RSS sharding.
    pub shared_maps: Vec<u32>,
    /// Log full [`SharedEvent`]s on shared maps (linearizability
    /// checking; costs allocations, so off for pure benches).
    pub log_events: bool,
}

impl Default for SharedMapOptions {
    fn default() -> SharedMapOptions {
        SharedMapOptions {
            banks: 8,
            latency: 1,
            arbitration: Arbitration::RoundRobin,
            read_cache: false,
            cache_lines: 1024,
            shared_maps: Vec::new(),
            log_events: false,
        }
    }
}

/// Fabric telemetry for one sharded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharedMapStats {
    /// Shared-map accesses offered to the fabric (all replicas; private
    /// maps are replica-local BRAM and never reach the interconnect).
    pub accesses: u64,
    /// Accesses that went to a bank (read-cache hits are filtered out).
    pub fabric_accesses: u64,
    /// Fabric accesses that lost arbitration for at least one cycle.
    pub conflicts: u64,
    /// Read accesses served by a per-replica cache.
    pub cache_hits: u64,
    /// Cache lines invalidated by remote writes.
    pub invalidations: u64,
    /// Stall cycles levied on each replica (conflicts + latency).
    pub stall_cycles: Vec<u64>,
    /// Host ops applied to shared storage.
    pub host_ops: u64,
}

impl SharedMapStats {
    /// Fraction of fabric accesses that lost arbitration at least once.
    pub fn conflict_rate(&self) -> f64 {
        if self.fabric_accesses == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.fabric_accesses as f64
        }
    }
}

/// A completed host op against shared storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedOpCompletion {
    /// Submission id (order of [`ShardedNic::run_with_ops`] schedule).
    pub id: u64,
    /// What the op returned.
    pub result: Result<HostOpResult, MapError>,
}

/// Result of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Packets steered to each replica (accepted into its RX queue).
    pub steered: Vec<u64>,
    /// Packets completed by each replica.
    pub completed: Vec<u64>,
    /// Frames the replica's ingress MAC rejected (oversized). RX-queue
    /// overflow cannot drop here: the steering front end applies
    /// head-of-line backpressure instead.
    pub dropped: Vec<u64>,
    /// Global cycles the run took (feed through drain).
    pub cycles: u64,
    /// `(replica, global packet index, outcome)` in per-replica
    /// completion order.
    pub outcomes: Vec<(usize, u64, SimOutcome)>,
    /// Fabric telemetry.
    pub fabric: SharedMapStats,
    /// Global shared-map access history (empty unless
    /// [`SharedMapOptions::log_events`]).
    pub events: Vec<SharedEvent>,
    /// Host-op completions, in application order.
    pub host_completions: Vec<SharedOpCompletion>,
    /// Replica-failure campaign counters (zeroes without an attached
    /// [`ReplicaFaultConfig`]).
    pub failover: ReplicaFaultStats,
    /// Global packet indices drained (punted back to the host) from dead
    /// replicas' ingress FIFOs during this run. Sorted.
    pub drained: Vec<u64>,
    /// Global packet indices discarded mid-pipeline with a dead replica's
    /// clock domain during this run. Sorted.
    pub discarded: Vec<u64>,
    /// Global packet indices whose flow was homed on a replica that
    /// failed (detected) at any point: their results may legitimately
    /// diverge from a failure-free reference. Sorted. The complement —
    /// the *surviving* flows — must stay bit-equivalent to the
    /// sequential oracle.
    pub affected: Vec<u64>,
}

impl ShardReport {
    /// Aggregate throughput: completed packets per global cycle.
    pub fn aggregate_pkts_per_cycle(&self) -> f64 {
        let done: u64 = self.completed.iter().sum();
        if self.cycles == 0 {
            0.0
        } else {
            done as f64 / self.cycles as f64
        }
    }

    /// p99 packet latency in cycles (0 for an empty run).
    pub fn p99_latency_cycles(&self) -> u64 {
        let mut lat: Vec<u64> = self.outcomes.iter().map(|(_, _, o)| o.latency_cycles).collect();
        if lat.is_empty() {
            return 0;
        }
        lat.sort_unstable();
        lat[(lat.len() - 1).min(lat.len() * 99 / 100)]
    }

    /// Steering imbalance: hottest replica's arrivals over the mean
    /// (1.0 = perfectly balanced; 1.0 by convention for an empty run).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.steered.iter().sum();
        if total == 0 || self.steered.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.steered.len() as f64;
        self.steered.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

/// A host op waiting for its cross-replica fence.
#[derive(Debug)]
struct PendingSharedOp {
    id: u64,
    op: HostOp,
    /// Per replica: arrivals accepted before submission. The op applies
    /// once every replica has *completed* at least this many packets —
    /// the sequential-reference position of the PR 5 barrier, extended
    /// across replicas.
    barrier: Vec<u64>,
}

/// Direct-mapped, write-invalidate read cache (timing model only).
#[derive(Debug, Clone)]
struct ReadCache {
    tags: Vec<u64>,
}

impl ReadCache {
    fn new(lines: usize) -> ReadCache {
        ReadCache { tags: vec![0; lines.max(1)] }
    }

    #[inline]
    fn slot(&self, hash: u64) -> (usize, u64) {
        ((hash as usize) % self.tags.len(), hash | 1)
    }

    fn hit(&self, hash: u64) -> bool {
        let (line, tag) = self.slot(hash);
        self.tags[line] == tag
    }

    fn fill(&mut self, hash: u64) {
        let (line, tag) = self.slot(hash);
        self.tags[line] = tag;
    }

    /// Returns true if a matching line was present (and is now gone).
    fn invalidate(&mut self, hash: u64) -> bool {
        let (line, tag) = self.slot(hash);
        if self.tags[line] == tag {
            self.tags[line] = 0;
            true
        } else {
            false
        }
    }
}

/// Service state of one replica, driven by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    /// Clock running, packets flowing.
    Serving,
    /// Clock gone, not yet detected: the ingress FIFO still accepts
    /// frames, nothing retires, the heartbeat deadline is counting down.
    Dark {
        /// Global cycle the clock died.
        since: u64,
        /// Failure mode.
        kind: ReplicaFaultKind,
    },
    /// Detected and fail-stopped: in-flight packets accounted, state
    /// reconciled, flows re-steered to survivors.
    Failed {
        /// Global cycle at which the replica is re-admitted (`None` for
        /// a permanent kill).
        returns_at: Option<u64>,
    },
}

impl Health {
    fn serving(self) -> bool {
        matches!(self, Health::Serving)
    }
}

/// N replicas of one pipeline behind RSS steering and the banked
/// shared-map fabric.
#[derive(Debug)]
pub struct ShardedNic {
    sims: Vec<PipelineSim>,
    fabric: SharedMapOptions,
    /// Canonical storage for shared maps; private maps live in each
    /// replica's own store.
    shared_store: MapStore,
    shared_ids: Vec<u32>,
    caches: Vec<ReadCache>,
    stats: SharedMapStats,
    events: Vec<SharedEvent>,
    /// Per replica: local arrival seq → global packet index.
    seq_map: Vec<Vec<u64>>,
    cycle: u64,
    next_op_id: u64,
    pending_ops: VecDeque<PendingSharedOp>,
    completions: Vec<SharedOpCompletion>,
    /// Per-replica per-cycle access scratch (recycled).
    acc_scratch: Vec<Vec<MapAccess>>,
    ev_scratch: Vec<MapEvent>,
    /// Flattened per-cycle arbitration worklist (recycled).
    bank_order: Vec<(usize, usize)>,
    /// RSS hash seed (the indirection tables below index by
    /// `hash % home_table.len()`).
    rss_seed: u64,
    /// Original RSS indirection table: `home_table[slot]` is slot's owner
    /// when every replica serves. Fixed for the NIC's lifetime.
    home_table: Vec<usize>,
    /// Live indirection table the front end steers by; rewritten on
    /// fail-over and re-admission. Same length as `home_table`, so the
    /// hash modulus — and therefore every healthy flow's binding — is
    /// stable across re-steers.
    live_table: Vec<usize>,
    /// Per-replica service state.
    health: Vec<Health>,
    /// Replica failure schedule + watchdog parameters (schedule sorted by
    /// cycle; `None` = no failure injection).
    rfault: Option<ReplicaFaultConfig>,
    next_rfault: usize,
    /// Private-map reconciliation policy applied at fail-over.
    merge: Vec<(u32, MergeStrategy)>,
    fstats: ReplicaFaultStats,
    /// Replicas that ever fail-stopped (masked brown-outs excluded):
    /// flows homed there are permanently "affected".
    ever_failed: Vec<bool>,
    /// Per-replica packets lost to fail-stops (drained + discarded),
    /// credited against host-op fences so an op barrier can still clear
    /// when some of its pre-submission arrivals died with a replica.
    lost_accounted: Vec<u64>,
    /// Global indices of drained / discarded packets (all runs).
    drained_glob: Vec<u64>,
    discarded_glob: Vec<u64>,
}

/// Derive the shared-map fabric configuration a design's verified
/// [`ShardPlan`](ehdl_core::shardcheck::ShardPlan) prescribes: maps the
/// pass proved genuinely cross-replica go behind the fabric, with the
/// statically pre-assigned bank count (constant-keyed shared state gets a
/// single bank — more cannot spread one hot key).
pub fn fabric_from_plan(plan: &ehdl_core::shardcheck::ShardPlan) -> SharedMapOptions {
    SharedMapOptions {
        shared_maps: plan.shared_map_ids(),
        banks: plan.fabric_banks() as usize,
        ..SharedMapOptions::default()
    }
}

/// Derive the per-map merge strategies a design's verified
/// [`ShardPlan`](ehdl_core::shardcheck::ShardPlan) proved sound, in the
/// `(map, strategy)` form `diff::compare_sharded` consumes.
pub fn merges_from_plan(
    plan: &ehdl_core::shardcheck::ShardPlan,
) -> Vec<(u32, crate::diff::MergeStrategy)> {
    use crate::diff::MergeStrategy;
    use ehdl_core::shardcheck::MergePolicy;
    plan.merge_policies()
        .into_iter()
        .map(|(id, p)| {
            let s = match p {
                MergePolicy::Union => MergeStrategy::Union,
                MergePolicy::SumDelta => MergeStrategy::SumDelta,
                MergePolicy::Direct => MergeStrategy::Direct,
                MergePolicy::Ignore => MergeStrategy::Ignore,
            };
            (id, s)
        })
        .collect()
}

impl ShardedNic {
    /// Instantiate a sharded NIC from the design's own verified
    /// [`ShardPlan`](ehdl_core::shardcheck::ShardPlan): shared-map set,
    /// bank count and merge semantics all come from the static analysis
    /// instead of a hand-written [`SharedMapOptions`].
    ///
    /// # Errors
    ///
    /// The plan's [`ShardError`](ehdl_core::shardcheck::ShardError)s when
    /// the design cannot be proven sound at `replicas` — an unfenced
    /// cross-replica read-modify-write, or a design compiled without the
    /// value analysis.
    ///
    /// # Panics
    ///
    /// As [`ShardedNic::new`].
    pub fn from_shard_plan(
        design: &PipelineDesign,
        replicas: usize,
        seed: u64,
        sim_options: SimOptions,
    ) -> Result<ShardedNic, Vec<ehdl_core::shardcheck::ShardError>> {
        design.shard.require_sound(replicas)?;
        Ok(ShardedNic::new(design, replicas, seed, sim_options, fabric_from_plan(&design.shard)))
    }

    /// Instantiate `replicas` copies of `design` sharing maps per
    /// `fabric`, with RSS steering seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is 0, `fabric.banks` is 0, `fabric.latency`
    /// is 0, or a shared map id does not exist in the design.
    pub fn new(
        design: &PipelineDesign,
        replicas: usize,
        seed: u64,
        sim_options: SimOptions,
        fabric: SharedMapOptions,
    ) -> ShardedNic {
        assert!(replicas > 0, "at least one replica");
        assert!(fabric.banks > 0, "at least one memory bank");
        assert!(fabric.latency > 0, "access latency is at least one cycle");
        for &m in &fabric.shared_maps {
            assert!(
                design.maps.iter().any(|d| d.id == m),
                "shared map {m} does not exist in the design"
            );
        }
        let mut shared_ids = fabric.shared_maps.clone();
        shared_ids.sort_unstable();
        shared_ids.dedup();
        let mut sims: Vec<PipelineSim> =
            (0..replicas).map(|_| PipelineSim::with_options(design, sim_options)).collect();
        for sim in &mut sims {
            sim.attach_shared_port(&shared_ids, fabric.log_events);
        }
        let caches = if fabric.read_cache {
            (0..replicas).map(|_| ReadCache::new(fabric.cache_lines)).collect()
        } else {
            Vec::new()
        };
        ShardedNic {
            sims,
            shared_store: MapStore::new(&design.maps),
            shared_ids,
            caches,
            stats: SharedMapStats { stall_cycles: vec![0; replicas], ..Default::default() },
            events: Vec::new(),
            seq_map: vec![Vec::new(); replicas],
            cycle: 0,
            next_op_id: 0,
            pending_ops: VecDeque::new(),
            completions: Vec::new(),
            acc_scratch: vec![Vec::new(); replicas],
            ev_scratch: Vec::new(),
            bank_order: Vec::new(),
            fabric,
            rss_seed: seed,
            home_table: (0..replicas).collect(),
            live_table: (0..replicas).collect(),
            health: vec![Health::Serving; replicas],
            rfault: None,
            next_rfault: 0,
            merge: Vec::new(),
            fstats: ReplicaFaultStats::default(),
            ever_failed: vec![false; replicas],
            lost_accounted: vec![0; replicas],
            drained_glob: Vec::new(),
            discarded_glob: Vec::new(),
        }
    }

    /// Attach a replica-failure schedule (cycles are on the NIC's global
    /// clock, counted from construction) and the private-map
    /// reconciliation policy applied at each fail-over:
    /// [`MergeStrategy::Union`] copies the dead replica's entries into
    /// the canonical store where absent (flow/session tables),
    /// [`MergeStrategy::SumDelta`] adds its counter words into the
    /// canonical copy (zero-initialized stats arrays);
    /// [`MergeStrategy::Direct`]/[`MergeStrategy::Ignore`] skip the map.
    /// Shared maps already live canonically and are never reconciled.
    pub fn attach_replica_faults(
        &mut self,
        mut cfg: ReplicaFaultConfig,
        merge: Vec<(u32, MergeStrategy)>,
    ) {
        cfg.schedule.sort_by_key(|f| f.at);
        self.rfault = Some(cfg);
        self.next_rfault = 0;
        self.merge = merge;
    }

    /// Replica-failure campaign counters so far.
    pub fn replica_fault_stats(&self) -> ReplicaFaultStats {
        self.fstats
    }

    /// Is replica `r` currently in service?
    pub fn replica_serving(&self, r: usize) -> bool {
        self.health.get(r).copied().is_some_and(Health::serving)
    }

    /// The live RSS indirection table (slot → serving replica).
    pub fn live_rss_table(&self) -> &[usize] {
        &self.live_table
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.sims.len()
    }

    /// Apply `setup` to every replica's private store *and* canonical
    /// shared storage, so all copies start identical (the private copy
    /// of a shared map is masked during execution, but keeping it
    /// consistent costs nothing and avoids surprises in post-run dumps).
    pub fn setup_maps(&mut self, setup: impl Fn(&mut MapStore)) {
        for sim in &mut self.sims {
            setup(sim.maps_mut());
        }
        setup(&mut self.shared_store);
    }

    /// Replica `r`'s simulator (post-run counters, private maps).
    pub fn sim(&self, r: usize) -> &PipelineSim {
        &self.sims[r]
    }

    /// Mutable access to replica `r`'s simulator.
    pub fn sim_mut(&mut self, r: usize) -> &mut PipelineSim {
        &mut self.sims[r]
    }

    /// Canonical storage of the shared maps (host view).
    pub fn shared_store(&self) -> &MapStore {
        &self.shared_store
    }

    /// Run a packet burst to completion. Up to `replicas` packets enter
    /// the steering front end per global cycle — the scaled line rate a
    /// wider ingress provides — and the run drains fully before
    /// returning.
    pub fn run(&mut self, packets: impl IntoIterator<Item = Vec<u8>>) -> ShardReport {
        self.run_with_ops(packets, &[])
    }

    /// Like [`ShardedNic::run`], with host ops against shared maps
    /// interleaved into the arrival stream: `(at, op)` submits `op` when
    /// `at` packets have entered the NIC. The op fences behind every
    /// replica's pre-`at` arrivals (the PR 5 barrier, cross-replica) and
    /// applies to canonical storage between two global cycles.
    pub fn run_with_ops(
        &mut self,
        packets: impl IntoIterator<Item = Vec<u8>>,
        ops: &[(usize, HostOp)],
    ) -> ShardReport {
        let packets: Vec<Vec<u8>> = packets.into_iter().collect();
        let n = self.sims.len();
        let mut ops: VecDeque<(usize, HostOp)> = {
            let mut v = ops.to_vec();
            v.sort_by_key(|&(at, _)| at);
            v.into()
        };
        let mut steered = vec![0u64; n];
        let mut dropped = vec![0u64; n];
        // Home replica of each fed packet, for the affected set.
        let mut orig_targets: Vec<usize> = Vec::with_capacity(packets.len());
        let start_cycle = self.cycle;
        let drained0 = self.drained_glob.len();
        let discarded0 = self.discarded_glob.len();
        let before_completed: Vec<u64> = self.sims.iter().map(|s| s.counters().completed).collect();
        let mut fed = 0usize;
        // Generous budget: a hung run is a bug, not a workload property.
        let mut budget: u64 = 100_000_000;
        loop {
            // Host ops whose submission point has been reached enter the
            // fence queue with the current per-replica arrival snapshot.
            while ops.front().is_some_and(|&(at, _)| at <= fed) {
                let (_, op) = ops.pop_front().expect("front checked");
                self.submit_shared_op(op);
            }
            self.apply_fenced_ops();

            // Feed: up to `n` arrivals per global cycle. Feeding holds
            // while an op is fenced: the op must land after every
            // pre-submission arrival and before every later one (the
            // drain-and-apply discipline of the PR 5 control plane), so
            // later packets stay on the wire until the fence clears.
            // Steering is *live*: the slot is looked up in the current
            // indirection table at feed time, so a re-steer redirects the
            // dead replica's flows from the very next frame.
            for _ in 0..n {
                if fed >= packets.len() || !self.pending_ops.is_empty() {
                    break;
                }
                if ops.front().is_some_and(|&(at, _)| at <= fed) {
                    break; // Submit the op before feeding past its slot.
                }
                let slot = self.steer_slot(&packets[fed]);
                let t = self.live_table[slot];
                if !self.sims[t].rx_has_space() {
                    // Head-of-line backpressure: the ingress holds the
                    // frame (and everything behind it) until the hot
                    // replica's queue drains — RSS imbalance costs
                    // aggregate throughput rather than silently losing
                    // packets. A dark (undetected-dead) replica blocks
                    // here at most a watchdog budget before its flows are
                    // re-steered.
                    break;
                }
                if self.sims[t].try_enqueue(packets[fed].clone()).is_ok() {
                    steered[t] += 1;
                    self.seq_map[t].push(fed as u64);
                } else {
                    // Only oversized frames reach here; the MAC drops
                    // them at ingress and the loss is surfaced, never
                    // silent.
                    dropped[t] += 1;
                }
                orig_targets.push(self.home_table[slot]);
                fed += 1;
            }

            self.step_all();

            if fed >= packets.len()
                && ops.is_empty()
                && self.pending_ops.is_empty()
                && self.all_settled()
            {
                break;
            }
            budget -= 1;
            assert!(budget > 0, "sharded run did not settle");
        }
        let completed: Vec<u64> = self
            .sims
            .iter()
            .zip(&before_completed)
            .map(|(s, &c0)| s.counters().completed - c0)
            .collect();
        let mut outcomes = Vec::new();
        for r in 0..n {
            for o in self.sims[r].drain() {
                let g = self.seq_map[r].get(o.seq as usize).copied().unwrap_or(u64::MAX);
                outcomes.push((r, g, o));
            }
        }
        let mut drained = self.drained_glob[drained0..].to_vec();
        drained.sort_unstable();
        let mut discarded = self.discarded_glob[discarded0..].to_vec();
        discarded.sort_unstable();
        let affected: Vec<u64> = orig_targets
            .iter()
            .enumerate()
            .filter(|&(_, &t)| self.ever_failed[t])
            .map(|(i, _)| i as u64)
            .collect();
        ShardReport {
            steered,
            completed,
            dropped,
            cycles: self.cycle - start_cycle,
            outcomes,
            fabric: self.stats.clone(),
            events: std::mem::take(&mut self.events),
            host_completions: std::mem::take(&mut self.completions),
            failover: self.fstats,
            drained,
            discarded,
            affected,
        }
    }

    /// RSS indirection slot for a packet.
    fn steer_slot(&self, packet: &[u8]) -> usize {
        (rss_flow_hash(packet, self.rss_seed) % self.home_table.len() as u64) as usize
    }

    /// Every replica accounted for: serving replicas idle, fail-stopped
    /// replicas permanently down. Dark replicas and pending re-admissions
    /// keep the run alive until the watchdog (or the returning clock)
    /// resolves them.
    fn all_settled(&self) -> bool {
        self.health.iter().zip(&self.sims).all(|(h, s)| match h {
            Health::Serving => s.is_idle(),
            Health::Dark { .. } => false,
            Health::Failed { returns_at } => returns_at.is_none(),
        })
    }

    /// Queue a host op against shared storage, fenced behind every
    /// replica's arrivals so far. Returns the submission id.
    fn submit_shared_op(&mut self, op: HostOp) -> u64 {
        let id = self.next_op_id;
        self.next_op_id += 1;
        let barrier = self.seq_map.iter().map(|s| s.len() as u64).collect();
        self.pending_ops.push_back(PendingSharedOp { id, op, barrier });
        id
    }

    /// Apply every head-of-queue op whose fence holds (all replicas have
    /// retired their pre-submission arrivals). Ops stay ordered among
    /// themselves.
    fn apply_fenced_ops(&mut self) {
        while let Some(p) = self.pending_ops.front() {
            // Packets lost to a replica failure are accounted (drained or
            // discarded) rather than completed; they credit the fence so a
            // host op is never wedged behind a dead replica's arrivals.
            let fenced = p
                .barrier
                .iter()
                .enumerate()
                .all(|(r, &b)| self.sims[r].counters().completed + self.lost_accounted[r] >= b);
            if !fenced {
                return;
            }
            let p = self.pending_ops.pop_front().expect("front checked");
            let result = apply_host_op_to_store(&mut self.shared_store, &p.op);
            self.stats.host_ops += 1;
            if self.fabric.log_events {
                self.log_host_event(&p.op, &result);
            }
            // A host write lands in canonical storage directly; the
            // per-replica read caches must not keep serving the old line.
            if let HostOp::Update { map, key, .. } | HostOp::Delete { map, key } = &p.op {
                let h = map_key_hash(*map, key);
                for c in &mut self.caches {
                    if c.invalidate(h) {
                        self.stats.invalidations += 1;
                    }
                }
            }
            self.completions.push(SharedOpCompletion { id: p.id, result });
        }
    }

    /// Mirror a host op into the shared event history.
    fn log_host_event(&mut self, op: &HostOp, result: &Result<HostOpResult, MapError>) {
        let shared = |m: &u32| self.shared_ids.binary_search(m).is_ok();
        let event = match (op, result) {
            (HostOp::Update { map, key, value, .. }, Ok(HostOpResult::Updated)) if shared(map) => {
                MapEvent {
                    map: *map,
                    key: key.clone(),
                    value: value.clone(),
                    kind: MapEventKind::Write,
                }
            }
            (HostOp::Delete { map, key }, Ok(HostOpResult::Deleted)) if shared(map) => MapEvent {
                map: *map,
                key: key.clone(),
                value: Vec::new(),
                kind: MapEventKind::Delete,
            },
            (HostOp::Lookup { map, key }, Ok(HostOpResult::Value(v))) if shared(map) => MapEvent {
                map: *map,
                key: key.clone(),
                value: v.clone().unwrap_or_default(),
                kind: MapEventKind::Read { hit: v.is_some() },
            },
            _ => return,
        };
        self.events.push(SharedEvent { cycle: self.cycle, replica: HOST_REPLICA, event });
    }

    /// One global cycle: run the replica watchdog, step every serving
    /// replica against canonical storage, then arbitrate the cycle's
    /// accesses and levy stalls.
    fn step_all(&mut self) {
        self.replica_fault_cycle();
        let n = self.sims.len();
        for r in 0..n {
            // A dark or failed replica's clock is gone: it executes
            // nothing, touches no storage, and issues no accesses until
            // the watchdog resolves it (brown-out return or fail-over).
            if !self.health[r].serving() {
                continue;
            }
            // A frozen replica touches nothing — skip the swaps.
            if self.sims[r].mem_stall_pending() > 0 {
                self.sims[r].step();
                continue;
            }
            self.swap_shared(r);
            self.sims[r].step();
            self.swap_shared(r);
            let mut acc = std::mem::take(&mut self.acc_scratch[r]);
            self.sims[r].drain_map_accesses(&mut acc);
            self.acc_scratch[r] = acc;
            if self.fabric.log_events {
                let mut evs = std::mem::take(&mut self.ev_scratch);
                self.sims[r].drain_map_events(&mut evs);
                for event in evs.drain(..) {
                    self.events.push(SharedEvent { cycle: self.cycle, replica: r, event });
                }
                self.ev_scratch = evs;
            }
        }
        self.arbitrate();
        let down = self.health.iter().filter(|h| !h.serving()).count();
        if down > 0 {
            self.fstats.degraded_cycles += 1;
            self.fstats.replica_down_cycles += down as u64;
        }
        self.cycle += 1;
    }

    /// Replica watchdog: inject scheduled faults, detect expired budgets,
    /// mask short brown-outs, and re-admit returned replicas.
    fn replica_fault_cycle(&mut self) {
        let Some(cfg) = self.rfault.clone() else { return };
        // Inject faults whose cycle has come. A fault aimed at a replica
        // that is already dark or failed is skipped (and not counted as
        // injected), so `detected == injected` stays a meaningful gate.
        while cfg.schedule.get(self.next_rfault).is_some_and(|f| f.at <= self.cycle) {
            let f = cfg.schedule[self.next_rfault];
            self.next_rfault += 1;
            if f.replica >= self.sims.len() || !self.health[f.replica].serving() {
                continue;
            }
            self.fstats.injected += 1;
            self.health[f.replica] = Health::Dark { since: self.cycle, kind: f.kind };
        }
        for r in 0..self.sims.len() {
            match self.health[r] {
                Health::Dark { since, kind } => {
                    let elapsed = self.cycle - since;
                    if let ReplicaFaultKind::BrownOut { duration } = kind {
                        if duration < cfg.watchdog_budget && elapsed >= duration {
                            // Short brown-out: the replica returns before
                            // the watchdog fires. In-flight packets simply
                            // resume — the stall is absorbed, no fail-over.
                            self.health[r] = Health::Serving;
                            self.fstats.masked_brownouts += 1;
                            continue;
                        }
                    }
                    if elapsed >= cfg.watchdog_budget {
                        self.fail_over(r, since, kind, &cfg);
                    }
                }
                Health::Failed { returns_at: Some(rc) } if rc <= self.cycle => {
                    self.readmit(r);
                }
                _ => {}
            }
        }
    }

    /// The watchdog has declared replica `r` dead: account every in-flight
    /// packet, reconcile its private maps into canonical storage, and
    /// re-steer its flows across the survivors.
    fn fail_over(
        &mut self,
        r: usize,
        since: u64,
        kind: ReplicaFaultKind,
        cfg: &ReplicaFaultConfig,
    ) {
        self.fstats.detected += 1;
        let latency = self.cycle - since;
        self.fstats.detection_latency_total += latency;
        self.fstats.detection_latency_max = self.fstats.detection_latency_max.max(latency);
        self.ever_failed[r] = true;
        // Fail-stop with the canonical store swapped in, so retired
        // packets' force-committed writes land in canonical storage and
        // not in the replica's stale local copy.
        self.swap_shared(r);
        let (drained, discarded) = self.sims[r].fail_stop();
        self.swap_shared(r);
        // The dying replica's traced accesses never reach the fabric.
        self.acc_scratch[r].clear();
        self.sims[r].drain_map_accesses(&mut self.acc_scratch[r]);
        self.acc_scratch[r].clear();
        if self.fabric.log_events {
            let mut evs = std::mem::take(&mut self.ev_scratch);
            self.sims[r].drain_map_events(&mut evs);
            for event in evs.drain(..) {
                self.events.push(SharedEvent { cycle: self.cycle, replica: r, event });
            }
            self.ev_scratch = evs;
        }
        self.lost_accounted[r] += (drained.len() + discarded.len()) as u64;
        self.fstats.drained += drained.len() as u64;
        self.fstats.discarded += discarded.len() as u64;
        for s in drained {
            if let Some(&g) = self.seq_map[r].get(s as usize) {
                self.drained_glob.push(g);
            }
        }
        for s in discarded {
            if let Some(&g) = self.seq_map[r].get(s as usize) {
                self.discarded_glob.push(g);
            }
        }
        self.reconcile(r);
        let returns_at = match kind {
            ReplicaFaultKind::Kill => None,
            ReplicaFaultKind::Hang => Some(self.cycle + cfg.reset_cycles),
            // A long brown-out is handled as a fail-over; the replica
            // returns when its clock does (never before the next cycle).
            ReplicaFaultKind::BrownOut { duration } => Some((since + duration).max(self.cycle + 1)),
        };
        self.health[r] = Health::Failed { returns_at };
        self.resteer();
    }

    /// A hung (reset) or browned-out replica's clock is back: resume
    /// serving and give it its home RSS slots back.
    fn readmit(&mut self, r: usize) {
        self.health[r] = Health::Serving;
        self.fstats.readmissions += 1;
        self.resteer();
    }

    /// Rewrite the live RSS indirection table against current health.
    fn resteer(&mut self) {
        let serving: Vec<bool> = self.health.iter().map(|h| h.serving()).collect();
        let rewritten = resteer_rss_table(&mut self.live_table, &self.home_table, &serving);
        self.fstats.resteered_slots += rewritten as u64;
    }

    /// Salvage replica `r`'s private-map state into canonical storage
    /// where the configured `MergeStrategy` permits. Union adopts entries
    /// canonical storage lacks (session tables); SumDelta folds counter
    /// words in (zero-initialised accumulators). Direct and Ignore leave
    /// the canonical copy untouched.
    fn reconcile(&mut self, r: usize) {
        let merge = self.merge.clone();
        for (map, strat) in merge {
            if self.shared_ids.binary_search(&map).is_ok() {
                continue; // Shared maps are already canonical.
            }
            let entries: Vec<(Vec<u8>, Vec<u8>)> = match self.sims[r].maps_mut().get(map) {
                Some(m) => m.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect(),
                None => continue,
            };
            let Some(dst) = self.shared_store.get_mut(map) else { continue };
            for (k, v) in entries {
                match strat {
                    MergeStrategy::Union => {
                        if matches!(dst.lookup(&k), Ok(None))
                            && dst.update(&k, &v, UpdateFlags::Any).is_ok()
                        {
                            self.fstats.reconciled_entries += 1;
                        }
                    }
                    MergeStrategy::SumDelta => {
                        let merged = match dst.lookup(&k) {
                            Ok(Some(slot)) => add_words(dst.try_value(slot).unwrap_or(&[]), &v),
                            _ => v,
                        };
                        if dst.update(&k, &merged, UpdateFlags::Any).is_ok() {
                            self.fstats.reconciled_entries += 1;
                        }
                    }
                    MergeStrategy::Direct | MergeStrategy::Ignore => {}
                }
            }
        }
    }

    /// Exchange the shared maps between replica `r`'s store and the
    /// canonical store. Called before and after the replica's cycle, so
    /// the replica always executes against the single canonical copy.
    fn swap_shared(&mut self, r: usize) {
        let sim_store = self.sims[r].maps_mut();
        for &m in &self.shared_ids {
            if let (Some(a), Some(b)) = (sim_store.get_mut(m), self.shared_store.get_mut(m)) {
                std::mem::swap(a, b);
            }
        }
    }

    /// Bank arbitration for the cycle's traced accesses: cache filtering,
    /// per-bank winner selection, and stall assignment.
    fn arbitrate(&mut self) {
        let n = self.sims.len();
        let nb = self.fabric.banks as u64;
        let lat_extra = self.fabric.latency - 1;
        // Priority permutation for this cycle.
        let rr = if self.fabric.arbitration == Arbitration::RoundRobin {
            (self.cycle as usize) % n
        } else {
            0
        };
        self.bank_order.clear();
        let mut stalls = vec![0u64; n];
        let mut any = false;
        for r in 0..n {
            if !self.acc_scratch[r].is_empty() {
                any = true;
            }
        }
        if !any {
            return;
        }
        // Serve replicas in priority order; within a replica, program
        // order. `bank_order` collects (bank, priority-rank) pairs so a
        // later access's queue position is the number of earlier grants
        // on its bank this cycle.
        for rank in 0..n {
            let r = (rr + rank) % n;
            let accs = std::mem::take(&mut self.acc_scratch[r]);
            for a in &accs {
                self.stats.accesses += 1;
                let bank = (a.key_hash % nb) as usize;
                if !a.write && !self.caches.is_empty() && self.caches[r].hit(a.key_hash) {
                    self.stats.cache_hits += 1;
                    continue;
                }
                self.stats.fabric_accesses += 1;
                let pos = self.bank_order.iter().filter(|&&(b, _)| b == bank).count() as u64;
                self.bank_order.push((bank, rank));
                if pos > 0 {
                    self.stats.conflicts += 1;
                }
                stalls[r] += pos + lat_extra;
                if !self.caches.is_empty() {
                    if a.write {
                        // Write-invalidate: every other replica's copy of
                        // the line dies; the writer re-fills its own.
                        for (cr, c) in self.caches.iter_mut().enumerate() {
                            if cr != r && c.invalidate(a.key_hash) {
                                self.stats.invalidations += 1;
                            }
                        }
                        self.caches[r].fill(a.key_hash);
                    } else {
                        self.caches[r].fill(a.key_hash);
                    }
                }
            }
            let mut accs = accs;
            accs.clear();
            self.acc_scratch[r] = accs;
        }
        for (r, &s) in stalls.iter().enumerate() {
            if s > 0 {
                self.sims[r].add_mem_stall(s);
                self.stats.stall_cycles[r] += s;
            }
        }
    }
}

/// Why the shared-map history is not per-key linearizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearizabilityViolation {
    /// Index of the offending event in the history.
    pub index: usize,
    /// Map id.
    pub map: u32,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Human-readable mismatch description.
    pub detail: String,
}

impl std::fmt::Display for LinearizabilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: map {} key {:02x?}: {}", self.index, self.map, self.key, self.detail)
    }
}

/// Word-wise little-endian `u64` addition of two equal-length values —
/// the SumDelta reconciliation primitive for zero-initialised counter
/// maps. Values whose lengths differ or are not a multiple of 8 cannot
/// be folded; the replica's copy wins unchanged.
fn add_words(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.len() != b.len() || !a.len().is_multiple_of(8) {
        return b.to_vec();
    }
    let mut out = Vec::with_capacity(a.len());
    for (wa, wb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        let x = u64::from_le_bytes([wa[0], wa[1], wa[2], wa[3], wa[4], wa[5], wa[6], wa[7]]);
        let y = u64::from_le_bytes([wb[0], wb[1], wb[2], wb[3], wb[4], wb[5], wb[6], wb[7]]);
        out.extend_from_slice(&x.wrapping_add(y).to_le_bytes());
    }
    out
}

/// Check the shared-map history for per-key linearizability at
/// read/write granularity: replaying writes and deletes in log order
/// from `initial`, every read must observe exactly the current value
/// (and misses must be genuine absences). A violation means a replica
/// saw a value canonical storage never held at that point — a coherence
/// bug in the fabric or swap discipline.
///
/// # Errors
///
/// The first violation found, if any.
pub fn check_linearizable(
    initial: &MapStore,
    shared: &[u32],
    events: &[SharedEvent],
) -> Result<(), LinearizabilityViolation> {
    use std::collections::HashMap;
    let mut state: HashMap<(u32, Vec<u8>), Vec<u8>> = HashMap::new();
    for &m in shared {
        if let Some(map) = initial.get(m) {
            for (_, k, v) in map.iter() {
                state.insert((m, k.to_vec()), v.to_vec());
            }
        }
    }
    for (i, e) in events.iter().enumerate() {
        let ev = &e.event;
        let slot = (ev.map, ev.key.clone());
        match &ev.kind {
            MapEventKind::Write => {
                state.insert(slot, ev.value.clone());
            }
            MapEventKind::Delete => {
                state.remove(&slot);
            }
            MapEventKind::Read { hit } => match (state.get(&slot), hit) {
                (Some(cur), true) => {
                    if cur != &ev.value {
                        return Err(LinearizabilityViolation {
                            index: i,
                            map: ev.map,
                            key: ev.key.clone(),
                            detail: format!(
                                "read observed {:02x?}, storage holds {:02x?}",
                                ev.value, cur
                            ),
                        });
                    }
                }
                (None, true) => {
                    return Err(LinearizabilityViolation {
                        index: i,
                        map: ev.map,
                        key: ev.key.clone(),
                        detail: "read hit a key that is absent in storage".into(),
                    });
                }
                (Some(_), false) => {
                    return Err(LinearizabilityViolation {
                        index: i,
                        map: ev.map,
                        key: ev.key.clone(),
                        detail: "read missed a key that is present in storage".into(),
                    });
                }
                (None, false) => {}
            },
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::fault::ReplicaFault;
    use ehdl_core::Compiler;
    use ehdl_net::{FiveTuple, IPPROTO_UDP};
    use ehdl_programs::simple_firewall;
    use ehdl_traffic::build_flow_packet;

    fn firewall_design() -> PipelineDesign {
        Compiler::new().compile(&simple_firewall::program()).unwrap()
    }

    fn opts() -> SimOptions {
        SimOptions { freeze_time_ns: Some(1000), ..Default::default() }
    }

    fn flow_packets(flows: usize, per_flow: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for i in 0..flows {
            let t = FiveTuple {
                saddr: [10, 0, (i >> 8) as u8, i as u8],
                daddr: [192, 168, 1, 1],
                sport: 1000 + i as u16,
                dport: 53,
                proto: IPPROTO_UDP,
            };
            for _ in 0..per_flow {
                out.push(build_flow_packet(&t, [1; 6], [2; 6], 64));
            }
        }
        out
    }

    #[test]
    fn sharded_firewall_completes_and_shares_stats() {
        let d = firewall_design();
        let mut nic = ShardedNic::new(
            &d,
            4,
            7,
            opts(),
            SharedMapOptions {
                shared_maps: vec![simple_firewall::STATS_MAP],
                log_events: true,
                ..Default::default()
            },
        );
        let packets = flow_packets(64, 4);
        let report = nic.run(packets.clone());
        assert_eq!(report.dropped, vec![0; 4], "no silent drops");
        assert_eq!(report.completed.iter().sum::<u64>(), packets.len() as u64);
        // The shared stats array counted every packet exactly once,
        // across all four replicas writing through the fabric.
        let stats = simple_firewall::read_stats(nic.shared_store());
        assert_eq!(stats[0], packets.len() as u64);
        // And the access history is per-key linearizable.
        let initial = MapStore::new(&d.maps);
        check_linearizable(&initial, &[simple_firewall::STATS_MAP], &report.events)
            .expect("shared history must be linearizable");
        assert!(!report.events.is_empty(), "event log recorded shared accesses");
    }

    #[test]
    fn single_bank_serializes_and_stalls() {
        let d = firewall_design();
        let run = |banks: usize, latency: u64| {
            let mut nic = ShardedNic::new(
                &d,
                4,
                7,
                opts(),
                SharedMapOptions {
                    banks,
                    latency,
                    shared_maps: vec![simple_firewall::SESSIONS_MAP, simple_firewall::STATS_MAP],
                    ..Default::default()
                },
            );
            nic.run(flow_packets(64, 4))
        };
        let wide = run(64, 1);
        let narrow = run(1, 1);
        assert!(narrow.fabric.conflicts > wide.fabric.conflicts);
        assert!(narrow.fabric.conflict_rate() > 0.2, "one bank must thrash");
        assert!(narrow.cycles > wide.cycles, "conflicts cost cycles");
        let slow = run(64, 4);
        assert!(slow.cycles > wide.cycles, "latency costs cycles");
        // Timing never changes results: same per-packet completion count.
        assert_eq!(narrow.completed.iter().sum::<u64>(), wide.completed.iter().sum::<u64>());
    }

    #[test]
    fn read_cache_cuts_fabric_traffic_without_changing_results() {
        let d = firewall_design();
        let run = |cache: bool| {
            let mut nic = ShardedNic::new(
                &d,
                2,
                3,
                opts(),
                SharedMapOptions {
                    banks: 2,
                    read_cache: cache,
                    cache_lines: 4096,
                    shared_maps: vec![simple_firewall::STATS_MAP],
                    ..Default::default()
                },
            );
            let report = nic.run(flow_packets(32, 8));
            let stats = simple_firewall::read_stats(nic.shared_store()).to_vec();
            (report, stats)
        };
        let (off, stats_off) = run(false);
        let (on, stats_on) = run(true);
        assert!(on.fabric.cache_hits > 0, "repeated flows must hit the cache");
        assert!(on.fabric.fabric_accesses < off.fabric.fabric_accesses);
        assert_eq!(stats_on, stats_off, "caches are timing-only");
        let mut a: Vec<_> = off.outcomes.iter().map(|(_, g, o)| (*g, o.action)).collect();
        let mut b: Vec<_> = on.outcomes.iter().map(|(_, g, o)| (*g, o.action)).collect();
        a.sort_by_key(|&(g, _)| g);
        b.sort_by_key(|&(g, _)| g);
        assert_eq!(a, b, "verdicts identical with and without caches");
    }

    #[test]
    fn host_ops_fence_behind_arrivals() {
        let d = firewall_design();
        let mut nic = ShardedNic::new(
            &d,
            2,
            9,
            opts(),
            SharedMapOptions {
                shared_maps: vec![simple_firewall::STATS_MAP],
                log_events: true,
                ..Default::default()
            },
        );
        let packets = flow_packets(16, 4);
        let key = 3u32.to_le_bytes().to_vec();
        let report = nic.run_with_ops(
            packets,
            &[(
                32,
                HostOp::Update {
                    map: simple_firewall::STATS_MAP,
                    key: key.clone(),
                    value: 42u64.to_le_bytes().to_vec(),
                    flags: ehdl_ebpf::maps::UpdateFlags::Any,
                },
            )],
        );
        assert_eq!(report.host_completions.len(), 1);
        assert_eq!(report.host_completions[0].result, Ok(HostOpResult::Updated));
        let stats = nic.shared_store().get(simple_firewall::STATS_MAP).expect("stats map");
        assert_eq!(stats.value(3), 42u64.to_le_bytes());
        // The host write is part of the linearizable history.
        let initial = MapStore::new(&d.maps);
        check_linearizable(&initial, &[simple_firewall::STATS_MAP], &report.events)
            .expect("host ops must serialize into the shared history");
        assert!(report.events.iter().any(|e| e.replica == HOST_REPLICA));
    }

    #[test]
    fn checker_rejects_a_corrupted_history() {
        let d = firewall_design();
        let initial = MapStore::new(&d.maps);
        let key = vec![0, 0, 0, 0];
        let mk = |kind: MapEventKind, value: Vec<u8>| SharedEvent {
            cycle: 0,
            replica: 0,
            event: MapEvent { map: 1, key: key.clone(), value, kind },
        };
        let good = vec![
            mk(MapEventKind::Write, vec![1; 8]),
            mk(MapEventKind::Read { hit: true }, vec![1; 8]),
        ];
        check_linearizable(&initial, &[99], &good).unwrap();
        let stale = vec![
            mk(MapEventKind::Write, vec![1; 8]),
            mk(MapEventKind::Read { hit: true }, vec![2; 8]),
        ];
        let err = check_linearizable(&initial, &[99], &stale).unwrap_err();
        assert!(err.detail.contains("read observed"));
        let ghost = vec![mk(MapEventKind::Read { hit: true }, vec![2; 8])];
        assert!(check_linearizable(&initial, &[99], &ghost).is_err());
    }

    #[test]
    fn four_replicas_scale_aggregate_throughput() {
        let d = firewall_design();
        let run = |replicas: usize| {
            let mut nic = ShardedNic::new(&d, replicas, 7, opts(), SharedMapOptions::default());
            nic.run(flow_packets(256, 2)).aggregate_pkts_per_cycle()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four >= 2.5 * one,
            "4 replicas must scale ≥2.5x on a uniform workload: 1→{one:.4}, 4→{four:.4}"
        );
    }

    fn faulted_nic(schedule: Vec<ReplicaFault>, budget: u64, reset: u64) -> ShardedNic {
        let d = firewall_design();
        let mut nic = ShardedNic::new(
            &d,
            4,
            7,
            opts(),
            SharedMapOptions {
                shared_maps: vec![simple_firewall::STATS_MAP],
                log_events: true,
                ..Default::default()
            },
        );
        nic.attach_replica_faults(
            ReplicaFaultConfig { schedule, watchdog_budget: budget, reset_cycles: reset },
            vec![(simple_firewall::SESSIONS_MAP, MergeStrategy::Union)],
        );
        nic
    }

    #[test]
    fn killed_replica_is_detected_drained_and_resteered() {
        let mut nic = faulted_nic(
            vec![ReplicaFault { at: 40, replica: 1, kind: ReplicaFaultKind::Kill }],
            64,
            0,
        );
        let packets = flow_packets(64, 8);
        let offered = packets.len() as u64;
        let report = nic.run(packets);
        let f = report.failover;
        assert_eq!(f.injected, 1);
        assert_eq!(f.detected, 1, "watchdog must catch the kill");
        assert!(f.detection_latency_max <= 64, "detection within the budget");
        assert!(!nic.replica_serving(1), "a killed replica stays down");
        assert!(!nic.live_rss_table().contains(&1), "no slot steers to the corpse");
        // Zero silent loss: every offered packet is completed, drained,
        // discarded, or counted as an ingress drop.
        let completed: u64 = report.completed.iter().sum();
        let lost = report.drained.len() as u64 + report.discarded.len() as u64;
        let dropped: u64 = report.dropped.iter().sum();
        assert_eq!(offered, completed + lost + dropped, "no packet vanishes silently");
        assert!(lost > 0, "a mid-run kill must catch packets in flight");
        // Every lost packet belonged to the dead replica's flows.
        for g in report.drained.iter().chain(&report.discarded) {
            assert!(report.affected.contains(g), "lost packet {g} outside the affected set");
        }
        // Availability floor under a single kill: ≥ (N−1)/N − 5%.
        let avail = f.availability(4, report.cycles);
        assert!(avail >= 0.75 - 0.05, "availability {avail:.3} below the degraded floor");
        // Surviving history is still linearizable.
        let initial = MapStore::new(&firewall_design().maps);
        check_linearizable(&initial, &[simple_firewall::STATS_MAP], &report.events)
            .expect("failure history must stay linearizable");
    }

    #[test]
    fn hung_replica_resets_and_is_readmitted() {
        let mut nic = faulted_nic(
            vec![ReplicaFault { at: 60, replica: 2, kind: ReplicaFaultKind::Hang }],
            32,
            128,
        );
        let report = nic.run(flow_packets(64, 8));
        let f = report.failover;
        assert_eq!(f.detected, 1);
        assert_eq!(f.readmissions, 1, "a reset replica must come back");
        assert!(nic.replica_serving(2), "serving again after the reset");
        assert!(nic.live_rss_table().contains(&2), "home slots restored on re-admission");
        let completed: u64 = report.completed.iter().sum();
        let lost = report.drained.len() as u64 + report.discarded.len() as u64;
        assert_eq!(completed + lost + report.dropped.iter().sum::<u64>(), 64 * 8);
    }

    #[test]
    fn short_brownout_is_masked_and_bit_equivalent() {
        let packets = flow_packets(48, 6);
        let mut clean = faulted_nic(vec![], 256, 0);
        let clean_report = clean.run(packets.clone());
        let mut nic = faulted_nic(
            vec![ReplicaFault {
                at: 50,
                replica: 0,
                kind: ReplicaFaultKind::BrownOut { duration: 30 },
            }],
            256,
            0,
        );
        let report = nic.run(packets);
        let f = report.failover;
        assert_eq!(f.masked_brownouts, 1, "short brown-out absorbed by the watchdog budget");
        assert_eq!(f.detected, 0, "no fail-over for a masked brown-out");
        assert!(report.drained.is_empty() && report.discarded.is_empty(), "nothing lost");
        assert!(report.affected.is_empty(), "no flow is affected by a masked brown-out");
        // Results are bit-equivalent to the fault-free run.
        let verdicts = |r: &ShardReport| {
            let mut v: Vec<_> =
                r.outcomes.iter().map(|(_, g, o)| (*g, o.action, o.packet.clone())).collect();
            v.sort_by_key(|&(g, _, _)| g);
            v
        };
        assert_eq!(verdicts(&report), verdicts(&clean_report));
        assert!(report.cycles > clean_report.cycles, "the stall still costs cycles");
    }

    #[test]
    fn long_brownout_fails_over_then_returns() {
        let mut nic = faulted_nic(
            vec![ReplicaFault {
                at: 60,
                replica: 3,
                kind: ReplicaFaultKind::BrownOut { duration: 400 },
            }],
            48,
            0,
        );
        let report = nic.run(flow_packets(64, 8));
        let f = report.failover;
        assert_eq!(f.detected, 1, "a brown-out past the budget is a fail-over");
        assert_eq!(f.readmissions, 1, "and the replica returns when its clock does");
        assert!(nic.replica_serving(3));
    }

    #[test]
    fn dead_replica_sessions_reconcile_into_canonical_store() {
        // Let replica 1 build private session state, then kill it late so
        // the reconciler has something to salvage.
        let mut nic = faulted_nic(
            vec![ReplicaFault { at: 200, replica: 1, kind: ReplicaFaultKind::Kill }],
            32,
            0,
        );
        let report = nic.run(flow_packets(64, 8));
        assert_eq!(report.failover.detected, 1);
        assert!(
            report.failover.reconciled_entries > 0,
            "the dead replica's session table must merge into canonical storage"
        );
        let canon = nic.shared_store().get(simple_firewall::SESSIONS_MAP).expect("sessions map");
        assert!(canon.iter().next().is_some(), "canonical store holds salvaged sessions");
    }

    #[test]
    fn host_ops_fence_clears_despite_dead_replica() {
        let mut nic = faulted_nic(
            vec![ReplicaFault { at: 30, replica: 0, kind: ReplicaFaultKind::Kill }],
            48,
            0,
        );
        let packets = flow_packets(32, 8);
        let report = nic.run_with_ops(
            packets,
            &[(
                200,
                HostOp::Update {
                    map: simple_firewall::STATS_MAP,
                    key: 3u32.to_le_bytes().to_vec(),
                    value: 7u64.to_le_bytes().to_vec(),
                    flags: ehdl_ebpf::maps::UpdateFlags::Any,
                },
            )],
        );
        // Packets lost to the kill credit the fence, so the op is never
        // wedged behind arrivals the dead replica will not retire.
        assert_eq!(report.host_completions.len(), 1, "op completes despite the dead replica");
        assert_eq!(report.host_completions[0].result, Ok(HostOpResult::Updated));
    }

    #[test]
    fn double_committed_packet_from_dead_replica_is_caught() {
        // Negative control for the linearizability gate: if a dying
        // replica's counter increment were committed twice to canonical
        // storage (once live, once via a buggy salvage) while the history
        // logged it once, a later read observes the doubled value and the
        // checker must flag it.
        let d = firewall_design();
        let initial = MapStore::new(&d.maps);
        let key = vec![0, 0, 0, 0];
        let mk = |kind: MapEventKind, value: Vec<u8>| SharedEvent {
            cycle: 0,
            replica: 1,
            event: MapEvent { map: simple_firewall::STATS_MAP, key: key.clone(), value, kind },
        };
        let history = vec![
            mk(MapEventKind::Write, 1u64.to_le_bytes().to_vec()),
            // Storage actually holds 2 (double commit); the read sees it.
            mk(MapEventKind::Read { hit: true }, 2u64.to_le_bytes().to_vec()),
        ];
        let err = check_linearizable(&initial, &[simple_firewall::STATS_MAP], &history)
            .expect_err("a double commit must violate linearizability");
        assert!(err.detail.contains("read observed"), "diagnostic names the divergence");
    }
}
