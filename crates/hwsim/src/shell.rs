//! Corundum-like NIC shell model: drives a [`PipelineSim`] with an arrival
//! schedule derived from a port speed, and reports the throughput/latency
//! numbers the paper's testbed measures at the traffic generator.

use crate::ctrl::{CtrlError, CtrlOptions, HostCompletion, HostOp};
use crate::hist::Log2Histogram;
use crate::sim::{PipelineSim, SimOptions, SimOutcome, CLOCK_NS};
use ehdl_core::PipelineDesign;
use ehdl_ebpf::vm::XdpAction;

/// Shell configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShellOptions {
    /// Port speed in bits per second (default 100 Gbps).
    pub port_bps: f64,
    /// Offered load as a fraction of line rate (1.0 = saturation).
    pub load: f64,
    /// Simulator options passed through.
    pub sim: SimOptions,
}

impl Default for ShellOptions {
    fn default() -> ShellOptions {
        ShellOptions { port_bps: 100e9, load: 1.0, sim: SimOptions::default() }
    }
}

/// Measurement summary of one run.
#[derive(Debug, Clone)]
pub struct ShellReport {
    /// Packets offered by the generator.
    pub offered: u64,
    /// Packets that completed processing.
    pub completed: u64,
    /// Packets forwarded (TX/redirect/pass).
    pub forwarded: u64,
    /// Packets lost to RX overflow (the NIC could not keep up).
    pub lost: u64,
    /// Achieved throughput in packets per second.
    pub throughput_pps: f64,
    /// Mean forwarding latency in nanoseconds.
    pub avg_latency_ns: f64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_latency_ns: f64,
    /// Flush events observed.
    pub flushes: u64,
    /// Flush events per simulated second.
    pub flushes_per_sec: f64,
    /// Simulated wall-clock time in seconds.
    pub seconds: f64,
    /// Fraction of cycles the pipeline was not wedged by a hung stage
    /// (1.0 without fault injection).
    pub availability: f64,
    /// Recovery replays triggered by detected faults (distinct from
    /// hazard flushes).
    pub fault_replays: u64,
    /// Watchdog-initiated drain/reinit events.
    pub watchdog_resets: u64,
    /// Packets sacrificed by watchdog recovery.
    pub pkts_lost_to_faults: u64,
}

/// The NIC shell: wraps a pipeline simulator with line-rate arrivals.
///
/// ```
/// use ehdl_core::Compiler;
/// use ehdl_ebpf::asm::Asm;
/// use ehdl_ebpf::Program;
/// use ehdl_hwsim::{NicShell, ShellOptions};
///
/// let mut a = Asm::new();
/// a.mov64_imm(0, 3);
/// a.exit();
/// let design = Compiler::new().compile(&Program::from_insns(a.into_insns()))?;
/// let mut nic = NicShell::new(&design, ShellOptions::default());
/// let report = nic.run((0..1000).map(|_| vec![0u8; 64]));
/// assert_eq!(report.lost, 0); // line rate sustained
/// assert!(report.throughput_pps > 100e6);
/// # Ok::<(), ehdl_core::CompileError>(())
/// ```
#[derive(Debug)]
pub struct NicShell {
    sim: PipelineSim,
    options: ShellOptions,
    completed: Vec<SimOutcome>,
}

impl NicShell {
    /// Build a shell around `design`.
    pub fn new(design: &PipelineDesign, options: ShellOptions) -> NicShell {
        NicShell {
            sim: PipelineSim::with_options(design, options.sim),
            options,
            completed: Vec::new(),
        }
    }

    /// Access the wrapped simulator (e.g. for host map setup).
    pub fn sim_mut(&mut self) -> &mut PipelineSim {
        &mut self.sim
    }

    /// Attach a fault-injection engine to the wrapped simulator (see
    /// [`crate::fault`]); the next [`NicShell::run`] becomes a campaign.
    pub fn attach_faults(&mut self, cfg: crate::fault::FaultConfig) {
        self.sim.attach_faults(cfg);
    }

    /// Wire time of a frame at the configured port speed, in nanoseconds
    /// (frame + 20 B preamble/IFG overhead).
    fn wire_ns(&self, len: usize) -> f64 {
        ((len + 20) * 8) as f64 / self.options.port_bps * 1e9 / self.options.load
    }

    /// Replay `packets` at line rate and collect the report.
    ///
    /// The generator offers packet `i` at its wire arrival time; the shell
    /// enqueues it (dropping on RX overflow) and runs the pipeline clock in
    /// between.
    pub fn run<I>(&mut self, packets: I) -> ShellReport
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let mut offered = 0u64;
        let mut t_ns = 0.0f64;
        for pkt in packets {
            // Advance the pipeline clock to this packet's arrival time.
            let target_cycle = (t_ns / CLOCK_NS) as u64;
            while self.sim.cycle() < target_cycle {
                self.sim.step();
            }
            t_ns += self.wire_ns(pkt.len());
            offered += 1;
            self.sim.enqueue(pkt);
        }
        self.finish(offered, t_ns)
    }

    /// Settle the pipeline and assemble the measurement report.
    fn finish(&mut self, offered: u64, t_ns: f64) -> ShellReport {
        self.sim.settle(10_000_000);

        let mut outs = self.sim.drain();
        let c = *self.sim.counters();
        // O(n) percentile accounting: one histogram pass instead of the
        // full sort this used to do. The mean stays exact (running sum);
        // p99 is the histogram's bucket upper edge, within 12.5% of the
        // sorted reference (see `shell_p99_matches_sorted_reference`).
        let mut hist = Log2Histogram::new();
        let mut latency_sum_ns = 0.0f64;
        for o in &outs {
            hist.record(o.latency_ns.max(0.0).round() as u64);
            latency_sum_ns += o.latency_ns;
        }
        let seconds = (self.sim.cycle() as f64 * CLOCK_NS / 1e9).max(1e-12);
        let forwarded = outs.iter().filter(|o| o.action.forwards()).count() as u64;
        self.completed.append(&mut outs);
        ShellReport {
            offered,
            completed: c.completed,
            forwarded,
            lost: c.rx_dropped,
            throughput_pps: c.completed as f64 / (t_ns / 1e9).max(1e-12),
            avg_latency_ns: if hist.is_empty() {
                0.0
            } else {
                latency_sum_ns / hist.count() as f64
            },
            p99_latency_ns: hist.percentile(0.99) as f64,
            flushes: c.flushes,
            flushes_per_sec: c.flushes as f64 / seconds,
            seconds,
            availability: self.sim.availability(),
            fault_replays: c.fault_replays,
            watchdog_resets: c.watchdog_resets,
            pkts_lost_to_faults: c.pkts_lost_to_faults,
        }
    }

    /// Attach a host control channel to the wrapped simulator so
    /// [`NicShell::run_with_ops`] can submit live map ops.
    pub fn attach_ctrl(&mut self, options: CtrlOptions) {
        self.sim.attach_ctrl(options);
    }

    /// Like [`NicShell::run`], submitting each host op when the generator
    /// reaches its scheduled arrival index.
    ///
    /// `ops` pairs an arrival index `i` with an op: the op is submitted
    /// just before packet `i` is offered (so it is barrier-ordered after
    /// packets `0..i`), while earlier packets are still streaming through
    /// the pipeline. Ops with an index at or beyond the trace length are
    /// submitted after the last packet. `ops` must be sorted by index.
    /// Rejected submissions are returned with their scheduled index.
    pub fn run_with_ops<I>(
        &mut self,
        packets: I,
        ops: &[(u64, HostOp)],
    ) -> (ShellReport, Vec<(u64, CtrlError)>)
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let mut rejected = Vec::new();
        let mut next_op = 0usize;
        let mut offered = 0u64;
        let mut t_ns = 0.0f64;
        for pkt in packets {
            while next_op < ops.len() && ops[next_op].0 <= offered {
                if let Err(e) = self.sim.submit_host_op(ops[next_op].1.clone()) {
                    rejected.push((ops[next_op].0, e));
                }
                next_op += 1;
            }
            let target_cycle = (t_ns / CLOCK_NS) as u64;
            while self.sim.cycle() < target_cycle {
                self.sim.step();
            }
            t_ns += self.wire_ns(pkt.len());
            offered += 1;
            self.sim.enqueue(pkt);
        }
        for (idx, op) in &ops[next_op..] {
            if let Err(e) = self.sim.submit_host_op(op.clone()) {
                rejected.push((*idx, e));
            }
        }
        (self.finish(offered, t_ns), rejected)
    }

    /// Drain host-op completions from the wrapped simulator.
    pub fn host_completions(&mut self) -> Vec<HostCompletion> {
        self.sim.host_completions()
    }

    /// All completed outcomes from the last run that were not yet drained.
    pub fn drain(&mut self) -> Vec<SimOutcome> {
        let mut outs = std::mem::take(&mut self.completed);
        outs.extend(self.sim.drain());
        outs
    }

    /// Fraction of offered packets that were forwarded without loss —
    /// "line rate" means 1.0 here.
    pub fn delivered_fraction(report: &ShellReport) -> f64 {
        if report.offered == 0 {
            return 1.0;
        }
        report.completed as f64 / report.offered as f64
    }

    /// Count outcomes by action.
    pub fn action_histogram(outs: &[SimOutcome]) -> [u64; 5] {
        let mut h = [0u64; 5];
        for o in outs {
            h[o.action.code() as usize] += 1;
        }
        h
    }

    /// Convenience accessor mirroring the sim counters.
    pub fn counters(&self) -> crate::sim::SimCounters {
        *self.sim.counters()
    }

    /// Total pipeline cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.sim.cycle()
    }
}

/// Verdict histogram indices for [`NicShell::action_histogram`].
pub const ACTIONS: [XdpAction; 5] =
    [XdpAction::Aborted, XdpAction::Drop, XdpAction::Pass, XdpAction::Tx, XdpAction::Redirect];

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_core::Compiler;
    use ehdl_ebpf::asm::Asm;
    use ehdl_ebpf::Program;

    fn tx_everything() -> PipelineDesign {
        let mut a = Asm::new();
        a.mov64_imm(0, 3);
        a.exit();
        Compiler::new().compile(&Program::from_insns(a.into_insns())).unwrap()
    }

    #[test]
    fn line_rate_64b_is_delivered() {
        let design = tx_everything();
        let mut shell = NicShell::new(&design, ShellOptions::default());
        let report = shell.run((0..5000).map(|_| vec![0u8; 64]));
        assert_eq!(report.lost, 0);
        assert_eq!(report.completed, 5000);
        // 64B at 100G = 148.8 Mpps offered; pipeline peak is 250 Mpps.
        assert!((130e6..170e6).contains(&report.throughput_pps), "{}", report.throughput_pps);
    }

    #[test]
    fn latency_about_one_microsecond() {
        let design = tx_everything();
        let mut shell = NicShell::new(&design, ShellOptions::default());
        let report = shell.run((0..1000).map(|_| vec![0u8; 64]));
        assert!((600.0..1500.0).contains(&report.avg_latency_ns), "{}", report.avg_latency_ns);
    }

    #[test]
    fn shell_p99_matches_sorted_reference() {
        // Satellite gate for the histogram swap: the O(n) log2-bucket p99
        // must stay an upper bound on the old sorted-reference computation,
        // within one bucket (12.5%). Mixed frame sizes spread the latency
        // distribution across several octaves.
        let design = tx_everything();
        let mut shell = NicShell::new(&design, ShellOptions::default());
        let sizes = [64usize, 128, 256, 512, 1024, 1500];
        let report = shell.run((0..3000).map(|i| vec![0u8; sizes[i % sizes.len()]]));
        let outs = shell.drain();
        let mut sorted: Vec<f64> = outs.iter().map(|o| o.latency_ns).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        assert!(
            report.p99_latency_ns >= exact - 1.0,
            "histogram p99 {} below sorted reference {exact}",
            report.p99_latency_ns
        );
        assert!(
            report.p99_latency_ns <= exact * 1.125 + 1.0,
            "histogram p99 {} more than 12.5% above sorted reference {exact}",
            report.p99_latency_ns
        );
    }

    #[test]
    fn offered_load_fraction_scales_throughput() {
        let design = tx_everything();
        let mut half = NicShell::new(&design, ShellOptions { load: 0.5, ..Default::default() });
        let r = half.run((0..2000).map(|_| vec![0u8; 64]));
        assert_eq!(r.lost, 0);
        assert!(
            (60e6..90e6).contains(&r.throughput_pps),
            "half load ≈ 74 Mpps, got {}",
            r.throughput_pps
        );
    }

    #[test]
    fn large_packets_lower_pps() {
        let design = tx_everything();
        let mut shell = NicShell::new(&design, ShellOptions::default());
        let small = shell.run((0..2000).map(|_| vec![0u8; 64]));
        let mut shell = NicShell::new(&design, ShellOptions::default());
        let large = shell.run((0..2000).map(|_| vec![0u8; 1500]));
        assert!(large.throughput_pps < small.throughput_pps / 5.0);
        assert_eq!(large.lost, 0);
    }

    #[test]
    fn run_with_ops_submits_at_arrival_positions() {
        use crate::ctrl::{CtrlOptions, HostOp};
        let design = tx_everything();
        let mut shell = NicShell::new(&design, ShellOptions::default());
        shell.attach_ctrl(CtrlOptions { latency_cycles: 1, queue_depth: 8 });
        // tx_everything has no maps, so every op must be rejected with
        // NoSuchMap — but scheduling itself must still work end to end.
        let ops = vec![(0u64, HostOp::Dump { map: 0 }), (50, HostOp::Dump { map: 0 })];
        let (report, rejected) = shell.run_with_ops((0..100).map(|_| vec![0u8; 64]), &ops);
        assert_eq!(report.completed, 100);
        assert_eq!(rejected.len(), 2);
        assert_eq!(rejected[0].0, 0);
        assert_eq!(rejected[1].0, 50);
    }

    // -- ingress async-FIFO edge cases --------------------------------

    fn tiny_fifo(depth: usize) -> PipelineSim {
        let design = tx_everything();
        PipelineSim::with_options(
            &design,
            SimOptions { rx_queue_depth: depth, ..Default::default() },
        )
    }

    #[test]
    fn rx_fifo_full_boundary_drops_exactly_the_overflow() {
        let mut sim = tiny_fifo(4);
        // Fill to exactly the boundary: the depth-th write is accepted,
        // the (depth+1)-th is the first loss.
        for i in 0..4 {
            assert!(sim.enqueue(vec![0u8; 64]), "write {i} within depth");
        }
        assert_eq!(sim.rx_queued(), 4);
        assert!(!sim.enqueue(vec![0u8; 64]), "write at full must be refused");
        assert_eq!(sim.counters().rx_dropped, 1);
        sim.settle(10_000);
        assert_eq!(sim.counters().completed, 4);
        assert_eq!(sim.drain().len(), 4);
    }

    #[test]
    fn rx_fifo_empty_boundary_is_idempotent() {
        let mut sim = tiny_fifo(4);
        assert_eq!(sim.rx_queued(), 0);
        // Reading (settling/draining) an empty FIFO must do nothing.
        sim.settle(1_000);
        assert!(sim.drain().is_empty());
        assert_eq!(sim.counters().completed, 0);
        // One write flips it non-empty; consuming it flips it back.
        assert!(sim.enqueue(vec![0u8; 64]));
        assert_eq!(sim.rx_queued(), 1);
        sim.settle(10_000);
        assert_eq!(sim.rx_queued(), 0);
        assert_eq!(sim.drain().len(), 1);
        assert!(sim.drain().is_empty(), "second read of drained FIFO is empty");
    }

    #[test]
    fn rx_fifo_backpressure_resolves_as_pipeline_drains() {
        let mut sim = tiny_fifo(2);
        while sim.enqueue(vec![0u8; 64]) {}
        let dropped_at_full = sim.counters().rx_dropped;
        assert_eq!(dropped_at_full, 1);
        // Drain one pipeline step at a time: as soon as the FIFO read
        // side consumes a packet, the write side must accept again.
        let mut steps = 0;
        while sim.rx_queued() == 2 {
            sim.step();
            steps += 1;
            assert!(steps < 100, "FIFO never drained");
        }
        assert!(sim.enqueue(vec![0u8; 64]), "freed slot must accept a write");
        sim.settle(10_000);
        assert_eq!(sim.counters().completed, 3);
        assert_eq!(sim.counters().rx_dropped, dropped_at_full, "paced writes lose nothing");
    }

    #[test]
    fn rx_fifo_backpressure_while_host_ops_pending() {
        use crate::ctrl::{CtrlOptions, HostOp};
        use ehdl_core::Compiler;
        use ehdl_ebpf::helpers::BPF_MAP_LOOKUP_ELEM;
        use ehdl_ebpf::maps::{MapDef, MapKind};
        use ehdl_ebpf::opcode::{AluOp, MemSize};

        // A map-reading program so host ops have a real target.
        let mut a = Asm::new();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::B, 2, 7, 0);
        a.store_reg(MemSize::W, 10, -8, 2);
        a.ld_map_fd(1, 0);
        a.mov64_reg(2, 10);
        a.alu64_imm(AluOp::Add, 2, -8);
        a.call(BPF_MAP_LOOKUP_ELEM);
        a.mov64_imm(0, 2);
        a.exit();
        let program =
            Program::new("lk", a.into_insns(), vec![MapDef::new(0, "t", MapKind::Hash, 4, 8, 16)]);
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::with_options(
            &design,
            SimOptions { rx_queue_depth: 2, ..Default::default() },
        );
        sim.attach_ctrl(CtrlOptions { latency_cycles: 4, queue_depth: 4 });
        while sim.enqueue(vec![0u8; 64]) {}
        sim.submit_host_op(HostOp::Dump { map: 0 }).unwrap();
        // The queued op must not wedge the FIFO drain: settle clears
        // packets AND the op.
        sim.settle(100_000);
        assert_eq!(sim.rx_queued(), 0);
        assert_eq!(sim.host_ops_pending(), 0);
        assert_eq!(sim.host_completions().len(), 1);
        assert_eq!(sim.counters().completed, 2);
    }
}
