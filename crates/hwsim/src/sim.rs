//! The pipeline simulator.

use ehdl_core::ir::{HwInsn, MapUse};
use ehdl_core::pipeline::{EdgeCond, PipelineDesign};
use ehdl_core::{ExecPlan, LowerError, LoweredPlan};
use ehdl_ebpf::helpers::*;
use ehdl_ebpf::insn::{Instruction, Operand};
use ehdl_ebpf::maps::{MapStore, UpdateFlags};
use ehdl_ebpf::opcode::{AtomicOp, MemSize};
use ehdl_ebpf::vm::{
    alu_eval, cond_eval, decode_map_value_addr, endian_eval, map_value_addr, mask_for, xdp_md,
    XdpAction, CTX_BASE, MAP_HANDLE_BASE, PACKET_BASE, STACK_BASE, STACK_SIZE, STACK_TOP,
    XDP_HEADROOM,
};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::ctrl::{
    decode_frame, CtrlError, CtrlLossConfig, CtrlOptions, CtrlState, CtrlStats, HostCompletion,
    HostOp, HostOpResult, LossState, QueuedOp,
};
use crate::fault::{
    FaultConfig, FaultEngine, FaultEvent, FaultKind, FaultOutcome, FaultSite, Hang, MapUpset,
    StuckFault,
};
use crate::shared::{map_key_hash, MapAccess, MapEvent, MapEventKind};

mod compiled;

/// Pipeline clock period in nanoseconds (250 MHz).
pub const CLOCK_NS: f64 = 4.0;
/// Cycles to refill the pipeline after a flush (App. A.1).
pub const FLUSH_RELOAD_CYCLES: u64 = 4;

/// Why the simulator refused an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The frame exceeds the datapath's buffered maximum packet length;
    /// the ingress MAC drops it before the pipeline sees a byte.
    FrameTooLarge {
        /// Offered frame length.
        len: usize,
        /// The design's `max_packet_len`.
        max: usize,
    },
    /// The RX queue is at capacity; the arrival is lost.
    QueueFull {
        /// Configured queue depth.
        depth: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the datapath maximum of {max}")
            }
            SimError::QueueFull { depth } => {
                write!(f, "rx queue full ({depth} packets)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Which execution engine runs the pipeline stages.
///
/// Both engines are cycle-accurate and bit-identical on every observable
/// (outcomes, counters, telemetry, map state); the compiled backend is
/// simply specialized at attach time. See the "Compiled backend" section
/// of DESIGN.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// Lower the plan at attach time and use the compiled engine; fall
    /// back to the interpreter (recording the typed [`LowerError`]) if
    /// the plan has a feature the lowerer rejects, or when
    /// [`SimOptions::check_proofs`] asks for per-access proof rechecks
    /// (a validation mode the specialized ops deliberately elide).
    #[default]
    Auto,
    /// Always interpret the [`ExecPlan`] op by op.
    Interpreter,
    /// Require the compiled engine; construction panics if the plan
    /// cannot be lowered. For benches and tests that must not silently
    /// measure the wrong engine.
    Compiled,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Fix `bpf_ktime_get_ns` to a constant (for differential tests);
    /// `None` derives time from the cycle counter.
    pub freeze_time_ns: Option<u64>,
    /// RX queue depth in packets; arrivals beyond this are lost.
    pub rx_queue_depth: usize,
    /// Constant NIC-shell latency added to reported packet latencies
    /// (MACs, async FIFOs, arbitration — §4.5).
    pub shell_latency_ns: f64,
    /// Validation mode: overwrite every register and stack byte the §4.3
    /// pruning analysis declared *dead* with a poison pattern at each
    /// stage boundary — exactly what the real hardware does by not wiring
    /// them. Any observable effect is a pruning-soundness bug.
    pub poison_dead_state: bool,
    /// Partial flushes (App. A.1/A.2): on a RAW hazard, replay only the
    /// FEB's read→write window from per-stage checkpoints instead of
    /// everything below the write stage, dropping the flush cost `K` from
    /// `write_stage + reload` to `window + reload`. Off reproduces the
    /// full-pipeline flush of the baseline hardware.
    pub partial_flush: bool,
    /// Soundness validation: recheck every compile-time packet-bounds
    /// proof (`op.proof`) against the concrete address and packet length;
    /// violations increment [`SimCounters::proof_violations`] without
    /// changing the verdict (the unguarded hardware would simply read).
    pub check_proofs: bool,
    /// Stage execution engine; see [`Backend`].
    pub backend: Backend,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            freeze_time_ns: None,
            rx_queue_depth: 4096,
            shell_latency_ns: 620.0,
            poison_dead_state: false,
            partial_flush: true,
            check_proofs: false,
            backend: Backend::Auto,
        }
    }
}

/// Event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Packets accepted into the pipeline.
    pub injected: u64,
    /// Packets that completed (any action).
    pub completed: u64,
    /// Arrivals lost to RX-queue overflow.
    pub rx_dropped: u64,
    /// Pipeline flush events (§4.1.2).
    pub flushes: u64,
    /// Packets sent back for re-execution by flushes.
    pub flush_replays: u64,
    /// Packets dropped by the implicit hardware bounds check.
    pub bounds_faults: u64,
    /// Packets sent back for re-execution by fault recovery (parity
    /// detections and watchdog drains) — counted separately from the
    /// hazard machinery's `flush_replays`.
    pub fault_replays: u64,
    /// Watchdog-initiated drain + map-preserving reinit events.
    pub watchdog_resets: u64,
    /// Packets lost to injected faults (dropped by a watchdog reset).
    pub pkts_lost_to_faults: u64,
    /// Compile-time packet-bounds proofs contradicted by a concrete
    /// access (soundness validation; must stay 0).
    pub proof_violations: u64,
    /// Host control-channel ops applied to the live maps.
    pub host_ops: u64,
    /// Host writes that landed inside an open RAW window and triggered
    /// the hazard flush machinery.
    pub host_op_flushes: u64,
    /// Cycles the whole pipeline spent frozen waiting on the external
    /// shared-map fabric (bank conflicts and access latency levied by
    /// [`crate::shared::ShardedNic`]); 0 for a standalone pipeline.
    pub mem_stall_cycles: u64,
    /// Ingress-FIFO frames punted back to the host by a fail-stop
    /// teardown ([`PipelineSim::fail_stop`]) — recoverable, never
    /// silently lost.
    pub failstop_drained: u64,
    /// Mid-pipeline packets lost with the clock domain at a fail-stop
    /// teardown — unrecoverable, but counted.
    pub failstop_discarded: u64,
}

/// A completed packet.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Arrival sequence number.
    pub seq: u64,
    /// Final verdict.
    pub action: XdpAction,
    /// Redirect target, when the action is `Redirect`.
    pub redirect_ifindex: Option<u32>,
    /// Final packet bytes (after any rewriting / encapsulation).
    pub packet: Vec<u8>,
    /// Cycles from injection to completion.
    pub latency_cycles: u64,
    /// End-to-end latency estimate including the shell, in nanoseconds.
    pub latency_ns: f64,
}

/// Hard cap on control blocks per design, so per-packet enable/taken
/// signals fit in fixed-size bitmaps (no heap traffic per packet).
const MAX_BLOCKS: usize = 512;

/// A tri-state per-block signal array (`None` / `Some(bool)`) packed as
/// two fixed bitmaps: real hardware wires, not a heap vector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BlockBits {
    known: [u64; MAX_BLOCKS / 64],
    value: [u64; MAX_BLOCKS / 64],
}

impl BlockBits {
    const WORDS: usize = MAX_BLOCKS / 64;

    #[inline(always)]
    fn get(&self, i: usize) -> Option<bool> {
        let w = (i >> 6) & (Self::WORDS - 1);
        if self.known[w] >> (i % 64) & 1 == 1 {
            Some(self.value[w] >> (i % 64) & 1 == 1)
        } else {
            None
        }
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: bool) {
        let w = (i >> 6) & (Self::WORDS - 1);
        self.known[w] |= 1 << (i % 64);
        if v {
            self.value[w] |= 1 << (i % 64);
        } else {
            self.value[w] &= !(1 << (i % 64));
        }
    }

    /// Copy only the first `w` words from `src`. Sound because block
    /// indices never reach word `w`, so the upper words of both sides are
    /// zero for the design at hand.
    fn assign_words(&mut self, src: &BlockBits, w: usize) {
        self.known[..w].copy_from_slice(&src.known[..w]);
        self.value[..w].copy_from_slice(&src.value[..w]);
    }

    /// Zero only the first `w` words (same soundness argument).
    fn clear_words(&mut self, w: usize) {
        self.known[..w].fill(0);
        self.value[..w].fill(0);
    }
}

/// Mutable per-packet execution state (the contents of one pipeline slot).
#[derive(Debug, Clone)]
struct PacketState {
    buf: Vec<u8>,
    data_off: usize,
    end_off: usize,
    regs: [u64; 11],
    stack: [u8; STACK_SIZE as usize],
    enabled: BlockBits,
    taken: BlockBits,
    action: Option<XdpAction>,
    redirect: Option<u32>,
    faulted: bool,
    /// Unconfirmed reads, `(map, stage, key)` triples (cleared only by
    /// replay). The stage tag bounds how far a stale reader must roll
    /// back: to its own earliest matching read, not the FEB minimum.
    map_reads: Vec<(u32, u32, Vec<u8>)>,
    /// Superset summary of `map_reads`: for every entry the
    /// [`read_key_bit`] of its `(map, key)` is set. FEB write interlocks
    /// test this one word before scanning the vector, so the per-write
    /// sweep over all in-flight packets is a few cycles per slot unless a
    /// packet might actually hold a matching read. Never pruned on
    /// retirement (a stale bit only costs an exact scan), cleared with the
    /// vector on reset.
    read_filter: u64,
    /// Lowest `data_off` this packet ever had. Everything below it in
    /// `buf` is still the zeroed headroom, so snapshots copy only the
    /// tail from here on.
    buf_lo: usize,
    /// Lowest stack byte ever written; bytes below are still zero.
    stack_lo: usize,
}

/// Recycled checkpoint storage: flush checkpoints come and go every few
/// cycles under hazard-heavy traffic, so their boxes (and the `Vec`s
/// inside) are pooled instead of reallocated.
#[derive(Debug, Clone, Default)]
struct StatePool {
    #[allow(clippy::vec_box)] // boxed so snapshot/restore moves a pointer
    free: Vec<Box<PacketState>>,
    /// Retired unconfirmed-read key buffers. The compiled backend records
    /// reads with pooled keys (instead of the interpreter's fresh
    /// `to_vec`), so its lookup path is allocation-free once warm.
    keys: Vec<Vec<u8>>,
    /// Retired whole in-flight frames: a completed packet's box (state
    /// buffers, checkpoint vector, original-bytes buffer) is reused by the
    /// next injection, so the enqueue path stops allocating once warm.
    #[allow(clippy::vec_box)] // boxed so slot moves stay pointer-sized
    flights: Vec<Box<InFlight>>,
    /// Largest read-record set any snapshot has carried. Boxes are grown
    /// to this high-water on *recycle* (retiring or flush cycles, where
    /// allocation is fair game) so [`StatePool::snapshot`] itself never
    /// grows a vector mid-step.
    read_high: usize,
    /// `BlockBits` words actually used by this design.
    words: usize,
}

impl StatePool {
    const CAP: usize = 64;
    /// Key buffers are tiny and churn fastest (one per in-flight lookup),
    /// so they get a deeper pool than checkpoint boxes.
    const KEY_CAP: usize = 256;

    /// Clone `src` into a pooled box (allocation-free when warm).
    fn snapshot(&mut self, src: &PacketState) -> Box<PacketState> {
        self.read_high = self.read_high.max(src.map_reads.len());
        match self.free.pop() {
            Some(mut b) => {
                b.assign_from(src, self.words, &mut self.keys);
                b
            }
            None => Box::new(src.clone()),
        }
    }

    fn recycle(&mut self, mut b: Box<PacketState>) {
        if self.free.len() < Self::CAP {
            b.map_reads.reserve(self.read_high.saturating_sub(b.map_reads.len()));
            self.free.push(b);
        }
    }

    /// A recycled key buffer (allocation-free when warm).
    fn take_key(&mut self) -> Vec<u8> {
        self.keys.pop().unwrap_or_default()
    }

    fn recycle_key(&mut self, mut k: Vec<u8>) {
        if self.keys.len() < Self::KEY_CAP {
            k.clear();
            self.keys.push(k);
        }
    }

    /// Pool a retired in-flight frame for reuse (checkpoints and resume
    /// snapshot must already be recycled; the other buffers stay inside).
    fn recycle_flight(&mut self, f: Box<InFlight>) {
        debug_assert!(f.checkpoints.is_empty() && f.resume.is_none());
        if self.flights.len() < Self::CAP {
            self.flights.push(f);
        }
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    seq: u64,
    orig: Vec<u8>,
    injected_cycle: u64,
    state: PacketState,
    /// Post-side-effect snapshots in ascending stage order (App. A.2
    /// elastic buffers): `(resume_stage, state)`.
    checkpoints: Vec<(usize, Box<PacketState>)>,
    /// Set while replaying up to a checkpoint after a flush.
    resume: Option<(usize, Box<PacketState>)>,
}

#[derive(Debug, Clone)]
enum WriteKind {
    Update { key: Vec<u8>, value: Vec<u8>, flags: UpdateFlags },
    Delete { key: Vec<u8> },
    StoreValue { slot: usize, off: usize, size: MemSize, value: u64 },
}

#[derive(Debug, Clone)]
struct PendingWrite {
    commit_cycle: u64,
    map: u32,
    seq: u64,
    kind: WriteKind,
}

/// The cycle-accurate simulator of one compiled design.
///
/// ```
/// use ehdl_core::Compiler;
/// use ehdl_ebpf::asm::Asm;
/// use ehdl_ebpf::Program;
/// use ehdl_hwsim::PipelineSim;
///
/// let mut a = Asm::new();
/// a.mov64_imm(0, 3); // XDP_TX
/// a.exit();
/// let design = Compiler::new().compile(&Program::from_insns(a.into_insns()))?;
/// let mut sim = PipelineSim::new(&design);
/// sim.enqueue(vec![0u8; 64]);
/// sim.settle(10_000);
/// let out = sim.drain().remove(0);
/// assert_eq!(out.action, ehdl_ebpf::vm::XdpAction::Tx);
/// assert_eq!(out.latency_cycles as usize, design.stage_count());
/// # Ok::<(), ehdl_core::CompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSim {
    design: Arc<PipelineDesign>,
    /// Flattened execution plan: per-stage op slices, topological block
    /// predecessor table and guard index, shared so the hot loop can
    /// borrow design data while mutating the simulator.
    plan: Arc<ExecPlan>,
    /// Attach-time specialized plan for the compiled backend; `None`
    /// runs the interpreter (requested, proof-check mode, or fallback).
    lowered: Option<Arc<LoweredPlan>>,
    /// Why lowering failed, when [`Backend::Auto`] fell back.
    lower_error: Option<LowerError>,
    options: SimOptions,
    maps: MapStore,
    slots: Vec<Option<Box<InFlight>>>,
    rx: VecDeque<Box<InFlight>>,
    pending_writes: Vec<PendingWrite>,
    out: Vec<SimOutcome>,
    counters: SimCounters,
    cycle: u64,
    next_seq: u64,
    /// Injection blocked while a multi-frame packet streams in.
    inject_busy: u64,
    /// Post-flush reload bubble.
    stall: u64,
    prandom_state: u64,
    /// Delay (cycles) per write stage, from the WAR plan.
    war_delay: std::collections::BTreeMap<(u32, usize), u64>,
    /// Per stage: how many packet-visits executed (enabled) vs passed
    /// through disabled — the disable-signal picture of Figure 8.
    stage_enabled: Vec<u64>,
    stage_disabled: Vec<u64>,
    /// Reusable per-stage write set (cleared, never reallocated).
    scratch: Option<Box<Delta>>,
    /// Reusable map key / byte-string buffers for helper calls.
    scratch_key: Vec<u8>,
    scratch_val: Vec<u8>,
    /// Pooled byte buffers backing WAR-delayed map writes, so the
    /// update/delete path is allocation-free once warm.
    buf_pool: Vec<Vec<u8>>,
    /// Checkpoint storage recycler.
    pool: StatePool,
    /// Partial-flush replay stream: evicted window packets waiting to
    /// re-enter the pipeline at `replay_entry`, oldest first.
    replay: VecDeque<Box<InFlight>>,
    /// Stage at which queued replay packets re-enter (the triggering
    /// FEB's earliest read stage).
    replay_entry: usize,
    /// Reload bubble gating the replay stream after a partial flush.
    replay_stall: u64,
    /// Hazard keys whose triggering write is still in a WAR delay buffer:
    /// the flush controller holds the replay stream until these retire,
    /// so the replayed read cannot hit the stale-risk interlock.
    replay_hold: Vec<(u32, Vec<u8>)>,
    /// `EHDL_SIM_DEBUG` was set at construction (cached: reading the
    /// environment takes a process-global lock, far too slow per event).
    debug_trace: bool,
    /// Attached fault-injection engine (campaigns only; `None` keeps the
    /// hot loop fault-free at the cost of one branch per cycle).
    fault: Option<Box<FaultEngine>>,
    /// Per map: the latest FEB write stage, or `None` when the map has no
    /// FEB. Fault recovery uses it to retire read records whose hazard
    /// window a replayed packet has already fully traversed.
    feb_write_max: Vec<Option<usize>>,
    /// Attached host control channel (`None` keeps the hot loop free of
    /// arbitration checks).
    ctrl: Option<Box<CtrlState>>,
    /// Extra forced-checkpoint stages while a control channel is
    /// attached: every map-lookup stage, so a host-write flush can
    /// re-enter the pipeline at any recorded read — not only at
    /// FEB-protected ones.
    ctrl_ckpt: Vec<bool>,
    /// Per map: pipeline lookups issued / hits (telemetry CSRs).
    map_lookups: Vec<u64>,
    map_hits: Vec<u64>,
    /// Per stage: cycles the slot held a packet (occupancy telemetry).
    stage_occupied: Vec<u64>,
    /// Externally levied whole-pipeline freeze cycles (shared-map fabric
    /// back-pressure). While non-zero, [`PipelineSim::step`] burns the
    /// cycle without moving anything — the clock-gated stall a real
    /// memory interconnect applies to a blocked requester.
    ext_stall: u64,
    /// Memory-port tap for the banked shared-map fabric (`None` keeps
    /// the hot loop free of recording).
    shared: Option<Box<SharedPort>>,
}

/// Recording state behind [`PipelineSim::attach_shared_port`]: accesses
/// to *shared* maps are traced for fabric timing and (optionally) logged
/// as full read/write events for the linearizability checker. Private
/// maps are replica-local BRAM — they never touch the interconnect and
/// are not recorded.
#[derive(Debug, Clone)]
struct SharedPort {
    /// Per map id: log full events for this map.
    shared_maps: Vec<bool>,
    /// Master switch for event logging (off = timing trace only).
    log_events: bool,
    /// Map accesses since the last drain (fabric timing trace).
    accesses: Vec<MapAccess>,
    /// Full events on shared maps since the last drain.
    events: Vec<MapEvent>,
}

impl PipelineSim {
    /// Instantiate a simulator for `design` with default options.
    pub fn new(design: &PipelineDesign) -> PipelineSim {
        PipelineSim::with_options(design, SimOptions::default())
    }

    /// Instantiate with explicit options.
    ///
    /// # Panics
    ///
    /// With [`Backend::Compiled`], panics if the plan cannot be lowered
    /// or `check_proofs` is set (the compiled ops elide exactly the
    /// rechecks that mode exists to perform) — a forced backend must
    /// never silently measure the wrong engine. [`Backend::Auto`] falls
    /// back to the interpreter in both cases instead.
    pub fn with_options(design: &PipelineDesign, options: SimOptions) -> PipelineSim {
        assert!(
            design.blocks.len() <= MAX_BLOCKS,
            "design has {} blocks; the simulator supports at most {MAX_BLOCKS}",
            design.blocks.len()
        );
        let (lowered, lower_error) = match options.backend {
            Backend::Interpreter => (None, None),
            Backend::Auto if options.check_proofs => (None, None),
            Backend::Auto => match LoweredPlan::try_lower(design) {
                Ok(lp) => (Some(Arc::new(lp)), None),
                Err(e) => (None, Some(e)),
            },
            Backend::Compiled => {
                assert!(
                    !options.check_proofs,
                    "check_proofs requires the interpreter (proof rechecks are \
                     exactly what the compiled ops elide); use Backend::Auto \
                     or Backend::Interpreter"
                );
                match LoweredPlan::try_lower(design) {
                    Ok(lp) => (Some(Arc::new(lp)), None),
                    Err(e) => panic!("Backend::Compiled forced but the plan does not lower: {e}"),
                }
            }
        };
        let maps = MapStore::new(&design.maps);
        let nstages = design.stages.len();
        let war_delay = design
            .hazards
            .war_buffers
            .iter()
            .map(|w| ((w.map, w.write_stage), w.delay as u64))
            .collect();
        let plan = Arc::new(ExecPlan::new(design));
        PipelineSim {
            design: Arc::new(design.clone()),
            plan,
            lowered,
            lower_error,
            options,
            maps,
            slots: vec![None; nstages],
            rx: VecDeque::new(),
            pending_writes: Vec::new(),
            out: Vec::new(),
            counters: SimCounters::default(),
            cycle: 0,
            next_seq: 0,
            inject_busy: 0,
            stall: 0,
            prandom_state: 0x9e37_79b9_7f4a_7c15,
            war_delay,
            stage_enabled: vec![0; nstages],
            stage_disabled: vec![0; nstages],
            scratch: Some(Box::default()),
            scratch_key: Vec::new(),
            scratch_val: Vec::new(),
            buf_pool: Vec::new(),
            replay: VecDeque::new(),
            replay_entry: 0,
            replay_stall: 0,
            replay_hold: Vec::new(),
            pool: StatePool {
                free: Vec::new(),
                keys: Vec::new(),
                flights: Vec::new(),
                read_high: 0,
                words: design.blocks.len().div_ceil(64).max(1),
            },
            debug_trace: std::env::var_os("EHDL_SIM_DEBUG").is_some(),
            fault: None,
            ctrl: None,
            ctrl_ckpt: Vec::new(),
            map_lookups: vec![0; design.maps.len()],
            map_hits: vec![0; design.maps.len()],
            stage_occupied: vec![0; nstages],
            ext_stall: 0,
            shared: None,
            feb_write_max: {
                let mut v: Vec<Option<usize>> = vec![None; design.maps.len()];
                for f in &design.hazards.febs {
                    if let Some(e) = v.get_mut(f.map as usize) {
                        *e = Some(e.map_or(f.write_stage, |w| w.max(f.write_stage)));
                    }
                }
                v
            },
        }
    }

    /// Per-stage utilization: fraction of packet visits in which the stage
    /// actually executed (its block was enabled). Wait/latency stages and
    /// never-visited stages report 0.
    pub fn stage_utilization(&self) -> Vec<f64> {
        self.stage_enabled
            .iter()
            .zip(&self.stage_disabled)
            .map(|(&e, &d)| {
                let total = e + d;
                if total == 0 {
                    0.0
                } else {
                    e as f64 / total as f64
                }
            })
            .collect()
    }

    /// The compiled design this simulator executes.
    pub fn design(&self) -> &PipelineDesign {
        &self.design
    }

    /// The engine actually executing stages: [`Backend::Compiled`] when a
    /// lowered plan is attached, [`Backend::Interpreter`] otherwise.
    /// Never [`Backend::Auto`] — that is a request, not a resolution.
    pub fn active_backend(&self) -> Backend {
        if self.lowered.is_some() {
            Backend::Compiled
        } else {
            Backend::Interpreter
        }
    }

    /// Why [`Backend::Auto`] fell back to the interpreter, if it did
    /// because the plan would not lower. `None` under a compiled engine,
    /// a requested interpreter, or a `check_proofs` fallback.
    pub fn lower_error(&self) -> Option<&LowerError> {
        self.lower_error.as_ref()
    }

    /// Lowering statistics of the attached compiled plan, if any.
    pub fn lower_stats(&self) -> Option<ehdl_core::LowerStats> {
        self.lowered.as_ref().map(|lp| lp.stats())
    }

    /// Per-map pipeline lookup counts (telemetry CSRs).
    pub fn map_lookups(&self) -> &[u64] {
        &self.map_lookups
    }

    /// Per-map pipeline lookup hits (telemetry CSRs).
    pub fn map_hits(&self) -> &[u64] {
        &self.map_hits
    }

    /// Per-stage occupied-cycle counts (occupancy telemetry).
    pub fn stage_occupancy(&self) -> &[u64] {
        &self.stage_occupied
    }

    /// The live maps (host view).
    pub fn maps(&self) -> &MapStore {
        &self.maps
    }

    /// Mutable map access (host control plane).
    pub fn maps_mut(&mut self) -> &mut MapStore {
        &mut self.maps
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Event counters.
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// Packets currently inside the pipeline.
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Packets waiting in the RX queue (the ingress async FIFO).
    pub fn rx_queued(&self) -> usize {
        self.rx.len()
    }

    /// Queue a packet for injection. Returns `false` (and counts a drop)
    /// if the RX queue is full or the frame exceeds the datapath's
    /// maximum packet length; see [`PipelineSim::try_enqueue`] for the
    /// reason.
    pub fn enqueue(&mut self, packet: Vec<u8>) -> bool {
        self.try_enqueue(packet).is_ok()
    }

    /// Whether the RX queue can accept another arrival right now. Lets a
    /// steering front end apply backpressure (hold the frame at ingress)
    /// instead of offering a frame that would be dropped and counted.
    pub fn rx_has_space(&self) -> bool {
        self.rx.len() < self.options.rx_queue_depth
    }

    /// Queue a packet for injection, reporting *why* a frame is refused.
    ///
    /// Runts (even empty frames) and truncated headers are accepted —
    /// the MAC delivers them and the program's own bounds checks decide,
    /// exactly as in the reference VM. Frames longer than the design's
    /// `max_packet_len` never fit the datapath buffer and are dropped at
    /// ingress, as a real NIC MAC drops oversized frames. Both refusals
    /// count as `rx_dropped`.
    ///
    /// # Errors
    ///
    /// [`SimError::FrameTooLarge`] for oversized frames,
    /// [`SimError::QueueFull`] when the RX queue is at capacity.
    pub fn try_enqueue(&mut self, packet: Vec<u8>) -> Result<(), SimError> {
        if packet.len() > self.design.framing.max_packet_len {
            self.counters.rx_dropped = self.counters.rx_dropped.saturating_add(1);
            return Err(SimError::FrameTooLarge {
                len: packet.len(),
                max: self.design.framing.max_packet_len,
            });
        }
        if self.rx.len() >= self.options.rx_queue_depth {
            self.counters.rx_dropped = self.counters.rx_dropped.saturating_add(1);
            return Err(SimError::QueueFull { depth: self.options.rx_queue_depth });
        }
        if let Some(mut b) = self.pool.flights.pop() {
            // Reuse a retired in-flight frame wholesale, resetting the state
            // in place (which re-zeros only the dirty regions and recycles
            // leftover read keys). The datapath buffer was handed to the
            // outcome, so `reset` allocates its replacement here — the one
            // unavoidable per-packet allocation, paid at enqueue rather
            // than inside the cycle loop. The displaced original-bytes
            // buffer feeds the map-write buffer pool instead of the free
            // list, so enqueue never starves the WAR delay path.
            let old_orig = std::mem::replace(&mut b.orig, packet);
            self.recycle_buf(old_orig);
            let orig = std::mem::take(&mut b.orig);
            b.state.reset(&orig, self.pool.words, &mut self.pool.keys);
            b.orig = orig;
            b.seq = self.next_seq;
            b.injected_cycle = 0;
            self.rx.push_back(b);
        } else {
            let mut buf = vec![0u8; XDP_HEADROOM + packet.len()];
            buf[XDP_HEADROOM..].copy_from_slice(&packet);
            let end_off = buf.len();
            let mut regs = [0u64; 11];
            regs[1] = CTX_BASE;
            regs[10] = STACK_TOP;
            let map_reads = Vec::new();
            self.rx.push_back(Box::new(InFlight {
                seq: self.next_seq,
                orig: packet,
                injected_cycle: 0,
                state: PacketState {
                    buf,
                    data_off: XDP_HEADROOM,
                    end_off,
                    regs,
                    stack: [0; STACK_SIZE as usize],
                    enabled: BlockBits::default(),
                    taken: BlockBits::default(),
                    action: None,
                    redirect: None,
                    faulted: false,
                    map_reads,
                    read_filter: 0,
                    buf_lo: XDP_HEADROOM,
                    stack_lo: STACK_SIZE as usize,
                },
                checkpoints: Vec::new(),
                resume: None,
            }));
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Number of frames a packet occupies on the datapath.
    fn frames_of(&self, len: usize) -> u64 {
        (len.max(1)).div_ceil(self.design.framing.frame_size) as u64
    }

    /// Advance one clock cycle.
    pub fn step(&mut self) {
        // External memory-fabric back-pressure: a pending stall freezes
        // the whole pipeline for the cycle (clock gating), exactly like a
        // blocked requester port. Nothing moves — not even injection.
        if self.ext_stall > 0 {
            self.ext_stall -= 1;
            self.cycle += 1;
            self.counters.mem_stall_cycles = self.counters.mem_stall_cycles.saturating_add(1);
            return;
        }

        // 0. Fault engine tick (scrub, watchdog, stuck-at sites, new
        // injections) — before anything moves this cycle, like the
        // asynchronous upset it models.
        if self.fault.is_some() {
            self.fault_cycle();
        }

        // 1. Commit due buffered map writes (oldest first).
        self.commit_due_writes();

        // 1b. Host control channel: apply the head-of-queue op once its
        // arrival latency has elapsed and its ordering fence holds.
        if self.ctrl.is_some() {
            self.ctrl_cycle();
        }

        // 2. Advance the pipeline from the back. One refcount bump per
        // cycle lets every stage borrow the plan while `self` stays
        // mutable. The compiled backend runs a specialized walk whenever
        // the cycle is provably regular; anything irregular (fault engine,
        // host channel, pending replay stream, poison diagnostics) takes
        // the reference walk with the same per-stage semantics.
        let plan = Arc::clone(&self.plan);
        let nstages = self.design.stages.len();
        match self.lowered.clone() {
            Some(lp)
                if self.fault.is_none()
                    && self.ctrl.is_none()
                    && self.replay.is_empty()
                    && !self.options.poison_dead_state =>
            {
                self.step_compiled_cycle(&lp, &plan, nstages);
            }
            lowered => {
                for s in (0..nstages).rev() {
                    self.step_stage(s, nstages, &plan, lowered.as_deref());
                }
            }
        }

        // 3. Injection.
        self.inject_cycle();
        self.cycle += 1;
    }

    /// One stage of the reference pipeline walk: stall checks, execution,
    /// advance/flush handling, and the partial-flush re-entry port.
    fn step_stage(
        &mut self,
        s: usize,
        nstages: usize,
        plan: &ExecPlan,
        lowered: Option<&LoweredPlan>,
    ) {
        if let Some(mut pkt) = self.slots[s].take() {
            self.stage_occupied[s] = self.stage_occupied[s].saturating_add(1);
            // A packet may not advance into an occupied slot, nor past
            // the re-entry stage of a pending partial-flush replay
            // stream (the queued packets are older and go first). A
            // blocked packet holds its slot and defers execution. A
            // stage whose control logic a fault has hung blocks
            // unconditionally until something clears the hang. The
            // host-port arbiter adds two holds while an op is queued:
            // younger packets stall before irreversibly writing the
            // op's map, and before retiring a read the op is about to
            // invalidate.
            let hung_here = self.fault.as_ref().is_some_and(|f| f.hang.map(|h| h.stage) == Some(s));
            let blocked = hung_here
                || (s + 1 < nstages
                    && (self.slots[s + 1].is_some()
                        || (s + 1 == self.replay_entry && !self.replay.is_empty())))
                || self.ctrl_effect_stall(s, pkt.seq)
                || (s + 1 == nstages && self.ctrl_retire_stall(s, &pkt));
            if blocked {
                self.slots[s] = Some(pkt);
            } else {
                let result = match lowered {
                    Some(lp) => self.exec_stage_compiled(s, &mut pkt, lp, plan),
                    None => self.exec_stage(s, &mut pkt, plan),
                };
                match result {
                    StageResult::Ok => {
                        if s + 1 == nstages {
                            self.complete(pkt);
                        } else {
                            self.poison_dead(&mut pkt, s + 1);
                            self.place_in_slot(s + 1, pkt);
                        }
                    }
                    StageResult::FlushBelow { boundary, read_stage, map, key } => {
                        // The writer (this packet) keeps going.
                        if s + 1 == nstages {
                            self.complete(pkt);
                        } else {
                            self.poison_dead(&mut pkt, s + 1);
                            self.place_in_slot(s + 1, pkt);
                        }
                        self.flush_below(boundary, read_stage, Some((map, key)));
                    }
                    StageResult::FlushSelf => {
                        // Reading packet saw a stale location: it and
                        // everything younger re-executes (re-reading from
                        // its latest checkpoint repairs the value).
                        self.slots[s] = Some(pkt);
                        self.flush_below(s + 1, s, None);
                    }
                }
            }
        }
        // Partial-flush replay stream: evictees re-enter at the
        // window's read stage, one per cycle after the reload bubble,
        // once the triggering write has retired from its delay buffer.
        if s == self.replay_entry && !self.replay.is_empty() && self.slots[s].is_none() {
            if self.replay_stall > 0 {
                self.replay_stall -= 1;
            } else {
                self.retire_replay_holds();
                if self.replay_hold.is_empty() {
                    let pkt = self.replay.pop_front().expect("replay checked non-empty");
                    self.slots[s] = Some(pkt);
                }
            }
        }
    }

    /// The compiled backend's specialized pipeline walk for a *regular*
    /// cycle: no fault engine, no host channel, no queued replay stream,
    /// no poison diagnostics. Under those preconditions no stall condition
    /// can hold — the walk runs back-to-front, so the slot ahead of every
    /// packet has already been vacated — and the per-stage stall checks,
    /// hang probes and replay-port polls drop out of the hot loop
    /// entirely. The instant a stage produces anything but
    /// [`StageResult::Ok`] (a hazard flush), the rest of the cycle
    /// degrades to [`PipelineSim::step_stage`], which handles the now
    /// irregular pipeline exactly like the reference walk.
    fn step_compiled_cycle(&mut self, lp: &LoweredPlan, plan: &ExecPlan, nstages: usize) {
        for s in (0..nstages).rev() {
            let Some(mut pkt) = self.slots[s].take() else { continue };
            self.stage_occupied[s] = self.stage_occupied[s].saturating_add(1);
            match self.exec_stage_compiled(s, &mut pkt, lp, plan) {
                StageResult::Ok => {
                    if s + 1 == nstages {
                        self.complete(pkt);
                    } else {
                        self.place_in_slot(s + 1, pkt);
                    }
                }
                StageResult::FlushBelow { boundary, read_stage, map, key } => {
                    // The writer (this packet) keeps going.
                    if s + 1 == nstages {
                        self.complete(pkt);
                    } else {
                        self.place_in_slot(s + 1, pkt);
                    }
                    self.flush_below(boundary, read_stage, Some((map, key)));
                    // The replay stream is now pending: finish the cycle on
                    // the reference walk. Its re-entry stage is strictly
                    // below `s` (a FEB read precedes its write), so the
                    // skipped stage-`s` replay port could not have fired.
                    for t in (0..s).rev() {
                        self.step_stage(t, nstages, plan, Some(lp));
                    }
                    return;
                }
                StageResult::FlushSelf => {
                    // Reading packet saw a stale location: it and
                    // everything younger re-executes (re-reading from
                    // its latest checkpoint repairs the value).
                    self.slots[s] = Some(pkt);
                    self.flush_below(s + 1, s, None);
                    for t in (0..s).rev() {
                        self.step_stage(t, nstages, plan, Some(lp));
                    }
                    return;
                }
            }
        }
    }

    /// Stage-0 injection port: reload bubbles, multi-frame pacing, and the
    /// replay-stream priority hold.
    fn inject_cycle(&mut self) {
        if self.stall > 0 {
            self.stall -= 1;
        } else if self.inject_busy > 0 {
            self.inject_busy -= 1;
        } else if self.slots.first().is_some_and(|s| s.is_none())
            && (self.replay.is_empty() || self.replay_entry != 0)
        {
            if let Some(mut pkt) = self.rx.pop_front() {
                pkt.injected_cycle = self.cycle;
                self.inject_busy = self.frames_of(pkt.orig.len()).saturating_sub(1);
                self.counters.injected = self.counters.injected.saturating_add(1);
                self.place_in_slot(0, pkt);
            }
        }
    }

    /// Run until the pipeline and queues are empty (or `max_cycles` pass).
    pub fn settle(&mut self, max_cycles: u64) {
        let mut budget = max_cycles;
        while (self.in_flight() > 0
            || !self.rx.is_empty()
            || !self.replay.is_empty()
            || !self.pending_writes.is_empty()
            || self.host_ops_pending() > 0)
            && budget > 0
        {
            self.step();
            budget -= 1;
        }
    }

    /// Take all completed packets (in completion order = arrival order).
    pub fn drain(&mut self) -> Vec<SimOutcome> {
        std::mem::take(&mut self.out)
    }

    /// Attach the shared-map memory-port tap ([`crate::shared::ShardedNic`]).
    ///
    /// Accesses to the maps listed in `shared_maps` are traced as
    /// [`MapAccess`]es for fabric timing and, when `log_events` is set,
    /// additionally logged as full [`MapEvent`]s feeding the per-key
    /// linearizability checker. Accesses to other maps hit replica-local
    /// BRAM and are not recorded — only shared traffic pays the
    /// interconnect toll.
    pub fn attach_shared_port(&mut self, shared_maps: &[u32], log_events: bool) {
        let mut flags = vec![false; self.design.maps.len()];
        for &m in shared_maps {
            if let Some(f) = flags.get_mut(m as usize) {
                *f = true;
            }
        }
        self.shared = Some(Box::new(SharedPort {
            shared_maps: flags,
            log_events,
            accesses: Vec::new(),
            events: Vec::new(),
        }));
    }

    /// Move the map accesses recorded since the last drain into `into`
    /// (appending; `into` is not cleared). No-op without an attached port.
    pub fn drain_map_accesses(&mut self, into: &mut Vec<MapAccess>) {
        if let Some(p) = self.shared.as_deref_mut() {
            into.append(&mut p.accesses);
        }
    }

    /// Move the shared-map events recorded since the last drain into
    /// `into` (appending). No-op without an attached port.
    pub fn drain_map_events(&mut self, into: &mut Vec<MapEvent>) {
        if let Some(p) = self.shared.as_deref_mut() {
            into.append(&mut p.events);
        }
    }

    /// Freeze the pipeline for `cycles` additional cycles (shared-map
    /// fabric back-pressure: bank-conflict serialization and access
    /// latency). Stalls accumulate.
    pub fn add_mem_stall(&mut self, cycles: u64) {
        self.ext_stall = self.ext_stall.saturating_add(cycles);
    }

    /// Externally levied stall cycles not yet burned.
    pub fn mem_stall_pending(&self) -> u64 {
        self.ext_stall
    }

    /// Is the pipeline completely idle (nothing in flight, queued,
    /// replaying, buffered, or pending on the host channel)?
    pub fn is_idle(&self) -> bool {
        self.in_flight() == 0
            && self.rx.is_empty()
            && self.replay.is_empty()
            && self.pending_writes.is_empty()
            && self.host_ops_pending() == 0
    }

    /// Fail-stop teardown: the pipeline's clock domain is gone (replica
    /// death in a [`crate::shared::ShardedNic`]). Returns
    /// `(drained, discarded)` sequence numbers, both sorted:
    ///
    /// - **drained** — frames still waiting in the ingress FIFO. They
    ///   never entered the pipeline and are punted back to the host,
    ///   recoverable by re-transmission or software fallback.
    /// - **discarded** — packets mid-pipeline or queued for replay when
    ///   the clock died. Their partial state is unrecoverable; they are
    ///   counted, never silently lost.
    ///
    /// Buffered map writes whose owner already retired are force-committed
    /// (the owner's completion is architecturally visible, so losing the
    /// write would corrupt storage); writes belonging to discarded packets
    /// die with them. Already-retired outcomes stay in the output buffer.
    /// Afterwards the simulator [`PipelineSim::is_idle`]s with maps
    /// intact, ready for a cold restart on re-admission.
    pub fn fail_stop(&mut self) -> (Vec<u64>, Vec<u64>) {
        let mut discarded = Vec::new();
        let mut doomed: Vec<Box<InFlight>> = Vec::new();
        for slot in self.slots.iter_mut() {
            if let Some(pkt) = slot.take() {
                doomed.push(pkt);
            }
        }
        doomed.extend(self.replay.drain(..));
        for pkt in &doomed {
            discarded.push(pkt.seq);
        }
        let mut drained = Vec::new();
        let mut rx_frames: Vec<Box<InFlight>> = self.rx.drain(..).collect();
        for pkt in &rx_frames {
            drained.push(pkt.seq);
        }
        // Commit buffered writes of retired packets; drop the rest.
        let pending = std::mem::take(&mut self.pending_writes);
        for w in &pending {
            if !discarded.contains(&w.seq) && !drained.contains(&w.seq) {
                self.apply_write(w);
            }
        }
        for mut pkt in doomed.drain(..).chain(rx_frames.drain(..)) {
            for (_, b) in pkt.checkpoints.drain(..) {
                self.pool.recycle(b);
            }
            if let Some((_, b)) = pkt.resume.take() {
                self.pool.recycle(b);
            }
            for (_, _, k) in pkt.state.map_reads.drain(..) {
                self.pool.recycle_key(k);
            }
            self.pool.recycle_flight(pkt);
        }
        self.replay_hold.clear();
        self.replay_entry = 0;
        self.replay_stall = 0;
        self.stall = 0;
        self.inject_busy = 0;
        self.ext_stall = 0;
        drained.sort_unstable();
        discarded.sort_unstable();
        self.counters.failstop_drained =
            self.counters.failstop_drained.saturating_add(drained.len() as u64);
        self.counters.failstop_discarded =
            self.counters.failstop_discarded.saturating_add(discarded.len() as u64);
        (drained, discarded)
    }

    /// Record a map read on the shared port (call only when attached).
    #[inline(never)]
    fn note_map_read(&mut self, map: u32, key: &[u8], slot: Option<usize>) {
        let Some(p) = self.shared.as_deref_mut() else { return };
        if !p.shared_maps.get(map as usize).copied().unwrap_or(false) {
            return;
        }
        p.accesses.push(MapAccess { map, key_hash: map_key_hash(map, key), write: false });
        if p.log_events {
            let value = match slot {
                Some(s) => self.maps.get(map).map(|m| m.value(s).to_vec()).unwrap_or_default(),
                None => Vec::new(),
            };
            p.events.push(MapEvent {
                map,
                key: key.to_vec(),
                value,
                kind: MapEventKind::Read { hit: slot.is_some() },
            });
        }
    }

    /// Record an immediate map update on the shared port.
    #[inline(never)]
    fn note_map_update(&mut self, map: u32, key: &[u8], value: &[u8]) {
        let Some(p) = self.shared.as_deref_mut() else { return };
        if !p.shared_maps.get(map as usize).copied().unwrap_or(false) {
            return;
        }
        p.accesses.push(MapAccess { map, key_hash: map_key_hash(map, key), write: true });
        if p.log_events {
            p.events.push(MapEvent {
                map,
                key: key.to_vec(),
                value: value.to_vec(),
                kind: MapEventKind::Write,
            });
        }
    }

    /// Record an immediate map delete on the shared port.
    #[inline(never)]
    fn note_map_delete(&mut self, map: u32, key: &[u8]) {
        let Some(p) = self.shared.as_deref_mut() else { return };
        if !p.shared_maps.get(map as usize).copied().unwrap_or(false) {
            return;
        }
        p.accesses.push(MapAccess { map, key_hash: map_key_hash(map, key), write: true });
        if p.log_events {
            p.events.push(MapEvent {
                map,
                key: key.to_vec(),
                value: Vec::new(),
                kind: MapEventKind::Delete,
            });
        }
    }

    /// Record an in-place atomic (read-modify-write) on the shared port:
    /// one fabric access, logged as a write of the post-update value.
    #[inline(never)]
    fn note_map_atomic(&mut self, map: u32, slot: usize) {
        let Some(p) = self.shared.as_deref_mut() else { return };
        if !p.shared_maps.get(map as usize).copied().unwrap_or(false) {
            return;
        }
        let Some(m) = self.maps.get(map) else { return };
        let key = m.key_of(slot);
        p.accesses.push(MapAccess { map, key_hash: map_key_hash(map, key), write: true });
        if p.log_events {
            p.events.push(MapEvent {
                map,
                key: key.to_vec(),
                value: m.value(slot).to_vec(),
                kind: MapEventKind::Write,
            });
        }
    }

    /// Record a committed [`PendingWrite`] (WAR-delayed commits, own-write
    /// forwarding, and immediate value stores all land here) on the
    /// shared port, at the moment it actually mutates storage.
    #[inline(never)]
    fn note_applied_write(&mut self, w: &PendingWrite) {
        match &w.kind {
            WriteKind::Update { key, value, .. } => self.note_map_update(w.map, key, value),
            WriteKind::Delete { key } => self.note_map_delete(w.map, key),
            WriteKind::StoreValue { slot, .. } => self.note_map_atomic(w.map, *slot),
        }
    }

    fn complete(&mut self, mut pkt: Box<InFlight>) {
        for (_, b) in pkt.checkpoints.drain(..) {
            self.pool.recycle(b);
        }
        if let Some((_, b)) = pkt.resume.take() {
            self.pool.recycle(b);
        }
        for (_, _, k) in pkt.state.map_reads.drain(..) {
            self.pool.recycle_key(k);
        }
        let action = match (pkt.state.faulted, pkt.state.action) {
            (true, _) => XdpAction::Drop,
            (false, Some(a)) => a,
            (false, None) => XdpAction::Aborted,
        };
        if pkt.state.faulted {
            self.counters.bounds_faults = self.counters.bounds_faults.saturating_add(1);
        }
        let latency_cycles = self.cycle - pkt.injected_cycle;
        self.counters.completed = self.counters.completed.saturating_add(1);
        // Hand the in-flight buffer itself to the outcome instead of
        // copying the payload out of it. The rest of the frame — the box,
        // the drained checkpoint/read vectors, the original-bytes buffer —
        // goes back to the pool whole for the next injection.
        let mut packet = std::mem::take(&mut pkt.state.buf);
        packet.truncate(pkt.state.end_off);
        packet.drain(..pkt.state.data_off);
        self.out.push(SimOutcome {
            seq: pkt.seq,
            action,
            redirect_ifindex: if action == XdpAction::Redirect { pkt.state.redirect } else { None },
            packet,
            latency_cycles,
            latency_ns: latency_cycles as f64 * CLOCK_NS + self.options.shell_latency_ns,
        });
        self.pool.recycle_flight(pkt);
    }

    /// Place `pkt` into slot `t`, taking a forced checkpoint first when
    /// `t` is a FEB read stage: partial flushes re-enter the pipeline at
    /// the window's read stage, so every packet inside the window must be
    /// resumable from there (or later). The state on *entering* slot `t`
    /// is exactly the pre-execution state of stage `t`, so snapshotting
    /// here also covers packets flushed out of the slot before they run.
    /// Skipped while a resume snapshot is pending (the packet's live state
    /// is downstream of `t`'s input) and when the last checkpoint already
    /// sits at `t`.
    fn place_in_slot(&mut self, t: usize, mut pkt: Box<InFlight>) {
        if self.options.partial_flush
            && pkt.resume.is_none()
            && (self.plan.checkpoint_at(t) || self.ctrl_ckpt.get(t).copied().unwrap_or(false))
            && pkt.checkpoints.last().map(|(cs, _)| *cs) != Some(t)
        {
            let snap = self.pool.snapshot(&pkt.state);
            pkt.checkpoints.push((t, snap));
        }
        self.slots[t] = Some(pkt);
    }

    /// Flush all pipeline slots below `boundary`.
    ///
    /// `trigger` identifies the hazard: packets holding an unconfirmed read
    /// of that key must roll back past their earliest matching read to
    /// repair it; innocent bystanders resume from their latest checkpoint,
    /// so their committed side effects are never replayed (App. A.2).
    ///
    /// With `partial_flush` on and a FEB trigger, only the hazard window
    /// `[read_stage, boundary)` is evicted and replayed — the flush cost
    /// drops from `boundary + reload` to `window + reload` cycles.
    fn flush_below(&mut self, boundary: usize, read_stage: usize, trigger: Option<(u32, Vec<u8>)>) {
        if self.options.partial_flush {
            if let Some((map, key)) = trigger {
                self.partial_flush(boundary, read_stage, map, key);
                return;
            }
        }
        let mut replay = Vec::new();
        for s in (0..boundary.min(self.slots.len())).rev() {
            if let Some(pkt) = self.slots[s].take() {
                replay.push(pkt); // oldest first
            }
        }
        // A full flush also pulls back everything queued for partial
        // replay: those packets are older than anything below the replay
        // entry stage and must re-enter from the front in arrival order.
        replay.extend(self.replay.drain(..));
        self.replay_hold.clear();
        if replay.is_empty() {
            return;
        }
        replay.sort_by_key(|p| p.seq);
        self.counters.flushes = self.counters.flushes.saturating_add(1);
        self.counters.flush_replays =
            self.counters.flush_replays.saturating_add(replay.len() as u64);
        if self.debug_trace {
            eprintln!(
                "[sim {}] flush boundary={boundary} read_stage={read_stage} trigger={trigger:?}",
                self.cycle
            );
        }
        // Re-inject in original order at the queue front.
        for mut pkt in replay.into_iter().rev() {
            let limit = match &trigger {
                Some((m, k)) => matching_read_limit(&pkt.state, *m, k),
                None => usize::MAX,
            };
            if self.debug_trace {
                eprintln!(
                    "  replay seq{} limit={limit} ckpts={:?}",
                    pkt.seq,
                    pkt.checkpoints.iter().map(|(s, _)| *s).collect::<Vec<_>>()
                );
            }
            pkt.reset_for_replay(limit, &mut self.pool);
            self.counters.injected = self.counters.injected.saturating_sub(1);
            self.rx.push_front(pkt);
        }
        self.stall = self.stall.max(FLUSH_RELOAD_CYCLES);
        self.inject_busy = 0;
    }

    /// Partial flush (App. A.1): evict only the hazard window
    /// `[entry, boundary)` into the replay stream, which re-enters the
    /// pipeline at `entry` after the reload bubble. Packets below the
    /// window keep flowing and stall behind the stream; packets below the
    /// window that still hold an unconfirmed read of the key (replaying
    /// after an earlier flush) are pulled back as well.
    fn partial_flush(&mut self, boundary: usize, entry: usize, map: u32, key: Vec<u8>) {
        let had_stream = !self.replay.is_empty();
        let mut evicted: Vec<Box<InFlight>> = Vec::new();
        for s in (entry..boundary.min(self.slots.len())).rev() {
            if let Some(pkt) = self.slots[s].take() {
                evicted.push(pkt); // oldest first
            }
        }
        for s in (0..entry.min(self.slots.len())).rev() {
            let stale = self.slots[s]
                .as_ref()
                .is_some_and(|p| matching_read_limit(&p.state, map, &key) != usize::MAX);
            if stale {
                evicted.push(self.slots[s].take().expect("stale slot checked above"));
            }
        }
        // Roll back stale packets already queued from an earlier
        // overlapping flush so their repaired read re-executes too.
        let mut queue_rolled = 0u64;
        for pkt in self.replay.iter_mut() {
            let limit = matching_read_limit(&pkt.state, map, &key);
            if limit != usize::MAX {
                pkt.reset_for_replay(limit, &mut self.pool);
                queue_rolled += 1;
            }
        }
        if evicted.is_empty() && queue_rolled == 0 {
            return;
        }
        self.counters.flushes = self.counters.flushes.saturating_add(1);
        self.counters.flush_replays =
            self.counters.flush_replays.saturating_add(evicted.len() as u64);
        if self.debug_trace {
            eprintln!(
                "[sim {}] partial flush window=[{entry},{boundary}) map={map} evicted={}",
                self.cycle,
                evicted.len()
            );
        }
        for mut pkt in evicted {
            // Stale readers roll back below their earliest matching read;
            // innocents resume from their latest checkpoint. Both have a
            // forced checkpoint at (or above) `entry`, so every queued
            // packet can re-enter the pipeline there.
            let limit = matching_read_limit(&pkt.state, map, &key);
            if self.debug_trace {
                eprintln!(
                    "  queue seq{} limit={limit} ckpts={:?}",
                    pkt.seq,
                    pkt.checkpoints.iter().map(|(s, _)| *s).collect::<Vec<_>>()
                );
            }
            pkt.reset_for_replay(limit, &mut self.pool);
            self.replay.push_back(pkt);
        }
        // Merge with any pending stream: keep arrival order and re-enter
        // at the lowest read stage involved.
        self.replay.make_contiguous().sort_by_key(|p| p.seq);
        self.replay_entry = if had_stream { self.replay_entry.min(entry) } else { entry };
        // The flush controller holds the replay until the triggering
        // write has retired from its WAR delay buffer — otherwise the
        // replayed read would hit the stale-risk interlock and escalate
        // to a full flush. The hold is dynamic (checked against
        // `pending_writes` at re-entry) because a delayed write can
        // retire early when its own packet reads it back.
        let write_pending = self
            .pending_writes
            .iter()
            .any(|w| w.map == map && self.pending_write_key_matches(w, &key));
        if write_pending && !self.replay_hold.iter().any(|(m, k)| *m == map && *k == key) {
            self.replay_hold.push((map, key));
        }
        self.replay_stall = self.replay_stall.max(FLUSH_RELOAD_CYCLES);
    }

    /// Drop replay holds whose pending write has retired.
    fn retire_replay_holds(&mut self) {
        if self.replay_hold.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.replay_hold);
        self.replay_hold = pending
            .into_iter()
            .filter(|(m, k)| {
                self.pending_writes
                    .iter()
                    .any(|w| w.map == *m && self.pending_write_key_matches(w, k))
            })
            .collect();
    }

    /// Does a pending write target `key`?
    fn pending_write_key_matches(&self, w: &PendingWrite, key: &[u8]) -> bool {
        match &w.kind {
            WriteKind::Update { key: k, .. } | WriteKind::Delete { key: k } => k == key,
            WriteKind::StoreValue { slot, .. } => {
                self.maps.get(w.map).is_some_and(|m| m.key_of(*slot) == key)
            }
        }
    }

    fn commit_due_writes(&mut self) {
        let cycle = self.cycle;
        let mut i = 0;
        while i < self.pending_writes.len() {
            if self.pending_writes[i].commit_cycle <= cycle {
                let w = self.pending_writes.remove(i);
                self.apply_write(&w);
                self.recycle_write(w);
            } else {
                i += 1;
            }
        }
    }

    fn apply_write(&mut self, w: &PendingWrite) {
        let Some(map) = self.maps.get_mut(w.map) else { return };
        match &w.kind {
            WriteKind::Update { key, value, flags } => {
                let _ = map.update(key, value, *flags);
            }
            WriteKind::Delete { key } => {
                let _ = map.delete(key);
            }
            WriteKind::StoreValue { slot, off, size, value } => {
                let n = size.bytes();
                let bytes = value.to_le_bytes();
                let v = map.value_mut(*slot);
                if off + n <= v.len() {
                    v[*off..*off + n].copy_from_slice(&bytes[..n]);
                }
            }
        }
        if self.shared.is_some() {
            self.note_applied_write(w);
        }
    }

    /// Commit any buffered writes of `seq` on `map` (store-to-load
    /// forwarding: a packet always observes its own earlier writes).
    fn forward_own_writes(&mut self, map: u32, seq: u64) {
        let mut i = 0;
        while i < self.pending_writes.len() {
            if self.pending_writes[i].map == map && self.pending_writes[i].seq == seq {
                let w = self.pending_writes.remove(i);
                self.apply_write(&w);
                self.recycle_write(w);
            } else {
                i += 1;
            }
        }
    }

    /// Does any *other* packet have an uncommitted write to `key` on `map`?
    fn stale_risk(&self, map: u32, seq: u64, key: &[u8]) -> bool {
        self.pending_writes.iter().any(|w| {
            w.map == map
                && w.seq != seq
                && match &w.kind {
                    WriteKind::Update { key: k, .. } | WriteKind::Delete { key: k } => k == key,
                    WriteKind::StoreValue { slot, .. } => {
                        self.maps.get(map).is_some_and(|m| m.key_of(*slot) == key)
                    }
                }
        })
    }

    fn time_ns(&self) -> u64 {
        self.options.freeze_time_ns.unwrap_or((self.cycle as f64 * CLOCK_NS) as u64)
    }

    fn prandom(&mut self) -> u64 {
        let mut x = self.prandom_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.prandom_state = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d)) >> 32
    }

    /// Compute (and memoize) a block's enable signal. Recurses into
    /// predecessors because a block may own no pipeline stage at all (all
    /// of its instructions were optimized away) yet still routes control
    /// to its successors.
    fn block_enabled(&self, pkt: &mut PacketState, block: usize) -> bool {
        if let Some(e) = pkt.enabled.get(block) {
            return e;
        }
        let e = if block == 0 {
            true
        } else {
            self.plan.preds_of(block).iter().any(|&(p, cond)| {
                let p = p as usize;
                self.block_enabled(pkt, p)
                    && match cond {
                        EdgeCond::Always => true,
                        EdgeCond::IfTaken => pkt.taken.get(p) == Some(true),
                        EdgeCond::IfNotTaken => pkt.taken.get(p) == Some(false),
                    }
            })
        };
        pkt.enabled.set(block, e);
        e
    }

    fn exec_stage(&mut self, s: usize, pkt: &mut InFlight, plan: &ExecPlan) -> StageResult {
        // Flush-replay fast path: skip until the checkpointed stage.
        if let Some((resume_stage, _)) = pkt.resume {
            if s < resume_stage {
                return StageResult::Ok;
            }
            let (_, mut snap) = pkt.resume.take().expect("resume checked above");
            std::mem::swap(&mut pkt.state, &mut *snap);
            self.pool.recycle(snap);
        }

        let block = plan.stage_block(s);
        let ops = plan.stage_ops(s);
        if ops.is_empty() {
            // Frame-wait / helper-latency stages forward state.
            return StageResult::Ok;
        }
        if pkt.state.faulted || !self.block_enabled(&mut pkt.state, block) {
            self.stage_disabled[s] = self.stage_disabled[s].saturating_add(1);
            return StageResult::Ok;
        }
        self.stage_enabled[s] = self.stage_enabled[s].saturating_add(1);
        // Implicit length guards from elided bounds checks (§4.4): the
        // frame interface drops packets shorter than the guarded length.
        let pkt_len = (pkt.state.end_off - pkt.state.data_off) as i64;
        if pkt_len < plan.guard_min_len(block) {
            pkt.state.faulted = true;
            return StageResult::Ok;
        }

        self.exec_stage_two_phase(s, block, pkt, plan)
    }

    /// The interpreter's two-phase stage body: every op reads the incoming
    /// state; writes land in the recycled scratch write set and commit
    /// together at the stage boundary. Also the execution engine for
    /// compiled *delta* stages (stages whose ops the lowerer could not
    /// prove order-independent), which makes those stages bit-identical to
    /// the interpreter by construction.
    fn exec_stage_two_phase(
        &mut self,
        s: usize,
        block: usize,
        pkt: &mut InFlight,
        plan: &ExecPlan,
    ) -> StageResult {
        let ops = plan.stage_ops(s);
        let mut delta = self.scratch.take().expect("scratch delta available");
        let mut result = StageResult::Ok;
        for op in ops {
            match self.exec_op(s, op, pkt.seq, &pkt.state, &mut delta) {
                Ok(()) => {}
                Err(OpAbort::Fault) => {
                    delta.fault = true;
                    break;
                }
                Err(OpAbort::FlushSelf) => {
                    delta.clear();
                    self.scratch = Some(delta);
                    return StageResult::FlushSelf;
                }
            }
        }
        if let Some((map, key, read_stage)) = delta.flush_below.take() {
            result = StageResult::FlushBelow { boundary: s, read_stage, map, key };
        }
        delta.apply(&mut pkt.state, block);

        let had_side_effect = delta.side_effect;
        delta.clear();
        self.scratch = Some(delta);
        if had_side_effect {
            // Checkpoint after this stage (App. A.2 elastic buffer): a
            // flush rolling back to a point at or after it resumes here
            // instead of replaying the committed side effect.
            let snap = self.pool.snapshot(&pkt.state);
            pkt.checkpoints.push((s + 1, snap));
        }
        result
    }

    #[allow(clippy::too_many_lines)]
    fn exec_op(
        &mut self,
        stage_idx: usize,
        op: &ehdl_core::StageOp,
        seq: u64,
        state: &PacketState,
        delta: &mut Delta,
    ) -> Result<(), OpAbort> {
        let regs = &state.regs;
        match op.insn {
            HwInsn::Alu3 { op: aop, width, dst, a, b } => {
                let bv = operand(regs, b);
                delta.set_reg(dst, alu_eval(aop, width, regs[a as usize], bv));
            }
            HwInsn::Simple(insn) => match insn {
                Instruction::Alu { op: aop, width, dst, src } => {
                    let sv = operand(regs, src);
                    delta.set_reg(dst, alu_eval(aop, width, regs[dst as usize], sv));
                }
                Instruction::Endian { dst, bits, to_be } => {
                    delta.set_reg(dst, endian_eval(regs[dst as usize], bits, to_be));
                }
                Instruction::LoadImm64 { dst, imm, map } => {
                    let v = match map {
                        Some(id) => MAP_HANDLE_BASE + u64::from(id),
                        None => imm,
                    };
                    delta.set_reg(dst, v);
                }
                Instruction::Load { size, dst, src, off } => {
                    let addr = regs[src as usize].wrapping_add(off as i64 as u64);
                    self.check_proof(op, addr, state);
                    let v = self.mem_read(state, seq, addr, size)?;
                    delta.set_reg(dst, v);
                }
                Instruction::Store { size, dst, off, src } => {
                    let addr = regs[dst as usize].wrapping_add(off as i64 as u64);
                    self.check_proof(op, addr, state);
                    let v = operand(regs, src);
                    self.mem_write(stage_idx, state, seq, addr, size, v, delta)?;
                }
                Instruction::Atomic { op: aop, size, dst, off, src } => {
                    let addr = regs[dst as usize].wrapping_add(off as i64 as u64);
                    self.check_proof(op, addr, state);
                    let operand_v = regs[src as usize];
                    let old =
                        self.atomic_rmw(state, seq, addr, size, aop, operand_v, regs[0], delta)?;
                    match aop {
                        AtomicOp::Cmpxchg => delta.set_reg(0, old),
                        _ if aop.fetches() => delta.set_reg(src, old),
                        _ => {}
                    }
                }
                Instruction::Jump { cond, .. } => {
                    if let Some(c) = cond {
                        let l = regs[c.lhs as usize];
                        let r = operand(regs, c.rhs);
                        delta.taken = Some(cond_eval(c.op, c.width, l, r));
                    } else {
                        delta.taken = Some(true);
                    }
                }
                Instruction::Call { helper } => {
                    self.exec_helper(stage_idx, helper, seq, state, delta)?;
                }
                Instruction::Exit => {
                    delta.action = Some(XdpAction::from_r0(regs[0]));
                }
            },
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn atomic_rmw(
        &mut self,
        state: &PacketState,
        seq: u64,
        addr: u64,
        size: MemSize,
        aop: AtomicOp,
        operand_v: u64,
        r0: u64,
        delta: &mut Delta,
    ) -> Result<u64, OpAbort> {
        // Atomics on map values execute in the map block immediately.
        if let Some((map_id, slot, off)) =
            decode_map_value_addr(addr, |m| self.maps.get(m).map(|x| x.def().value_stride()))
        {
            self.forward_own_writes(map_id, seq);
            if self.fault.is_some() {
                self.fault_map_read(map_id, slot as u32);
            }
            let n = size.bytes();
            {
                let map = self.maps.get(map_id).ok_or(OpAbort::Fault)?;
                if self.stale_risk(map_id, seq, map.key_of(slot)) {
                    return Err(OpAbort::FlushSelf);
                }
                if off + n > map.def().value_size as usize {
                    return Err(OpAbort::Fault);
                }
            }
            let map = self.maps.get_mut(map_id).expect("map checked above");
            let mut cur = [0u8; 8];
            cur[..n].copy_from_slice(&map.value(slot)[off..off + n]);
            let old = u64::from_le_bytes(cur);
            let new = atomic_new_value(aop, old, operand_v, r0 & mask_for(size));
            let bytes = new.to_le_bytes();
            map.value_mut(slot)[off..off + n].copy_from_slice(&bytes[..n]);
            if self.shared.is_some() {
                self.note_map_atomic(map_id, slot);
            }
            delta.side_effect = true;
            if self.debug_trace {
                eprintln!("[sim {}] atomic map{map_id} slot{slot} seq{seq} old={old}", self.cycle);
            }
            Ok(old)
        } else {
            // Stack/packet atomics are local read-modify-writes.
            let old = self.mem_read(state, seq, addr, size)?;
            let new = atomic_new_value(aop, old, operand_v, r0 & mask_for(size));
            // Reuse the store path so writes commit at the boundary.
            let fake_delta_write = new;
            self.local_write(state, addr, size, fake_delta_write, delta)?;
            Ok(old)
        }
    }

    fn exec_helper(
        &mut self,
        stage_idx: usize,
        helper: u32,
        seq: u64,
        state: &PacketState,
        delta: &mut Delta,
    ) -> Result<(), OpAbort> {
        let regs = &state.regs;
        let r0 = match helper {
            BPF_MAP_LOOKUP_ELEM => {
                let map_id = map_handle(regs[1]).ok_or(OpAbort::Fault)?;
                let (key_size, stride) = {
                    let m = self.maps.get(map_id).ok_or(OpAbort::Fault)?;
                    (m.def().key_size as usize, m.def().value_stride())
                };
                // The key lands in a recycled buffer; the only per-lookup
                // allocation left is the unconfirmed-read record.
                let mut key = std::mem::take(&mut self.scratch_key);
                key.clear();
                key.resize(key_size, 0);
                let r = self.lookup_with_key(
                    stage_idx, map_id, stride, seq, state, regs[2], &mut key, delta,
                );
                key.clear();
                self.scratch_key = key;
                r?
            }
            BPF_MAP_UPDATE_ELEM | BPF_MAP_DELETE_ELEM => {
                let map_id = map_handle(regs[1]).ok_or(OpAbort::Fault)?;
                let (key_size, value_size) = {
                    let m = self.maps.get(map_id).ok_or(OpAbort::Fault)?;
                    (m.def().key_size as usize, m.def().value_size as usize)
                };
                // Like the lookup path, the key lands in a recycled
                // buffer; delayed writes copy it into pooled storage, so
                // the steady-state write path performs no allocation.
                let mut key = std::mem::take(&mut self.scratch_key);
                key.clear();
                key.resize(key_size, 0);
                let r = self.map_write_with_key(
                    stage_idx, helper, map_id, value_size, seq, state, &mut key, delta,
                );
                key.clear();
                self.scratch_key = key;
                r?;
                0
            }
            BPF_KTIME_GET_NS => self.time_ns(),
            BPF_GET_PRANDOM_U32 => self.prandom(),
            BPF_GET_SMP_PROCESSOR_ID => 0,
            BPF_REDIRECT => {
                delta.redirect = Some(regs[1] as u32);
                XdpAction::Redirect.code()
            }
            BPF_XDP_ADJUST_HEAD => {
                let d = regs[2] as i64;
                let new_off = state.data_off as i64 + d;
                if new_off < 0 || new_off as usize >= state.end_off {
                    (-1i64) as u64
                } else {
                    delta.new_data_off = Some(new_off as usize);
                    0
                }
            }
            BPF_XDP_ADJUST_TAIL => {
                let d = regs[2] as i64;
                let new_end = state.end_off as i64 + d;
                if new_end <= state.data_off as i64 || new_end as usize > state.buf.len() {
                    (-1i64) as u64
                } else {
                    delta.new_end_off = Some(new_end as usize);
                    0
                }
            }
            BPF_CSUM_DIFF => {
                let from_size = regs[2] as usize;
                let to_size = regs[4] as usize;
                let mut sum = regs[5] as i64;
                let mut buf = std::mem::take(&mut self.scratch_val);
                let r = (|| {
                    if from_size > 0 {
                        sum -= self.csum_block(state, seq, regs[1], from_size, &mut buf)?;
                    }
                    if to_size > 0 {
                        sum += self.csum_block(state, seq, regs[3], to_size, &mut buf)?;
                    }
                    Ok(())
                })();
                buf.clear();
                self.scratch_val = buf;
                r?;
                (sum as u64) & 0xffff_ffff
            }
            _ => return Err(OpAbort::Fault),
        };
        delta.set_reg(0, r0);
        for r in 1..=5u8 {
            delta.set_reg(r, 0);
        }
        Ok(())
    }

    /// In poison mode, clobber all state the pruning analysis declared
    /// dead at the boundary entering `stage` — emulating the wires the
    /// real hardware simply does not have (§4.3).
    fn poison_dead(&self, pkt: &mut InFlight, stage: usize) {
        if !self.options.poison_dead_state || pkt.resume.is_some() {
            return;
        }
        let (Some(&live_regs), Some(live_stack)) =
            (self.design.prune.live_regs.get(stage), self.design.prune.live_stack.get(stage))
        else {
            return;
        };
        for r in 0..11 {
            if live_regs & (1 << r) == 0 {
                pkt.state.regs[r] = 0xDEAD_DEAD_DEAD_DEAD;
            }
        }
        for (byte, sb) in pkt.state.stack.iter_mut().enumerate() {
            if live_stack[byte / 64] & (1 << (byte % 64)) == 0 {
                *sb = 0xDD;
            }
        }
        // Poison breaks the zero-below-watermark invariant; snapshots of
        // this packet must copy the full stack from now on.
        pkt.state.stack_lo = 0;
    }

    /// The protected read stage of the FEB guarding (`map`, `write_stage`).
    fn feb_read_stage(&self, map: u32, write_stage: usize) -> usize {
        self.design
            .hazards
            .febs
            .iter()
            .filter(|f| f.map == map && f.write_stage == write_stage)
            .map(|f| f.read_stage)
            .min()
            .unwrap_or(0)
    }

    /// FEB comparison: does a younger in-flight packet (or a queued replay)
    /// hold an unconfirmed read of `key`?
    fn younger_read_matches(&self, write_stage: usize, map: u32, key: &[u8]) -> bool {
        let bit = read_key_bit(map, key);
        self.slots[..write_stage]
            .iter()
            .flatten()
            .map(|p| &p.state)
            .chain(self.replay.iter().map(|p| &p.state))
            .any(|st| {
                st.read_filter & bit != 0
                    && st.map_reads.iter().any(|&(m, _, ref k)| m == map && k == key)
            })
    }

    /// Recheck a compile-time packet-bounds proof against the concrete
    /// access (soundness validation, [`SimOptions::check_proofs`]).
    fn check_proof(&mut self, op: &ehdl_core::StageOp, addr: u64, state: &PacketState) {
        if !self.options.check_proofs {
            return;
        }
        let Some(p) = op.proof else { return };
        if !(PACKET_BASE..STACK_BASE).contains(&addr) {
            self.counters.proof_violations = self.counters.proof_violations.saturating_add(1);
            return;
        }
        let off = (addr - PACKET_BASE) as i64 - state.data_off as i64;
        let len = (state.end_off - state.data_off) as i64;
        if off < p.lo || off > p.hi || len < p.min_len {
            self.counters.proof_violations = self.counters.proof_violations.saturating_add(1);
        }
    }

    fn mem_read(
        &mut self,
        state: &PacketState,
        seq: u64,
        addr: u64,
        size: MemSize,
    ) -> Result<u64, OpAbort> {
        let n = size.bytes();
        if addr >= CTX_BASE && addr < CTX_BASE + xdp_md::SIZE as u64 {
            let v = match (addr - CTX_BASE) as i64 {
                xdp_md::DATA | xdp_md::DATA_META => PACKET_BASE + state.data_off as u64,
                xdp_md::DATA_END => PACKET_BASE + state.end_off as u64,
                _ => 0,
            };
            return Ok(v & mask_for(size));
        }
        let mut v = [0u8; 8];
        self.read_into(state, seq, addr, &mut v[..n])?;
        Ok(u64::from_le_bytes(v))
    }

    /// Read `out.len()` bytes at `addr` into `out` (no allocation; the
    /// whole slice is overwritten on success).
    fn read_into(
        &mut self,
        state: &PacketState,
        seq: u64,
        addr: u64,
        out: &mut [u8],
    ) -> Result<(), OpAbort> {
        let n = out.len();
        if (PACKET_BASE..STACK_BASE).contains(&addr) {
            let off = (addr - PACKET_BASE) as usize;
            if off >= state.data_off && off + n <= state.end_off {
                out.copy_from_slice(&state.buf[off..off + n]);
                return Ok(());
            }
            return Err(OpAbort::Fault);
        }
        if (STACK_BASE..STACK_TOP).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            if off + n <= STACK_SIZE as usize {
                out.copy_from_slice(&state.stack[off..off + n]);
                return Ok(());
            }
            return Err(OpAbort::Fault);
        }
        if let Some((map_id, slot, off)) =
            decode_map_value_addr(addr, |m| self.maps.get(m).map(|x| x.def().value_stride()))
        {
            self.forward_own_writes(map_id, seq);
            if self.fault.is_some() {
                self.fault_map_read(map_id, slot as u32);
            }
            let map = self.maps.get(map_id).ok_or(OpAbort::Fault)?;
            if off + n > map.def().value_size as usize {
                return Err(OpAbort::Fault);
            }
            if self.stale_risk(map_id, seq, map.key_of(slot)) {
                return Err(OpAbort::FlushSelf);
            }
            out.copy_from_slice(&map.value(slot)[off..off + n]);
            return Ok(());
        }
        Err(OpAbort::Fault)
    }

    /// Lookup body, split out so the recycled key buffer is restored on
    /// every exit path.
    #[allow(clippy::too_many_arguments)]
    fn lookup_with_key(
        &mut self,
        stage_idx: usize,
        map_id: u32,
        stride: u32,
        seq: u64,
        state: &PacketState,
        key_addr: u64,
        key: &mut [u8],
        delta: &mut Delta,
    ) -> Result<u64, OpAbort> {
        self.read_into(state, seq, key_addr, key)?;
        self.forward_own_writes(map_id, seq);
        if self.stale_risk(map_id, seq, key) {
            return Err(OpAbort::FlushSelf);
        }
        delta.record_read(map_id, stage_idx as u32, key.to_vec());
        let map = self.maps.get_mut(map_id).expect("map exists");
        let slot = map.lookup(key).ok().flatten();
        if let Some(c) = self.map_lookups.get_mut(map_id as usize) {
            *c = c.saturating_add(1);
        }
        if slot.is_some() {
            if let Some(c) = self.map_hits.get_mut(map_id as usize) {
                *c = c.saturating_add(1);
            }
        }
        if self.shared.is_some() {
            self.note_map_read(map_id, key, slot);
        }
        Ok(match slot {
            Some(slot) => {
                if self.fault.is_some() {
                    self.fault_map_read(map_id, slot as u32);
                }
                map_value_addr(map_id, slot, stride)
            }
            None => 0,
        })
    }

    /// Map update/delete body, split out so the recycled key buffer is
    /// restored on every exit path. Immediate (undelayed) writes commit
    /// straight from the scratch buffers; WAR-delayed writes copy into
    /// pooled storage recycled at commit time — no allocation either way.
    #[allow(clippy::too_many_arguments)]
    fn map_write_with_key(
        &mut self,
        stage_idx: usize,
        helper: u32,
        map_id: u32,
        value_size: usize,
        seq: u64,
        state: &PacketState,
        key: &mut [u8],
        delta: &mut Delta,
    ) -> Result<(), OpAbort> {
        let regs = &state.regs;
        self.read_into(state, seq, regs[2], key)?;
        // FEB: compare the write key against unconfirmed reads of
        // younger in-flight packets (§4.1.2).
        let hazard = self.younger_read_matches(stage_idx, map_id, key);
        let delay = self.war_delay.get(&(map_id, stage_idx)).copied().unwrap_or(0);
        if helper == BPF_MAP_UPDATE_ELEM {
            let flags = UpdateFlags::from_raw(regs[4]).unwrap_or(UpdateFlags::Any);
            let mut value = std::mem::take(&mut self.scratch_val);
            value.clear();
            value.resize(value_size, 0);
            let read = self.read_into(state, seq, regs[3], &mut value);
            if read.is_ok() {
                if delay == 0 {
                    if let Some(map) = self.maps.get_mut(map_id) {
                        let _ = map.update(key, &value, flags);
                    }
                    if self.shared.is_some() {
                        self.note_map_update(map_id, key, &value);
                    }
                } else {
                    let k = self.pooled_copy(key);
                    let v = self.pooled_copy(&value);
                    self.pending_writes.push(PendingWrite {
                        commit_cycle: self.cycle + delay,
                        map: map_id,
                        seq,
                        kind: WriteKind::Update { key: k, value: v, flags },
                    });
                }
            }
            value.clear();
            self.scratch_val = value;
            read?;
        } else if delay == 0 {
            if let Some(map) = self.maps.get_mut(map_id) {
                let _ = map.delete(key);
            }
            if self.shared.is_some() {
                self.note_map_delete(map_id, key);
            }
        } else {
            let k = self.pooled_copy(key);
            self.pending_writes.push(PendingWrite {
                commit_cycle: self.cycle + delay,
                map: map_id,
                seq,
                kind: WriteKind::Delete { key: k },
            });
        }
        delta.side_effect = true;
        if hazard {
            delta.flush_below =
                Some((map_id, key.to_vec(), self.feb_read_stage(map_id, stage_idx)));
        }
        Ok(())
    }

    /// Copy `src` into a pooled byte buffer (allocation-free when warm).
    fn pooled_copy(&mut self, src: &[u8]) -> Vec<u8> {
        let mut b = self.buf_pool.pop().unwrap_or_default();
        b.clear();
        b.extend_from_slice(src);
        b
    }

    fn recycle_buf(&mut self, mut b: Vec<u8>) {
        if self.buf_pool.len() < 32 {
            b.clear();
            self.buf_pool.push(b);
        }
    }

    /// Return a retired pending write's owned buffers to the pool.
    fn recycle_write(&mut self, w: PendingWrite) {
        match w.kind {
            WriteKind::Update { key, value, .. } => {
                self.recycle_buf(key);
                self.recycle_buf(value);
            }
            WriteKind::Delete { key } => self.recycle_buf(key),
            WriteKind::StoreValue { .. } => {}
        }
    }

    /// Sum `len` bytes at `addr` as little-endian u32 words (the
    /// `bpf_csum_diff` accumulation), via the recycled scratch buffer.
    fn csum_block(
        &mut self,
        state: &PacketState,
        seq: u64,
        addr: u64,
        len: usize,
        buf: &mut Vec<u8>,
    ) -> Result<i64, OpAbort> {
        buf.clear();
        buf.resize(len, 0);
        self.read_into(state, seq, addr, buf)?;
        let mut sum = 0i64;
        for wds in buf.chunks(4) {
            let mut b = [0u8; 4];
            b[..wds.len()].copy_from_slice(wds);
            sum += i64::from(u32::from_le_bytes(b));
        }
        Ok(sum)
    }

    #[allow(clippy::too_many_arguments)]
    fn mem_write(
        &mut self,
        stage_idx: usize,
        state: &PacketState,
        seq: u64,
        addr: u64,
        size: MemSize,
        value: u64,
        delta: &mut Delta,
    ) -> Result<(), OpAbort> {
        if let Some((map_id, slot, off)) =
            decode_map_value_addr(addr, |m| self.maps.get(m).map(|x| x.def().value_stride()))
        {
            let n = size.bytes();
            let map = self.maps.get(map_id).ok_or(OpAbort::Fault)?;
            if off + n > map.def().value_size as usize {
                return Err(OpAbort::Fault);
            }
            // Only a fired hazard needs an owned copy of the key.
            let flush_key = self
                .younger_read_matches(stage_idx, map_id, map.key_of(slot))
                .then(|| map.key_of(slot).to_vec());
            let delay = self.war_delay.get(&(map_id, stage_idx)).copied().unwrap_or(0);
            let w = PendingWrite {
                commit_cycle: self.cycle + delay,
                map: map_id,
                seq,
                kind: WriteKind::StoreValue { slot, off, size, value },
            };
            if delay == 0 {
                self.apply_write(&w);
            } else {
                self.pending_writes.push(w);
            }
            delta.side_effect = true;
            if let Some(key) = flush_key {
                delta.flush_below = Some((map_id, key, self.feb_read_stage(map_id, stage_idx)));
            }
            return Ok(());
        }
        self.local_write(state, addr, size, value, delta)
    }

    fn local_write(
        &self,
        state: &PacketState,
        addr: u64,
        size: MemSize,
        value: u64,
        delta: &mut Delta,
    ) -> Result<(), OpAbort> {
        let n = size.bytes();
        if (PACKET_BASE..STACK_BASE).contains(&addr) {
            let off = (addr - PACKET_BASE) as usize;
            if off >= state.data_off && off + n <= state.end_off {
                delta.pkt_writes.push((off, size, value));
                return Ok(());
            }
            return Err(OpAbort::Fault);
        }
        if (STACK_BASE..STACK_TOP).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            if off + n <= STACK_SIZE as usize {
                delta.stack_writes.push((off, size, value));
                return Ok(());
            }
            return Err(OpAbort::Fault);
        }
        Err(OpAbort::Fault)
    }
}

/// Host control-channel integration (see [`crate::ctrl`] for the model
/// and the ordering contract).
///
/// Like the fault engine, the channel's data lives in the private `CtrlState`; the
/// code that arbitrates it against the pipeline lives here because the
/// simulator owns the pipeline state.
impl PipelineSim {
    /// Attach a host control channel. Ops submitted via
    /// [`PipelineSim::submit_host_op`] start flowing on the next step.
    ///
    /// Attaching also widens the forced-checkpoint schedule to every
    /// map-lookup stage: a host write can invalidate *any* recorded read,
    /// not only FEB-protected ones, and the flush controller re-enters
    /// the pipeline at the stale read's stage.
    pub fn attach_ctrl(&mut self, options: CtrlOptions) {
        self.ctrl = Some(Box::new(CtrlState::new(options)));
        let mut ckpt = vec![false; self.design.stages.len()];
        for (s, stage) in self.design.stages.iter().enumerate() {
            for op in &stage.ops {
                if matches!(op.map_use, Some(MapUse::Lookup(_))) {
                    ckpt[s] = true;
                }
            }
        }
        self.ctrl_ckpt = ckpt;
    }

    /// Is a control channel attached?
    pub fn ctrl_attached(&self) -> bool {
        self.ctrl.is_some()
    }

    /// Submit a host map op. It applies after the channel latency, once
    /// its ordering fence holds; the result arrives via
    /// [`PipelineSim::host_completions`].
    ///
    /// # Errors
    ///
    /// [`CtrlError::NotAttached`] without a channel,
    /// [`CtrlError::NoSuchMap`] for an unknown map id, and
    /// [`CtrlError::QueueFull`] when the command queue is at capacity.
    pub fn submit_host_op(&mut self, op: HostOp) -> Result<u64, CtrlError> {
        let cycle = self.cycle;
        let barrier = self.next_seq;
        let nmaps = self.maps.len() as u32;
        let Some(ctrl) = self.ctrl.as_deref_mut() else {
            return Err(CtrlError::NotAttached);
        };
        if op.map() >= nmaps {
            ctrl.stats.rejected = ctrl.stats.rejected.saturating_add(1);
            return Err(CtrlError::NoSuchMap { map: op.map() });
        }
        if ctrl.queue.len() >= ctrl.options.queue_depth {
            ctrl.stats.rejected = ctrl.stats.rejected.saturating_add(1);
            return Err(CtrlError::QueueFull { depth: ctrl.options.queue_depth });
        }
        let id = ctrl.next_id;
        ctrl.next_id += 1;
        ctrl.stats.submitted = ctrl.stats.submitted.saturating_add(1);
        ctrl.queue.push_back(QueuedOp {
            id,
            op,
            barrier_seq: barrier,
            issued_cycle: cycle,
            ready_cycle: cycle + ctrl.options.latency_cycles,
            frame_seq: None,
        });
        Ok(id)
    }

    /// Attach the seeded loss model to the control link. Only wire-frame
    /// submissions ([`PipelineSim::submit_host_frame`]) and their
    /// completions traverse the lossy link; [`PipelineSim::submit_host_op`]
    /// models a reliable debug backdoor and is unaffected.
    ///
    /// # Errors
    ///
    /// [`CtrlError::NotAttached`] without a channel.
    pub fn attach_ctrl_loss(&mut self, cfg: CtrlLossConfig) -> Result<(), CtrlError> {
        let Some(ctrl) = self.ctrl.as_deref_mut() else {
            return Err(CtrlError::NotAttached);
        };
        ctrl.loss = if cfg.is_lossy() { Some(Box::new(LossState::new(cfg))) } else { None };
        Ok(())
    }

    /// Submit a host op as a wire frame ([`crate::ctrl::encode_frame`])
    /// over the (possibly lossy) control link. Returns the frame's
    /// retransmission seq on acceptance; completions carry that seq as
    /// their `id`.
    ///
    /// Acceptance is a *posted write*: the mailbox slot was taken, but the
    /// frame may still be dropped, duplicated, delayed, or mangled in
    /// transit. A frame whose seq was already applied is answered from the
    /// channel's dedupe cache without re-executing, so retransmitting
    /// until a completion arrives yields exactly-once application.
    ///
    /// # Errors
    ///
    /// [`CtrlError::NotAttached`] without a channel,
    /// [`CtrlError::BadFrame`] when the frame does not decode at the
    /// driver (before transit), [`CtrlError::NoSuchMap`] for an unknown
    /// map id, and [`CtrlError::QueueFull`] when the command queue is at
    /// capacity — all typed, synchronous rejections; nothing is dropped
    /// silently on the host side.
    pub fn submit_host_frame(&mut self, frame: &[u8]) -> Result<u64, CtrlError> {
        let cycle = self.cycle;
        let barrier = self.next_seq;
        let nmaps = self.maps.len() as u32;
        let Some(ctrl) = self.ctrl.as_deref_mut() else {
            return Err(CtrlError::NotAttached);
        };
        // Driver-side validation: a frame the host itself mangled never
        // reaches the DMA engine.
        let (seq, op) = match decode_frame(frame) {
            Ok(v) => v,
            Err(e) => {
                ctrl.stats.rejected = ctrl.stats.rejected.saturating_add(1);
                return Err(CtrlError::BadFrame(e));
            }
        };
        if op.map() >= nmaps {
            ctrl.stats.rejected = ctrl.stats.rejected.saturating_add(1);
            return Err(CtrlError::NoSuchMap { map: op.map() });
        }
        if ctrl.queue.len() >= ctrl.options.queue_depth {
            ctrl.stats.rejected = ctrl.stats.rejected.saturating_add(1);
            return Err(CtrlError::QueueFull { depth: ctrl.options.queue_depth });
        }
        // In-transit fate. Every roll always advances the RNG stream so
        // the pattern for later frames is independent of earlier outcomes.
        let mut copies = 1usize;
        let mut extra_delay = 0u64;
        if let Some(loss) = ctrl.loss.as_deref_mut() {
            let dropped = loss.roll(loss.cfg.drop_rate);
            let duplicated = loss.roll(loss.cfg.dup_rate);
            let corrupted = loss.roll(loss.cfg.corrupt_rate);
            let delayed = loss.roll(loss.cfg.delay_rate);
            if dropped {
                ctrl.stats.req_dropped = ctrl.stats.req_dropped.saturating_add(1);
                return Ok(seq);
            }
            if corrupted {
                let mut mangled = frame.to_vec();
                loss.mangle(&mut mangled);
                if decode_frame(&mangled).is_err() {
                    // The NIC received garbage; the CRC catches it and the
                    // frame is discarded — a detected drop.
                    ctrl.stats.req_corrupted = ctrl.stats.req_corrupted.saturating_add(1);
                    return Ok(seq);
                }
                // A flip pattern the CRC missed would arrive as a clean
                // frame; astronomically unlikely, treated as undamaged.
            }
            if duplicated {
                copies = 2;
                ctrl.stats.req_duplicated = ctrl.stats.req_duplicated.saturating_add(1);
            }
            if delayed {
                extra_delay = loss.extra_delay();
                ctrl.stats.req_delayed = ctrl.stats.req_delayed.saturating_add(1);
            }
        }
        for copy in 0..copies {
            // A duplicate arriving at a full mailbox is swallowed by the
            // hardware; the first copy already carries the op.
            if copy > 0 && ctrl.queue.len() >= ctrl.options.queue_depth {
                break;
            }
            let id = ctrl.next_id;
            ctrl.next_id += 1;
            ctrl.stats.submitted = ctrl.stats.submitted.saturating_add(1);
            ctrl.queue.push_back(QueuedOp {
                id,
                op: op.clone(),
                barrier_seq: barrier,
                issued_cycle: cycle,
                ready_cycle: cycle + ctrl.options.latency_cycles + extra_delay,
                frame_seq: Some(seq),
            });
        }
        Ok(seq)
    }

    /// Take all retired host-op completions (in application order).
    pub fn host_completions(&mut self) -> Vec<HostCompletion> {
        self.ctrl.as_deref_mut().map_or_else(Vec::new, |c| std::mem::take(&mut c.completions))
    }

    /// Control-channel counters, when a channel is attached.
    pub fn ctrl_stats(&self) -> Option<CtrlStats> {
        self.ctrl.as_deref().map(|c| c.stats)
    }

    /// Host ops submitted but not yet applied, plus completions still in
    /// transit on a delayed return path (the channel is not quiet until
    /// both are empty).
    pub fn host_ops_pending(&self) -> usize {
        self.ctrl.as_deref().map_or(0, |c| c.queue.len() + c.delayed.len())
    }

    /// Apply the head-of-queue op if its latency has elapsed and its
    /// ordering fence holds (one op per cycle, like a single-issue
    /// AXI-Lite slave).
    fn ctrl_cycle(&mut self) {
        // Deliver completions whose in-transit delay elapsed.
        if let Some(ctrl) = self.ctrl.as_deref_mut() {
            if !ctrl.delayed.is_empty() {
                let cycle = self.cycle;
                let mut i = 0;
                while i < ctrl.delayed.len() {
                    if ctrl.delayed[i].0 <= cycle {
                        let (_, c) = ctrl.delayed.swap_remove(i);
                        ctrl.completions.push(c);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        let ready = {
            let Some(ctrl) = self.ctrl.as_deref() else { return };
            let Some(front) = ctrl.queue.front() else { return };
            self.cycle >= front.ready_cycle && self.host_fence_ok(front)
        };
        if !ready {
            return;
        }
        let q = self
            .ctrl
            .as_deref_mut()
            .and_then(|c| c.queue.pop_front())
            .expect("readiness checked above");
        // Exactly-once application: a retransmitted frame whose seq was
        // already applied is answered from the dedupe cache.
        if let Some(seq) = q.frame_seq {
            let cached = self.ctrl.as_deref().and_then(|c| c.applied.get(&seq)).cloned();
            if let Some(mut completion) = cached {
                completion.issued_cycle = q.issued_cycle;
                let ctrl = self.ctrl.as_deref_mut().expect("channel attached: op was queued");
                ctrl.stats.dedupe_hits = ctrl.stats.dedupe_hits.saturating_add(1);
                Self::deliver_completion(ctrl, self.cycle, completion);
                return;
            }
        }
        let latency = self.cycle.saturating_sub(q.issued_cycle);
        let frame_seq = q.frame_seq;
        let completion = self.apply_host_op(q);
        let ctrl = self.ctrl.as_deref_mut().expect("channel attached: op was queued");
        let s = &mut ctrl.stats;
        if completion.result.is_ok() {
            s.completed = s.completed.saturating_add(1);
        } else {
            s.failed = s.failed.saturating_add(1);
        }
        if completion.flushed_readers > 0 {
            s.flushes = s.flushes.saturating_add(1);
            s.flushed_readers = s.flushed_readers.saturating_add(completion.flushed_readers);
        }
        s.latency_cycles_total = s.latency_cycles_total.saturating_add(latency);
        s.latency_cycles_max = s.latency_cycles_max.max(latency);
        let completion = if let Some(seq) = frame_seq {
            // Frame completions carry the host's retransmission seq so the
            // host can match them against outstanding ops.
            let mut c = completion;
            c.id = seq;
            ctrl.remember_applied(seq, c.clone());
            c
        } else {
            completion
        };
        if frame_seq.is_some() {
            Self::deliver_completion(ctrl, self.cycle, completion);
        } else {
            // The reliable backdoor path bypasses the lossy return link.
            ctrl.completions.push(completion);
        }
    }

    /// Send a completion back over the (possibly lossy) return link:
    /// it may be dropped (the dedupe cache still remembers the applied
    /// op, so a retransmission recovers it), duplicated, or delayed. A
    /// corrupted completion fails its CRC at the host and counts as a
    /// detected drop.
    fn deliver_completion(ctrl: &mut CtrlState, cycle: u64, completion: HostCompletion) {
        let Some(loss) = ctrl.loss.as_deref_mut() else {
            ctrl.completions.push(completion);
            return;
        };
        let dropped = loss.roll(loss.cfg.drop_rate);
        let duplicated = loss.roll(loss.cfg.dup_rate);
        let corrupted = loss.roll(loss.cfg.corrupt_rate);
        let delayed = loss.roll(loss.cfg.delay_rate);
        if dropped || corrupted {
            ctrl.stats.comp_dropped = ctrl.stats.comp_dropped.saturating_add(1);
            return;
        }
        if duplicated {
            ctrl.stats.comp_duplicated = ctrl.stats.comp_duplicated.saturating_add(1);
            ctrl.completions.push(completion.clone());
        }
        if delayed {
            let extra = loss.extra_delay();
            ctrl.stats.comp_delayed = ctrl.stats.comp_delayed.saturating_add(1);
            ctrl.delayed.push((cycle + extra, completion));
        } else {
            ctrl.completions.push(completion);
        }
    }

    /// The barrier fence of a queued op: every packet logically preceding
    /// it (`seq < barrier`) must be past the last stage touching its map,
    /// have no write still sitting in a WAR delay buffer, and — for a
    /// mutating op — hold no unconfirmed read of the op's key anywhere
    /// (rolling such a reader back would replay a read that legitimately
    /// preceded the op).
    fn host_fence_ok(&self, q: &QueuedOp) -> bool {
        let b = q.barrier_seq;
        let m = q.op.map();
        if self.pending_writes.iter().any(|w| w.map == m && w.seq < b) {
            return false;
        }
        let fence = self.plan.host_fence_stage(m as usize).min(self.slots.len());
        if self.slots[..fence].iter().flatten().any(|p| p.seq < b) {
            return false;
        }
        // Both queues are seq-ordered, so the front carries the minimum.
        if self.rx.front().is_some_and(|p| p.seq < b) {
            return false;
        }
        if self.replay.front().is_some_and(|p| p.seq < b) {
            return false;
        }
        if q.op.mutates() {
            if let Some(key) = q.op.key() {
                let stale_old = self
                    .slots
                    .iter()
                    .flatten()
                    .any(|p| p.seq < b && matching_read_limit(&p.state, m, key) != usize::MAX);
                if stale_old {
                    return false;
                }
            }
        }
        true
    }

    /// Apply one fenced host op to the live maps, triggering the hazard
    /// flush machinery when a write lands inside an open RAW window.
    fn apply_host_op(&mut self, q: QueuedOp) -> HostCompletion {
        self.counters.host_ops = self.counters.host_ops.saturating_add(1);
        let map_id = q.op.map();
        let (result, flushed_readers) = match &q.op {
            HostOp::Lookup { map, key } => {
                let m = self.maps.get_mut(*map).expect("map id validated at submit");
                let r = match m.lookup(key) {
                    Ok(Some(slot)) => Ok(HostOpResult::Value(Some(m.value(slot).to_vec()))),
                    Ok(None) => Ok(HostOpResult::Value(None)),
                    Err(e) => Err(e),
                };
                (r, 0)
            }
            HostOp::Update { map, key, value, flags } => {
                let r = self
                    .maps
                    .get_mut(*map)
                    .expect("map id validated at submit")
                    .update(key, value, *flags)
                    .map(|_| HostOpResult::Updated);
                let f = if r.is_ok() { self.host_flush_readers(*map, key) } else { 0 };
                (r, f)
            }
            HostOp::Delete { map, key } => {
                let r = self
                    .maps
                    .get_mut(*map)
                    .expect("map id validated at submit")
                    .delete(key)
                    .map(|()| HostOpResult::Deleted);
                let f = if r.is_ok() { self.host_flush_readers(*map, key) } else { 0 };
                (r, f)
            }
            HostOp::Dump { map } => {
                let m = self.maps.get(*map).expect("map id validated at submit");
                let entries = m.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
                (Ok(HostOpResult::Entries(entries)), 0)
            }
        };
        if self.debug_trace {
            eprintln!(
                "[sim {}] host op id{} map{map_id} barrier={} flushed={flushed_readers}",
                self.cycle, q.id, q.barrier_seq
            );
        }
        HostCompletion {
            id: q.id,
            map: map_id,
            result,
            issued_cycle: q.issued_cycle,
            applied_cycle: self.cycle,
            flushed_readers,
        }
    }

    /// Roll back every younger in-flight packet still holding an
    /// unconfirmed read of (`map`, `key`) — the host write's RAW hazard,
    /// resolved by the exact same flush/replay path a pipeline FEB uses.
    /// Returns how many packets matched.
    fn host_flush_readers(&mut self, map: u32, key: &[u8]) -> u64 {
        let mut entry = usize::MAX;
        let mut deepest = None;
        let mut matched = 0u64;
        for (s, slot) in self.slots.iter().enumerate() {
            if let Some(p) = slot {
                let lim = matching_read_limit(&p.state, map, key);
                if lim != usize::MAX {
                    entry = entry.min(lim);
                    deepest = Some(s);
                    matched += 1;
                }
            }
        }
        for p in &self.replay {
            let lim = matching_read_limit(&p.state, map, key);
            if lim != usize::MAX {
                entry = entry.min(lim);
                matched += 1;
            }
        }
        if matched == 0 {
            return 0;
        }
        // The window runs from the earliest stale read to just past the
        // deepest stale reader (replay-queue-only matches roll back in
        // place, so the window may be empty).
        let boundary = deepest.map_or(entry, |d| d + 1).max(entry);
        self.counters.host_op_flushes = self.counters.host_op_flushes.saturating_add(1);
        if self.debug_trace {
            eprintln!(
                "[sim {}] host write hazard map{map} window=[{entry},{boundary}) n={matched}",
                self.cycle
            );
        }
        self.flush_below(boundary, entry, Some((map, key.to_vec())));
        matched
    }

    /// Host-port write arbitration: a packet logically ordered after a
    /// queued op (`seq >= barrier`) may not irreversibly write the op's
    /// map before the op applies — the sequential reference would run the
    /// op first.
    #[inline]
    fn ctrl_effect_stall(&self, s: usize, seq: u64) -> bool {
        let Some(ctrl) = self.ctrl.as_deref() else { return false };
        if ctrl.queue.is_empty() {
            return false;
        }
        let mask = self.plan.stage_effect_maps(s);
        if mask == 0 {
            return false;
        }
        ctrl.queue.iter().any(|q| seq >= q.barrier_seq && mask_has(mask, q.op.map()))
    }

    /// Retirement hold: a packet ordered after a queued mutating op may
    /// not complete while it holds (or its final stage could still
    /// create) a read the op is about to invalidate — once retired it is
    /// beyond the reach of the flush that would repair it.
    fn ctrl_retire_stall(&self, s: usize, pkt: &InFlight) -> bool {
        let Some(ctrl) = self.ctrl.as_deref() else { return false };
        if ctrl.queue.is_empty() {
            return false;
        }
        ctrl.queue.iter().any(|q| {
            if pkt.seq < q.barrier_seq || !q.op.mutates() {
                return false;
            }
            let m = q.op.map();
            let stale =
                q.op.key().is_some_and(|k| matching_read_limit(&pkt.state, m, k) != usize::MAX);
            stale || mask_has(self.plan.stage_read_maps(s), m)
        })
    }
}

/// Does `mask` (a `<64`-map-id bitmask) cover `map`? Ids beyond the mask
/// width fall back to `true` — a conservative stall, never a missed one.
fn mask_has(mask: u64, map: u32) -> bool {
    if map < 64 {
        mask >> map & 1 == 1
    } else {
        mask != 0
    }
}

/// Fault-injection integration (see [`crate::fault`] for the model).
///
/// The engine's data lives in [`FaultEngine`]; the code that actually
/// mutates pipeline state lives here, because the simulator owns that
/// state. To satisfy the borrow checker the engine is taken out of
/// `self.fault` for the duration of a fault cycle.
impl PipelineSim {
    /// Attach a fault-injection engine. Faults start landing on the next
    /// [`PipelineSim::step`]; reattaching replaces the engine (and its log).
    pub fn attach_faults(&mut self, cfg: FaultConfig) {
        self.fault = Some(Box::new(FaultEngine::new(cfg)));
    }

    /// The attached fault engine, if any.
    pub fn fault_engine(&self) -> Option<&FaultEngine> {
        self.fault.as_deref()
    }

    /// Fraction of elapsed cycles the pipeline was live (not hung).
    /// `1.0` without an attached engine.
    pub fn availability(&self) -> f64 {
        self.fault.as_ref().map_or(1.0, |f| f.availability(self.cycle))
    }

    /// End-of-campaign cleanup: the background scrubber would eventually
    /// visit every outstanding ECC upset, so resolve them all as scrub
    /// corrections before reading the stats.
    pub fn finalize_faults(&mut self) {
        let Some(eng) = self.fault.as_mut() else { return };
        while !eng.upsets.is_empty() {
            let u = eng.upsets.remove(0);
            eng.stats.corrected_scrub = eng.stats.corrected_scrub.saturating_add(1);
            eng.resolve(u.event, FaultOutcome::CorrectedByScrub);
        }
    }

    /// One fault-engine clock tick: watchdog, scrub, stuck-at sites, and
    /// possibly a fresh injection.
    fn fault_cycle(&mut self) {
        let Some(mut eng) = self.fault.take() else { return };
        // Hang accounting and the watchdog. Without a watchdog the hang
        // persists: availability collapses until the run's cycle budget
        // expires — exactly the failure mode the primitive exists for.
        if let Some(h) = eng.hang {
            eng.hung_cycles = eng.hung_cycles.saturating_add(1);
            if self.plan.protect().watchdog()
                && self.cycle.saturating_sub(h.since) >= eng.cfg.watchdog_timeout
            {
                self.watchdog_recover(&mut eng, h);
            }
        }
        // Background scrub: one outstanding upset corrected per period.
        if self.plan.protect().ecc()
            && eng.cfg.scrub_period > 0
            && self.cycle.is_multiple_of(eng.cfg.scrub_period)
            && !eng.upsets.is_empty()
        {
            let u = eng.upsets.remove(0);
            eng.stats.corrected_scrub = eng.stats.corrected_scrub.saturating_add(1);
            eng.resolve(u.event, FaultOutcome::CorrectedByScrub);
        }
        // Re-force active stuck-at sites, dropping expired ones. The first
        // application that hits live state upgrades the event's outcome.
        if !eng.stuck.is_empty() {
            let mut stuck = std::mem::take(&mut eng.stuck);
            let cycle = self.cycle;
            stuck.retain(|f| f.until > cycle);
            for f in &stuck {
                let outcome = self.apply_inflight_fault(&mut eng, f.site);
                if outcome != FaultOutcome::Masked {
                    upgrade_masked_event(&mut eng, f.event, outcome);
                }
            }
            eng.stuck = stuck;
        }
        // New injection?
        if eng.cfg.rate > 0.0 && eng.rng.gen_f64() < eng.cfg.rate {
            self.inject_fault(&mut eng);
        }
        self.fault = Some(eng);
    }

    /// Inject one fault: pick a kind, pick a site, apply it, log it.
    fn inject_fault(&mut self, eng: &mut FaultEngine) {
        eng.stats.injected = eng.stats.injected.saturating_add(1);
        let cfg = eng.cfg;
        let cycle = self.cycle;
        let r = eng.rng.gen_f64();
        if r < cfg.hang_fraction {
            // Hung stage. At most one at a time (a second upset in already
            // wedged control logic changes nothing).
            let site = FaultSite::Pipeline { stage: eng.rng.gen_index(self.slots.len().max(1)) };
            if eng.hang.is_some() {
                eng.stats.masked = eng.stats.masked.saturating_add(1);
                eng.record(FaultEvent {
                    cycle,
                    site,
                    kind: FaultKind::Hang,
                    outcome: FaultOutcome::Masked,
                });
                return;
            }
            let FaultSite::Pipeline { stage } = site else { return };
            let event = eng.record(FaultEvent {
                cycle,
                site,
                kind: FaultKind::Hang,
                outcome: FaultOutcome::HungUnrecovered,
            });
            eng.hang = Some(Hang { stage, since: cycle, event });
            eng.stats.hangs = eng.stats.hangs.saturating_add(1);
            return;
        }
        if r < cfg.hang_fraction + cfg.stuck_fraction {
            // Stuck-at: a structural in-flight site forced for a while.
            let site = self.random_inflight_site(&mut eng.rng, /*structural_only=*/ true);
            let outcome = self.apply_inflight_fault(eng, site);
            bump_fault_stats(&mut eng.stats, outcome);
            let event = eng.record(FaultEvent { cycle, site, kind: FaultKind::StuckAt, outcome });
            eng.stuck.push(StuckFault { site, until: cycle + cfg.stuck_duration, event });
            return;
        }
        // Transient single-bit flip: map BRAM or in-flight state.
        if eng.rng.gen_f64() < cfg.map_bias {
            let site = self.random_map_site(&mut eng.rng);
            let outcome = match site {
                Some(s) => self.apply_map_fault(eng, s, cycle),
                None => FaultOutcome::Masked,
            };
            bump_fault_stats(&mut eng.stats, outcome);
            // Outstanding upsets record their own event (they need its
            // index); everything else is logged here.
            if outcome != FaultOutcome::Outstanding {
                let site = site.unwrap_or(FaultSite::MapWord { map: 0, slot: 0, byte: 0, bit: 0 });
                eng.record(FaultEvent { cycle, site, kind: FaultKind::Transient, outcome });
            }
            return;
        }
        let site = self.random_inflight_site(&mut eng.rng, /*structural_only=*/ false);
        let outcome = self.apply_inflight_fault(eng, site);
        bump_fault_stats(&mut eng.stats, outcome);
        eng.record(FaultEvent { cycle, site, kind: FaultKind::Transient, outcome });
    }

    /// A random site in the in-flight pipeline state. `structural_only`
    /// restricts to sites that exist independently of queue occupancy
    /// (stuck-at faults outlive any one packet).
    fn random_inflight_site(&self, rng: &mut ehdl_rng::Rng, structural_only: bool) -> FaultSite {
        let nstages = self.slots.len().max(1);
        let stage = rng.gen_index(nstages);
        let choices = if structural_only { 3 } else { 4 };
        match rng.gen_index(choices) {
            0 => FaultSite::StageReg {
                stage,
                reg: rng.gen_index(11) as u8,
                bit: rng.gen_index(64) as u8,
            },
            1 => FaultSite::StageStack {
                stage,
                off: rng.gen_index(STACK_SIZE as usize) as u16,
                bit: rng.gen_index(8) as u8,
            },
            2 => FaultSite::PredBit {
                stage,
                block: rng.gen_index(self.plan.block_count().max(1)) as u16,
            },
            _ => FaultSite::DelayBuffer {
                index: rng.gen_index(self.pending_writes.len().max(1)),
                bit: rng.gen_index(64) as u8,
            },
        }
    }

    /// A random occupied map-BRAM word, or `None` when every map is empty.
    fn random_map_site(&self, rng: &mut ehdl_rng::Rng) -> Option<FaultSite> {
        let nmaps = self.plan.map_count();
        if nmaps == 0 {
            return None;
        }
        let map = rng.gen_index(nmaps) as u32;
        let m = self.maps.get(map)?;
        let live = m.len();
        if live == 0 {
            return None;
        }
        let (slot, _, value) = m.iter().nth(rng.gen_index(live))?;
        if value.is_empty() {
            return None;
        }
        Some(FaultSite::MapWord {
            map,
            slot: slot as u32,
            byte: rng.gen_index(value.len()) as u32,
            bit: rng.gen_index(8) as u8,
        })
    }

    /// Is any packet occupying `stage`?
    fn slot_occupied(&self, stage: usize) -> bool {
        self.slots.get(stage).is_some_and(|s| s.is_some())
    }

    /// Apply a flip to in-flight state. Under parity the corruption is
    /// detected at the stage boundary before anything consumes it: the
    /// window is recovered by replay from its checkpoints and no state is
    /// actually corrupted (replay would restore it regardless). Without
    /// parity the flip lands and the packet's results are untrusted.
    fn apply_inflight_fault(&mut self, eng: &mut FaultEngine, site: FaultSite) -> FaultOutcome {
        let parity = self.plan.protect().parity();
        match site {
            FaultSite::StageReg { stage, reg, bit } => {
                if !self.slot_occupied(stage) {
                    return FaultOutcome::Masked;
                }
                if parity {
                    self.fault_replay_below(stage + 1);
                    return FaultOutcome::DetectedReplay;
                }
                if let Some(pkt) = self.slots[stage].as_mut() {
                    pkt.state.regs[reg as usize % 11] ^= 1u64 << (bit % 64);
                    let seq = pkt.seq;
                    eng.mark_affected(seq);
                }
                FaultOutcome::SilentCorruption
            }
            FaultSite::StageStack { stage, off, bit } => {
                if !self.slot_occupied(stage) {
                    return FaultOutcome::Masked;
                }
                if parity {
                    self.fault_replay_below(stage + 1);
                    return FaultOutcome::DetectedReplay;
                }
                if let Some(pkt) = self.slots[stage].as_mut() {
                    let off = off as usize % STACK_SIZE as usize;
                    pkt.state.stack[off] ^= 1 << (bit % 8);
                    // The flip may dirty a byte below the zero watermark.
                    pkt.state.stack_lo = pkt.state.stack_lo.min(off);
                    let seq = pkt.seq;
                    eng.mark_affected(seq);
                }
                FaultOutcome::SilentCorruption
            }
            FaultSite::PredBit { stage, block } => {
                if !self.slot_occupied(stage) {
                    return FaultOutcome::Masked;
                }
                if parity {
                    self.fault_replay_below(stage + 1);
                    return FaultOutcome::DetectedReplay;
                }
                if let Some(pkt) = self.slots[stage].as_mut() {
                    let b = block as usize % MAX_BLOCKS;
                    let cur = pkt.state.taken.get(b).unwrap_or(false);
                    pkt.state.taken.set(b, !cur);
                    let seq = pkt.seq;
                    eng.mark_affected(seq);
                }
                FaultOutcome::SilentCorruption
            }
            FaultSite::DelayBuffer { index, bit } => {
                if index >= self.pending_writes.len() {
                    return FaultOutcome::Masked;
                }
                if parity {
                    // Delay-buffer entries carry check bits in hardened
                    // designs (the FEB snoop path already holds a shadow
                    // copy): repaired in place, no replay needed.
                    return FaultOutcome::CorrectedEcc;
                }
                let seq = self.pending_writes[index].seq;
                match &mut self.pending_writes[index].kind {
                    WriteKind::Update { value, .. } => {
                        let len = value.len();
                        if let Some(b) = value.get_mut((bit as usize / 8) % len.max(1)) {
                            *b ^= 1 << (bit % 8);
                        }
                    }
                    WriteKind::Delete { key } => {
                        let len = key.len();
                        if let Some(b) = key.get_mut((bit as usize / 8) % len.max(1)) {
                            *b ^= 1 << (bit % 8);
                        }
                    }
                    WriteKind::StoreValue { value, .. } => {
                        *value ^= 1u64 << (bit % 64);
                    }
                }
                // A corrupted buffered write lands in the map eventually:
                // global state is no longer trustworthy.
                eng.mark_affected(seq);
                eng.map_corrupted = true;
                FaultOutcome::SilentCorruption
            }
            FaultSite::MapWord { .. } | FaultSite::Pipeline { .. } => FaultOutcome::Masked,
        }
    }

    /// Apply a flip to a map BRAM word. Under ECC a first upset is held
    /// outstanding (SECDED corrects it on every read until a scrub or a
    /// logged read resolves it); a second upset on the same word before
    /// correction is detected but uncorrectable. Without ECC the flip
    /// silently corrupts storage.
    fn apply_map_fault(
        &mut self,
        eng: &mut FaultEngine,
        site: FaultSite,
        cycle: u64,
    ) -> FaultOutcome {
        let FaultSite::MapWord { map, slot, byte, bit } = site else {
            return FaultOutcome::Masked;
        };
        if self.plan.protect().ecc() {
            let word = byte / 8;
            if let Some(pos) =
                eng.upsets.iter().position(|u| u.map == map && u.slot == slot && u.word == word)
            {
                let u = eng.upsets.swap_remove(pos);
                eng.resolve(u.event, FaultOutcome::Uncorrectable);
                self.corrupt_map_word(map, slot, byte, bit);
                eng.map_corrupted = true;
                return FaultOutcome::Uncorrectable;
            }
            let event = eng.record(FaultEvent {
                cycle,
                site,
                kind: FaultKind::Transient,
                outcome: FaultOutcome::Outstanding,
            });
            eng.upsets.push(MapUpset { map, slot, word, event });
            return FaultOutcome::Outstanding;
        }
        self.corrupt_map_word(map, slot, byte, bit);
        eng.map_corrupted = true;
        FaultOutcome::SilentCorruption
    }

    /// Flip one stored bit (the slot was picked live this same call).
    fn corrupt_map_word(&mut self, map: u32, slot: u32, byte: u32, bit: u8) {
        if let Some(m) = self.maps.get_mut(map) {
            if let Some(b) = m.value_mut(slot as usize).get_mut(byte as usize) {
                *b ^= 1 << (bit % 8);
            }
        }
    }

    /// ECC correct-on-read bookkeeping: a lookup touching `(map, slot)`
    /// runs the word through the SECDED decoder, clearing any outstanding
    /// upsets there. Called from the map read paths when an engine is
    /// attached.
    fn fault_map_read(&mut self, map: u32, slot: u32) {
        let Some(eng) = self.fault.as_mut() else { return };
        let mut i = 0;
        while i < eng.upsets.len() {
            if eng.upsets[i].map == map && eng.upsets[i].slot == slot {
                let u = eng.upsets.swap_remove(i);
                eng.stats.corrected_read = eng.stats.corrected_read.saturating_add(1);
                eng.resolve(u.event, FaultOutcome::CorrectedOnRead);
            } else {
                i += 1;
            }
        }
    }

    /// Recovery-by-replay: evict every slot below `boundary` plus the
    /// queued replay stream, and replay all of them from their latest
    /// checkpoints — the same machinery a hazard flush uses, but counted
    /// in `fault_replays` so campaigns can separate protection cost from
    /// hazard cost. Committed side effects are never replayed (App. A.2).
    fn fault_replay_below(&mut self, boundary: usize) {
        let mut replay = Vec::new();
        for s in (0..boundary.min(self.slots.len())).rev() {
            if let Some(pkt) = self.slots[s].take() {
                replay.push(pkt);
            }
        }
        replay.extend(self.replay.drain(..));
        self.replay_hold.clear();
        if replay.is_empty() {
            return;
        }
        replay.sort_by_key(|p| p.seq);
        self.counters.fault_replays =
            self.counters.fault_replays.saturating_add(replay.len() as u64);
        if self.debug_trace {
            eprintln!("[sim {}] fault replay boundary={boundary} n={}", self.cycle, replay.len());
        }
        for mut pkt in replay.into_iter().rev() {
            pkt.reset_for_replay(usize::MAX, &mut self.pool);
            // A replayed packet resuming at stage `r` will skip every
            // stage below it — including, crucially, any map write it
            // already committed. Read records whose FEB window closes
            // below `r` are therefore confirmed forever (the packet
            // physically passed the write stage without a flush); keeping
            // them would let a later FEB roll the packet below its own
            // committed side effect and double-commit it.
            if let Some(r) = pkt.resume.as_ref().map(|(s, _)| *s) {
                let feb_write_max = &self.feb_write_max;
                let confirmed = |m: u32| {
                    feb_write_max.get(m as usize).copied().flatten().is_some_and(|w| w < r)
                };
                // The stale `state` is consulted by hazard pull-back checks
                // until the resume swap, so it needs the same treatment.
                pkt.state.map_reads.retain(|&(m, _, _)| !confirmed(m));
                if let Some((_, snap)) = pkt.resume.as_mut() {
                    snap.map_reads.retain(|&(m, _, _)| !confirmed(m));
                }
                // ... as are surviving checkpoints, should a later hazard
                // rollback resume from one of them.
                for (_, snap) in pkt.checkpoints.iter_mut() {
                    snap.map_reads.retain(|&(m, _, _)| !confirmed(m));
                }
            }
            self.counters.injected = self.counters.injected.saturating_sub(1);
            self.rx.push_front(pkt);
        }
        self.stall = self.stall.max(FLUSH_RELOAD_CYCLES);
        self.inject_busy = 0;
    }

    /// Watchdog timeout: drop the wedged packet, replay every innocent
    /// in-flight packet from its checkpoints, and reinitialize the
    /// pipeline control — maps are preserved.
    fn watchdog_recover(&mut self, eng: &mut FaultEngine, h: Hang) {
        eng.hang = None;
        eng.resolve(h.event, FaultOutcome::HungRecovered);
        eng.stats.watchdog_recoveries = eng.stats.watchdog_recoveries.saturating_add(1);
        self.counters.watchdog_resets = self.counters.watchdog_resets.saturating_add(1);
        if self.debug_trace {
            eprintln!("[sim {}] watchdog reset stage={}", self.cycle, h.stage);
        }
        if let Some(pkt) = self.slots.get_mut(h.stage).and_then(|s| s.take()) {
            eng.mark_affected(pkt.seq);
            self.counters.pkts_lost_to_faults = self.counters.pkts_lost_to_faults.saturating_add(1);
            self.complete_as_fault_drop(pkt);
        }
        self.fault_replay_below(self.slots.len());
        self.stall = self.stall.max(FLUSH_RELOAD_CYCLES);
    }

    /// Retire a packet the watchdog gave up on, with a forced drop verdict.
    fn complete_as_fault_drop(&mut self, mut pkt: Box<InFlight>) {
        pkt.state.faulted = false;
        pkt.state.action = Some(XdpAction::Drop);
        self.complete(pkt);
    }
}

/// Tally one resolved fault event.
fn bump_fault_stats(stats: &mut crate::fault::FaultStats, outcome: FaultOutcome) {
    match outcome {
        FaultOutcome::Masked => stats.masked = stats.masked.saturating_add(1),
        FaultOutcome::SilentCorruption => stats.silent = stats.silent.saturating_add(1),
        FaultOutcome::DetectedReplay => {
            stats.detected_replays = stats.detected_replays.saturating_add(1)
        }
        FaultOutcome::CorrectedOnRead => {
            stats.corrected_read = stats.corrected_read.saturating_add(1)
        }
        FaultOutcome::CorrectedByScrub => {
            stats.corrected_scrub = stats.corrected_scrub.saturating_add(1)
        }
        FaultOutcome::CorrectedEcc => stats.corrected_ecc = stats.corrected_ecc.saturating_add(1),
        FaultOutcome::Uncorrectable => stats.uncorrectable = stats.uncorrectable.saturating_add(1),
        FaultOutcome::HungRecovered => {
            stats.watchdog_recoveries = stats.watchdog_recoveries.saturating_add(1)
        }
        FaultOutcome::HungUnrecovered | FaultOutcome::Outstanding => {}
    }
}

/// A stuck-at site's first effective application upgrades its provisional
/// `Masked` log entry (and the tallies) to the real outcome.
fn upgrade_masked_event(eng: &mut FaultEngine, event: usize, outcome: FaultOutcome) {
    let was_masked = eng.log.get(event).is_some_and(|e| e.outcome == FaultOutcome::Masked);
    if was_masked {
        eng.stats.masked = eng.stats.masked.saturating_sub(1);
        bump_fault_stats(&mut eng.stats, outcome);
        eng.resolve(event, outcome);
    }
}

fn atomic_new_value(aop: AtomicOp, old: u64, operand_v: u64, expected: u64) -> u64 {
    match aop {
        AtomicOp::Add { .. } => old.wrapping_add(operand_v),
        AtomicOp::Or { .. } => old | operand_v,
        AtomicOp::And { .. } => old & operand_v,
        AtomicOp::Xor { .. } => old ^ operand_v,
        AtomicOp::Xchg => operand_v,
        AtomicOp::Cmpxchg => {
            if old == expected {
                operand_v
            } else {
                old
            }
        }
    }
}

/// Earliest stage at which `state` holds an unconfirmed read of `key` on
/// `map`, or `usize::MAX` when it holds none (the packet is innocent).
fn matching_read_limit(state: &PacketState, map: u32, key: &[u8]) -> usize {
    state
        .map_reads
        .iter()
        .filter(|&&(m, _, ref k)| m == map && k == key)
        .map(|&(_, s, _)| s as usize)
        .min()
        .unwrap_or(usize::MAX)
}

fn operand(regs: &[u64; 11], op: Operand) -> u64 {
    match op {
        Operand::Reg(r) => regs[r as usize],
        Operand::Imm(i) => i as i64 as u64,
    }
}

fn map_handle(v: u64) -> Option<u32> {
    (MAP_HANDLE_BASE..MAP_HANDLE_BASE + 0x1000).contains(&v).then(|| (v - MAP_HANDLE_BASE) as u32)
}

/// The [`PacketState::read_filter`] bit of one `(map, key)` pair: FNV-1a
/// over the map id and key bytes, folded to a 64-way partition.
#[inline]
fn read_key_bit(map: u32, key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(map);
    for &b in key {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    1u64 << (h & 63)
}

impl PacketState {
    /// Reinitialize in place to injection-fresh state for `orig`,
    /// keeping every allocation (read keys go back to the pool).
    fn reset(&mut self, orig: &[u8], words: usize, keys: &mut Vec<Vec<u8>>) {
        self.buf.clear();
        self.buf.resize(XDP_HEADROOM + orig.len(), 0);
        self.buf[XDP_HEADROOM..].copy_from_slice(orig);
        self.data_off = XDP_HEADROOM;
        self.end_off = self.buf.len();
        self.buf_lo = XDP_HEADROOM;
        self.regs = [0; 11];
        self.regs[1] = CTX_BASE;
        self.regs[10] = STACK_TOP;
        // Only [stack_lo..] can be dirty; re-zero it and the watermark.
        self.stack[self.stack_lo..].fill(0);
        self.stack_lo = STACK_SIZE as usize;
        self.enabled.clear_words(words);
        self.taken.clear_words(words);
        self.action = None;
        self.redirect = None;
        self.faulted = false;
        self.read_filter = 0;
        for (_, _, mut k) in self.map_reads.drain(..) {
            if keys.len() < StatePool::KEY_CAP {
                k.clear();
                keys.push(k);
            }
        }
    }

    /// Field-wise `clone_from` that reuses this state's buffers (the
    /// derived `Clone::clone_from` would allocate fresh `Vec`s) and skips
    /// the clean regions below the dirty watermarks: bytes under
    /// `buf_lo` / `stack_lo` are zero on both sides by invariant, so a
    /// snapshot copies the packet tail and the touched stack bytes, not
    /// the whole 512-byte frame and headroom.
    fn assign_from(&mut self, src: &PacketState, words: usize, keys: &mut Vec<Vec<u8>>) {
        let n = src.buf.len();
        if self.buf.len() != n {
            self.buf.clear();
            self.buf.resize(n, 0);
            self.buf_lo = 0; // everything in dst is (zero-)clean now
        }
        let lo = src.buf_lo.min(n);
        let zero_from = self.buf_lo.min(lo);
        self.buf[zero_from..lo].fill(0);
        self.buf[lo..].copy_from_slice(&src.buf[lo..]);
        self.buf_lo = src.buf_lo;
        self.data_off = src.data_off;
        self.end_off = src.end_off;
        self.regs = src.regs;
        let slo = src.stack_lo;
        self.stack[self.stack_lo.min(slo)..slo].fill(0);
        self.stack[slo..].copy_from_slice(&src.stack[slo..]);
        self.stack_lo = slo;
        self.enabled.assign_words(&src.enabled, words);
        self.taken.assign_words(&src.taken, words);
        self.action = src.action;
        self.redirect = src.redirect;
        self.faulted = src.faulted;
        self.read_filter = src.read_filter;
        while self.map_reads.len() > src.map_reads.len() {
            let (_, _, mut k) = self.map_reads.pop().expect("len checked non-zero");
            if keys.len() < StatePool::KEY_CAP {
                k.clear();
                keys.push(k);
            }
        }
        let have = self.map_reads.len();
        for (dst, s) in self.map_reads.iter_mut().zip(&src.map_reads) {
            dst.0 = s.0;
            dst.1 = s.1;
            dst.2.clone_from(&s.2);
        }
        for s in &src.map_reads[have..] {
            let mut k = keys.pop().unwrap_or_default();
            k.clear();
            k.extend_from_slice(&s.2);
            self.map_reads.push((s.0, s.1, k));
        }
    }
}

impl InFlight {
    /// Prepare for re-execution after a flush: resume from the latest
    /// checkpoint whose stage does not exceed `limit` (stale readers pass
    /// their hazard's read stage; innocents pass `usize::MAX`).
    fn reset_for_replay(&mut self, limit: usize, pool: &mut StatePool) {
        while self.checkpoints.last().is_some_and(|(s, _)| *s > limit) {
            let (_, b) = self.checkpoints.pop().expect("non-empty: last() was Some");
            pool.recycle(b);
        }
        if let Some((_, b)) = self.resume.take() {
            pool.recycle(b);
        }
        if let Some((stage, snap)) = self.checkpoints.last() {
            self.resume = Some((*stage, pool.snapshot(snap)));
            // State fields are don't-care until the resume point.
            return;
        }
        let words = pool.words;
        self.state.reset(&self.orig, words, &mut pool.keys);
    }
}

/// Pending writes of one stage, applied at the boundary (two-phase).
#[derive(Debug, Clone, Default)]
struct Delta {
    regs: Vec<(u8, u64)>,
    pkt_writes: Vec<(usize, MemSize, u64)>,
    stack_writes: Vec<(usize, MemSize, u64)>,
    taken: Option<bool>,
    action: Option<XdpAction>,
    redirect: Option<u32>,
    new_data_off: Option<usize>,
    new_end_off: Option<usize>,
    map_read_records: Vec<(u32, u32, Vec<u8>)>,
    side_effect: bool,
    flush_below: Option<(u32, Vec<u8>, usize)>,
    fault: bool,
}

impl Delta {
    fn set_reg(&mut self, r: u8, v: u64) {
        self.regs.push((r, v));
    }

    fn record_read(&mut self, map: u32, stage: u32, key: Vec<u8>) {
        self.map_read_records.push((map, stage, key));
    }

    /// Reset to the empty write set, keeping buffer capacity.
    fn clear(&mut self) {
        self.regs.clear();
        self.pkt_writes.clear();
        self.stack_writes.clear();
        self.taken = None;
        self.action = None;
        self.redirect = None;
        self.new_data_off = None;
        self.new_end_off = None;
        self.map_read_records.clear();
        self.side_effect = false;
        self.flush_below = None;
        self.fault = false;
    }

    fn apply(&mut self, state: &mut PacketState, block: usize) {
        for &(r, v) in &self.regs {
            state.regs[r as usize] = v;
        }
        for &(off, size, v) in &self.pkt_writes {
            let n = size.bytes();
            state.buf[off..off + n].copy_from_slice(&v.to_le_bytes()[..n]);
        }
        for &(off, size, v) in &self.stack_writes {
            let n = size.bytes();
            state.stack[off..off + n].copy_from_slice(&v.to_le_bytes()[..n]);
            state.stack_lo = state.stack_lo.min(off);
        }
        if let Some(t) = self.taken {
            state.taken.set(block, t);
        }
        if self.action.is_some() {
            state.action = self.action;
        }
        if self.redirect.is_some() {
            state.redirect = self.redirect;
        }
        if let Some(off) = self.new_data_off {
            state.data_off = off;
            state.buf_lo = state.buf_lo.min(off);
        }
        if let Some(off) = self.new_end_off {
            state.end_off = off;
        }
        for (m, stage, key) in self.map_read_records.drain(..) {
            state.read_filter |= read_key_bit(m, &key);
            state.map_reads.push((m, stage, key));
        }
        if self.fault {
            state.faulted = true;
        }
    }
}

enum StageResult {
    Ok,
    /// Flush all stages strictly below `boundary`, repairing stale reads
    /// of `key` on `map` performed at `read_stage`.
    FlushBelow {
        /// First stage that is *not* flushed.
        boundary: usize,
        /// Stage of the protected read (checkpoint rollback limit).
        read_stage: usize,
        /// Hazard map.
        map: u32,
        /// Hazard key.
        key: Vec<u8>,
    },
    /// Flush this packet's stage and everything younger.
    FlushSelf,
}

/// Why an operation could not complete normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpAbort {
    /// Access outside valid bounds: the hardware drops the packet.
    Fault,
    /// The packet read a location with an uncommitted older write: it must
    /// re-execute (RAW protection).
    FlushSelf,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_core::Compiler;
    use ehdl_ebpf::asm::Asm;
    use ehdl_ebpf::Program;

    fn run_one(program: &Program, pkt: Vec<u8>) -> SimOutcome {
        let design = Compiler::new().compile(program).unwrap();
        let mut sim = PipelineSim::new(&design);
        sim.enqueue(pkt);
        sim.settle(100_000);
        sim.drain().remove(0)
    }

    #[test]
    fn trivial_pass() {
        let mut a = Asm::new();
        a.mov64_imm(0, 2);
        a.exit();
        let out = run_one(&Program::from_insns(a.into_insns()), vec![0; 64]);
        assert_eq!(out.action, XdpAction::Pass);
    }

    #[test]
    fn packet_store_visible_in_output() {
        let mut a = Asm::new();
        a.load(MemSize::W, 7, 1, 0);
        a.mov64_imm(2, 0xab);
        a.store_reg(MemSize::B, 7, 3, 2);
        a.mov64_imm(0, 3);
        a.exit();
        let out = run_one(&Program::from_insns(a.into_insns()), vec![0; 64]);
        assert_eq!(out.action, XdpAction::Tx);
        assert_eq!(out.packet[3], 0xab);
    }

    #[test]
    fn latency_tracks_stage_count() {
        let mut a = Asm::new();
        a.mov64_imm(0, 2);
        a.exit();
        let design = Compiler::new().compile(&Program::from_insns(a.into_insns())).unwrap();
        let stages = design.stage_count() as u64;
        let mut sim = PipelineSim::new(&design);
        sim.enqueue(vec![0; 64]);
        sim.settle(10_000);
        let out = sim.drain().remove(0);
        assert_eq!(out.latency_cycles, stages);
    }

    #[test]
    fn pipeline_overlaps_packets() {
        // With n stages and k packets, completion takes about n + k cycles,
        // far less than n * k.
        let mut a = Asm::new();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::B, 2, 7, 0);
        a.alu64_imm(AluOp::Add, 2, 1);
        a.store_reg(MemSize::B, 7, 0, 2);
        a.mov64_imm(0, 3);
        a.exit();
        let design = Compiler::new().compile(&Program::from_insns(a.into_insns())).unwrap();
        let n = design.stage_count() as u64;
        let mut sim = PipelineSim::new(&design);
        for _ in 0..50 {
            sim.enqueue(vec![7; 64]);
        }
        sim.settle(100_000);
        assert_eq!(sim.counters().completed, 50);
        assert!(sim.cycle() < n + 80, "cycles {} vs stages {n}", sim.cycle());
        for out in sim.drain() {
            assert_eq!(out.packet[0], 8);
        }
    }

    #[test]
    fn rx_queue_overflow_counts_drops() {
        let mut a = Asm::new();
        a.mov64_imm(0, 2);
        a.exit();
        let design = Compiler::new().compile(&Program::from_insns(a.into_insns())).unwrap();
        let mut sim = PipelineSim::with_options(
            &design,
            SimOptions { rx_queue_depth: 4, ..Default::default() },
        );
        for _ in 0..10 {
            sim.enqueue(vec![0; 64]);
        }
        assert_eq!(sim.counters().rx_dropped, 6);
    }

    use ehdl_ebpf::opcode::{AluOp, MemSize};
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod utilization_tests {
    use super::*;
    use ehdl_core::Compiler;
    use ehdl_ebpf::asm::Asm;
    use ehdl_ebpf::opcode::{JmpOp, MemSize};
    use ehdl_ebpf::Program;

    #[test]
    fn predicated_stages_report_partial_utilization() {
        // Branch on packet byte 0: half the packets take each arm.
        let mut a = Asm::new();
        let els = a.new_label();
        let join = a.new_label();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::B, 2, 7, 0);
        a.jmp_imm(JmpOp::Jeq, 2, 0, els);
        a.mov64_imm(3, 1);
        a.jmp(join);
        a.bind(els);
        a.mov64_imm(3, 2);
        a.bind(join);
        a.mov64_reg(0, 3);
        a.exit();
        let design = Compiler::new().compile(&Program::from_insns(a.into_insns())).unwrap();
        let mut sim = PipelineSim::new(&design);
        for i in 0..40 {
            let mut p = vec![0u8; 64];
            p[0] = (i % 2) as u8;
            sim.enqueue(p);
        }
        sim.settle(100_000);
        let util = sim.stage_utilization();
        // Entry and join stages fully utilized; each arm about half.
        assert!((util[0] - 1.0).abs() < 1e-9);
        let partial = util.iter().filter(|u| (0.4..0.6).contains(*u)).count();
        assert!(partial >= 2, "both arms run at ~50%: {util:?}");
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod fault_tests {
    use super::*;
    use ehdl_core::{Compiler, CompilerOptions, Protection};
    use ehdl_ebpf::asm::Asm;
    use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
    use ehdl_ebpf::maps::{MapDef, MapKind};
    use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
    use ehdl_ebpf::Program;

    /// Same lookup→increment→update shape as the hazard tests: per-flow
    /// counters make silent corruption and replay mistakes observable.
    fn counter_program() -> Program {
        let mut a = Asm::new();
        let skip = a.new_label();
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::B, 2, 7, 0);
        a.store_reg(MemSize::W, 10, -8, 2);
        a.ld_map_fd(1, 0);
        a.mov64_reg(2, 10);
        a.alu64_imm(AluOp::Add, 2, -8);
        a.call(BPF_MAP_LOOKUP_ELEM);
        a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
        a.load(MemSize::Dw, 6, 0, 0);
        a.bind(skip);
        a.alu64_imm(AluOp::Add, 6, 1);
        a.store_reg(MemSize::Dw, 10, -16, 6);
        a.ld_map_fd(1, 0);
        a.mov64_reg(2, 10);
        a.alu64_imm(AluOp::Add, 2, -8);
        a.mov64_reg(3, 10);
        a.alu64_imm(AluOp::Add, 3, -16);
        a.mov64_imm(4, 0);
        a.call(BPF_MAP_UPDATE_ELEM);
        a.mov64_imm(0, 3);
        a.exit();
        Program::new("ctr", a.into_insns(), vec![MapDef::new(0, "cells", MapKind::Hash, 4, 8, 64)])
    }

    fn design_with(protect: Protection) -> ehdl_core::PipelineDesign {
        let opts = CompilerOptions { protect, ..Default::default() };
        Compiler::with_options(opts).compile(&counter_program()).unwrap()
    }

    fn pkt(flow: u8) -> Vec<u8> {
        let mut p = vec![0u8; 64];
        p[0] = flow;
        p
    }

    fn flow_count(sim: &PipelineSim, flow: u8) -> Option<u64> {
        let m = sim.maps().get(0)?;
        let slot = m.clone().lookup(&[flow, 0, 0, 0]).ok().flatten()?;
        Some(u64::from_le_bytes(m.value(slot).try_into().ok()?))
    }

    #[test]
    fn unprotected_map_flips_corrupt_storage() {
        let mut sim = PipelineSim::new(&design_with(Protection::None));
        sim.attach_faults(FaultConfig {
            seed: 11,
            rate: 0.2,
            map_bias: 1.0,
            stuck_fraction: 0.0,
            hang_fraction: 0.0,
            ..Default::default()
        });
        for i in 0..32u8 {
            sim.enqueue(pkt(i));
        }
        sim.settle(1_000_000);
        let eng = sim.fault_engine().unwrap();
        assert!(eng.stats().silent > 0, "unprotected flips must land: {:?}", eng.stats());
        assert!(eng.map_storage_corrupted());
        assert_eq!(eng.stats().detected_replays, 0);
        assert_eq!(sim.counters().fault_replays, 0);
    }

    #[test]
    fn parity_recovers_inflight_flips_by_replay() {
        let mut sim = PipelineSim::new(&design_with(Protection::Parity));
        sim.attach_faults(FaultConfig {
            seed: 5,
            rate: 0.3,
            map_bias: 0.0,
            stuck_fraction: 0.0,
            hang_fraction: 0.0,
            ..Default::default()
        });
        for _ in 0..30 {
            sim.enqueue(pkt(1));
        }
        sim.settle(1_000_000);
        let stats = *sim.fault_engine().unwrap().stats();
        assert!(stats.detected_replays > 0, "faults must be detected: {stats:?}");
        assert_eq!(stats.silent, 0, "parity leaves nothing silent");
        assert!(sim.counters().fault_replays > 0);
        assert!(sim.fault_engine().unwrap().affected_seqs().is_empty());
        // Recovery preserved exact per-flow counts: nothing diverged.
        assert_eq!(sim.counters().completed, 30);
        assert_eq!(flow_count(&sim, 1), Some(30));
    }

    #[test]
    fn ecc_corrects_or_rules_uncorrectable_every_map_upset() {
        let mut sim = PipelineSim::new(&design_with(Protection::EccWatchdog));
        sim.attach_faults(FaultConfig {
            seed: 23,
            rate: 0.1,
            map_bias: 1.0,
            stuck_fraction: 0.0,
            hang_fraction: 0.0,
            scrub_period: 64,
            ..Default::default()
        });
        for i in 0..32u8 {
            sim.enqueue(pkt(i));
        }
        sim.settle(1_000_000);
        sim.finalize_faults();
        let stats = *sim.fault_engine().unwrap().stats();
        assert_eq!(stats.silent, 0, "ECC leaves nothing silent: {stats:?}");
        assert!(stats.corrected_read + stats.corrected_scrub > 0);
        assert_eq!(
            stats.corrected_read + stats.corrected_scrub + stats.uncorrectable,
            stats.effective(),
            "every effective upset resolves: {stats:?}"
        );
        if stats.uncorrectable == 0 {
            assert!(!sim.fault_engine().unwrap().map_storage_corrupted());
            for i in 0..32u8 {
                assert_eq!(flow_count(&sim, i), Some(1));
            }
        }
    }

    #[test]
    fn watchdog_drains_and_recovers_hung_stage() {
        let mut sim = PipelineSim::new(&design_with(Protection::EccWatchdog));
        sim.attach_faults(FaultConfig {
            seed: 3,
            rate: 1.0,
            map_bias: 0.0,
            stuck_fraction: 0.0,
            hang_fraction: 1.0,
            watchdog_timeout: 64,
            ..Default::default()
        });
        for i in 0..20u8 {
            sim.enqueue(pkt(i));
        }
        sim.settle(1_000_000);
        assert!(sim.counters().watchdog_resets >= 1, "{:?}", sim.counters());
        assert!(sim.availability() < 1.0);
        // Every packet retired: hung ones as forced drops, the rest clean.
        assert_eq!(sim.counters().completed, 20);
        let outs = sim.drain();
        assert_eq!(outs.len(), 20);
        let lost = sim.counters().pkts_lost_to_faults;
        assert_eq!(outs.iter().filter(|o| o.action == XdpAction::Drop).count() as u64, lost);
        let stats = sim.fault_engine().unwrap().stats();
        assert_eq!(stats.watchdog_recoveries, sim.counters().watchdog_resets);
    }

    #[test]
    fn hang_without_watchdog_collapses_availability() {
        let mut sim = PipelineSim::new(&design_with(Protection::None));
        sim.attach_faults(FaultConfig {
            seed: 3,
            rate: 1.0,
            map_bias: 0.0,
            stuck_fraction: 0.0,
            hang_fraction: 1.0,
            ..Default::default()
        });
        for i in 0..8u8 {
            sim.enqueue(pkt(i));
        }
        sim.settle(20_000);
        assert!(sim.availability() < 0.5, "availability {}", sim.availability());
        assert!(sim.counters().completed < 8, "{:?}", sim.counters());
        assert_eq!(sim.counters().watchdog_resets, 0);
    }

    #[test]
    fn campaigns_are_bit_reproducible() {
        let run = || {
            let mut sim = PipelineSim::new(&design_with(Protection::EccWatchdog));
            sim.attach_faults(FaultConfig { seed: 42, rate: 0.05, ..Default::default() });
            for i in 0..24u8 {
                sim.enqueue(pkt(i % 6));
            }
            sim.settle(1_000_000);
            sim.finalize_faults();
            let outs = sim.drain().iter().map(|o| (o.seq, o.action)).collect::<Vec<_>>();
            let eng = sim.fault_engine().unwrap();
            (outs, *sim.counters(), *eng.stats(), eng.log().to_vec(), eng.hung_cycles())
        };
        let a = run();
        let b = run();
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.0, b.0);
        assert_eq!(a.3, b.3);
        assert_eq!(a.4, b.4);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
pub(crate) mod hazard_timing_tests {
    use super::*;
    use ehdl_core::Compiler;
    use ehdl_ebpf::asm::Asm;
    use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
    use ehdl_ebpf::maps::{MapDef, MapKind};
    use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
    use ehdl_ebpf::Program;

    /// A lookup→update program: reads key K, then (always) updates K.
    pub(crate) fn rmw_program() -> Program {
        let mut a = Asm::new();
        let skip = a.new_label();
        a.load(MemSize::W, 7, 1, 0);
        // key = packet byte 0 (the flow id)
        a.load(MemSize::B, 2, 7, 0);
        a.store_reg(MemSize::W, 10, -8, 2);
        a.ld_map_fd(1, 0);
        a.mov64_reg(2, 10);
        a.alu64_imm(AluOp::Add, 2, -8);
        a.call(BPF_MAP_LOOKUP_ELEM);
        a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
        a.load(MemSize::Dw, 6, 0, 0); // read old value
        a.bind(skip);
        // value = old + 1 (or 1 on miss: r6 starts 0)
        a.alu64_imm(AluOp::Add, 6, 1);
        a.store_reg(MemSize::Dw, 10, -16, 6);
        a.ld_map_fd(1, 0);
        a.mov64_reg(2, 10);
        a.alu64_imm(AluOp::Add, 2, -8);
        a.mov64_reg(3, 10);
        a.alu64_imm(AluOp::Add, 3, -16);
        a.mov64_imm(4, 0);
        a.call(BPF_MAP_UPDATE_ELEM);
        a.mov64_imm(0, 3);
        a.exit();
        Program::new("rmw", a.into_insns(), vec![MapDef::new(0, "cells", MapKind::Hash, 4, 8, 64)])
    }

    pub(crate) fn pkt(flow: u8) -> Vec<u8> {
        let mut p = vec![0u8; 64];
        p[0] = flow;
        p
    }

    #[test]
    fn same_flow_inside_window_flushes_and_stays_correct() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let window = design.hazards.max_raw_window().expect("rmw has a FEB") as u64;
        assert!(window >= 2);

        // Back-to-back same-flow packets: the second reads before the
        // first writes → flush; final count must still be exact.
        let mut sim = PipelineSim::new(&design);
        for _ in 0..10 {
            sim.enqueue(pkt(1));
        }
        sim.settle(1_000_000);
        assert!(sim.counters().flushes > 0, "inside-window traffic must flush");
        let m = sim.maps().get(0).unwrap();
        let slot = m.clone().lookup(&[1, 0, 0, 0]).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(m.value(slot).try_into().unwrap()), 10);
    }

    #[test]
    fn same_flow_outside_window_never_flushes() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let window = design.hazards.max_raw_window().unwrap() as u64;

        // Space same-flow packets strictly wider than the hazard window:
        // the earlier packet's update commits before the next read.
        let mut sim = PipelineSim::new(&design);
        for _ in 0..10 {
            sim.enqueue(pkt(1));
            for _ in 0..window + 4 {
                sim.step();
            }
        }
        sim.settle(1_000_000);
        assert_eq!(sim.counters().flushes, 0, "spaced traffic never hazards");
        let m = sim.maps().get(0).unwrap();
        let slot = m.clone().lookup(&[1, 0, 0, 0]).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(m.value(slot).try_into().unwrap()), 10);
    }

    #[test]
    fn distinct_flows_inside_window_never_flush() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        for i in 0..32u8 {
            sim.enqueue(pkt(i)); // all different keys, back to back
        }
        sim.settle(1_000_000);
        assert_eq!(sim.counters().flushes, 0, "FEB matches keys, not the map");
        assert_eq!(sim.counters().completed, 32);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod ctrl_tests {
    use super::hazard_timing_tests::{pkt, rmw_program};
    use super::*;
    use crate::ctrl::{CtrlError, CtrlOptions, HostOp, HostOpResult};
    use ehdl_core::Compiler;
    use ehdl_ebpf::maps::UpdateFlags;

    fn key(flow: u8) -> Vec<u8> {
        vec![flow, 0, 0, 0]
    }

    fn count_of(sim: &PipelineSim, flow: u8) -> u64 {
        let m = sim.maps().get(0).unwrap();
        let slot = m.clone().lookup(&key(flow)).unwrap().unwrap();
        u64::from_le_bytes(m.value(slot).try_into().unwrap())
    }

    #[test]
    fn submit_requires_attached_channel_and_known_map() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        let op = HostOp::Lookup { map: 0, key: key(1) };
        assert_eq!(sim.submit_host_op(op.clone()), Err(CtrlError::NotAttached));
        sim.attach_ctrl(CtrlOptions::default());
        assert_eq!(
            sim.submit_host_op(HostOp::Dump { map: 9 }),
            Err(CtrlError::NoSuchMap { map: 9 })
        );
        assert!(sim.submit_host_op(op).is_ok());
        sim.settle(10_000);
        let c = sim.host_completions();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].result, Ok(HostOpResult::Value(None)));
    }

    #[test]
    fn queue_depth_bounds_outstanding_ops() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        sim.attach_ctrl(CtrlOptions { latency_cycles: 1000, queue_depth: 2 });
        assert!(sim.submit_host_op(HostOp::Dump { map: 0 }).is_ok());
        assert!(sim.submit_host_op(HostOp::Dump { map: 0 }).is_ok());
        assert_eq!(
            sim.submit_host_op(HostOp::Dump { map: 0 }),
            Err(CtrlError::QueueFull { depth: 2 })
        );
        let stats = sim.ctrl_stats().unwrap();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn host_write_respects_barrier_order() {
        // 5 increments of flow 1, then a host write setting it to 100,
        // then 5 more increments. Sequentially: 5 → 100 → 105. The op is
        // submitted while the first packets are still in flight; the
        // fence + reservation machinery must serialize exactly at the
        // barrier.
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        sim.attach_ctrl(CtrlOptions { latency_cycles: 1, queue_depth: 4 });
        for _ in 0..5 {
            sim.enqueue(pkt(1));
        }
        let id = sim
            .submit_host_op(HostOp::Update {
                map: 0,
                key: key(1),
                value: 100u64.to_le_bytes().to_vec(),
                flags: UpdateFlags::Any,
            })
            .unwrap();
        for _ in 0..5 {
            sim.enqueue(pkt(1));
        }
        sim.settle(1_000_000);
        assert_eq!(count_of(&sim, 1), 105);
        let c = sim.host_completions();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].id, id);
        assert_eq!(c[0].result, Ok(HostOpResult::Updated));
        assert_eq!(sim.counters().completed, 10);
        assert_eq!(sim.counters().host_ops, 1);
    }

    #[test]
    fn host_write_inside_raw_window_flushes_young_readers() {
        // With a 1-cycle channel the update lands while younger same-key
        // packets already hold unconfirmed reads of the old value: the
        // write must trigger the FEB flush/replay path, and the replayed
        // packets must observe the host's value.
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        sim.attach_ctrl(CtrlOptions { latency_cycles: 1, queue_depth: 4 });
        for _ in 0..3 {
            sim.enqueue(pkt(1));
        }
        // Let the front packets reach deep stages before submitting.
        for _ in 0..4 {
            sim.step();
        }
        sim.submit_host_op(HostOp::Update {
            map: 0,
            key: key(1),
            value: 1000u64.to_le_bytes().to_vec(),
            flags: UpdateFlags::Any,
        })
        .unwrap();
        for _ in 0..6 {
            sim.enqueue(pkt(1));
        }
        sim.settle(1_000_000);
        let barrier = 3; // three packets had arrived at submission
        let expected = 1000 + (9 - barrier);
        assert_eq!(count_of(&sim, 1), expected);
        let stats = sim.ctrl_stats().unwrap();
        assert!(
            stats.flushes > 0 && stats.flushed_readers > 0,
            "host write must repair in-flight readers: {stats:?}"
        );
        assert_eq!(sim.counters().host_op_flushes, stats.flushes);
    }

    #[test]
    fn host_ops_while_idle_have_pure_latency() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        sim.attach_ctrl(CtrlOptions { latency_cycles: 64, queue_depth: 4 });
        sim.submit_host_op(HostOp::Lookup { map: 0, key: key(7) }).unwrap();
        sim.settle(10_000);
        let stats = sim.ctrl_stats().unwrap();
        assert_eq!(stats.latency_cycles_max, 64);
        assert_eq!(stats.mean_latency_cycles(), 64.0);
        assert_eq!(stats.flushes, 0);
    }

    #[test]
    fn dump_sees_barrier_consistent_snapshot() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        sim.attach_ctrl(CtrlOptions { latency_cycles: 1, queue_depth: 4 });
        for f in 0..4u8 {
            sim.enqueue(pkt(f));
        }
        sim.submit_host_op(HostOp::Dump { map: 0 }).unwrap();
        for f in 4..8u8 {
            sim.enqueue(pkt(f));
        }
        sim.settle(1_000_000);
        let c = sim.host_completions();
        let Ok(HostOpResult::Entries(entries)) = &c[0].result else {
            panic!("dump failed: {:?}", c[0].result);
        };
        // Exactly the four pre-barrier flows, each counted once.
        let mut keys: Vec<u8> = entries.iter().map(|(k, _)| k[0]).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        for (_, v) in entries {
            assert_eq!(u64::from_le_bytes(v.as_slice().try_into().unwrap()), 1);
        }
    }

    #[test]
    fn per_map_telemetry_counts_lookups_and_hits() {
        let program = rmw_program();
        let design = Compiler::new().compile(&program).unwrap();
        let mut sim = PipelineSim::new(&design);
        for _ in 0..4 {
            sim.enqueue(pkt(9));
        }
        sim.settle(1_000_000);
        assert!(sim.map_lookups()[0] >= 4, "lookups {:?}", sim.map_lookups());
        // First access misses, later ones hit (replays may add more).
        assert!(sim.map_hits()[0] >= 3, "hits {:?}", sim.map_hits());
        assert!(sim.map_hits()[0] < sim.map_lookups()[0]);
        assert!(sim.stage_occupancy().iter().any(|&c| c > 0));
    }
}
