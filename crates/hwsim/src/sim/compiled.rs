//! The compiled stage-execution engine.
//!
//! At attach time [`LoweredPlan::try_lower`] monomorphizes every
//! [`ehdl_core::StageOp`] into a [`FusedOp`] with its plan constants baked
//! in (immediates pre-extended, map handles resolved, key/value geometry,
//! WAR delays and FEB schedules inlined, block guards flattened). This
//! module executes those ops.
//!
//! Stages come in two flavors:
//!
//! - **Direct** stages mutate the packet state in place, op by op — no
//!   scratch write set, no per-stage `Delta` push/apply/clear, no plan
//!   indirection. The lowerer only marks a stage direct when it proved no
//!   op observes an earlier op's write within the stage, which makes
//!   in-place execution bit-identical to the interpreter's two-phase
//!   semantics by construction.
//! - **Delta** stages run through [`PipelineSim::exec_stage_two_phase`] —
//!   literally the interpreter's op loop — so anything the lowerer could
//!   not prove safe (intra-stage dependences, geometry-moving helpers,
//!   ops without a specialization) stays on the reference path.
//!
//! Every specialized op re-validates the compile-time memory label with a
//! cheap range guard; a guard miss falls back to the interpreter's generic
//! per-op path ([`PipelineSim::exec_op_cold`]) at the same op index, which
//! the 1:1 `FusedOp`↔`StageOp` correspondence makes exact. The one
//! deliberate elision is the packet bounds compare for accesses the
//! abstract interpreter proved in range (`proven`), per the §4.4 hardware
//! semantics of dropping the check entirely.

use super::*;
use ehdl_core::{FusedOp, RegOrImm};
use ehdl_ebpf::vm::{MAP_VALUE_BASE, MAP_WINDOW_BITS};

/// Direct-stage control outputs accumulated across ops (the fields of
/// `Delta` that are not packet state).
struct DirectCtl {
    side_effect: bool,
    flush: Option<(u32, Vec<u8>, usize)>,
}

/// Decode `addr` as a value address of the *baked* map, mirroring
/// [`decode_map_value_addr`] specialized to one `(map, stride)` pair:
/// `Some((slot, offset))` only when the address lands in that map's
/// window, so a label mismatch routes to the interpreter path instead.
#[inline]
fn map_slot_of(addr: u64, map: u32, stride: u32) -> Option<(usize, usize)> {
    if !(MAP_VALUE_BASE..MAP_HANDLE_BASE).contains(&addr) {
        return None;
    }
    let rel = addr - MAP_VALUE_BASE;
    if (rel >> MAP_WINDOW_BITS) as u32 != map {
        return None;
    }
    let within = (rel & ((1 << MAP_WINDOW_BITS) - 1)) as usize;
    let stride = stride as usize;
    Some((within / stride, within % stride))
}

/// The helper-call epilogue: `r0` takes the result, `r1`–`r5` are
/// clobbered (caller-saved), exactly as the interpreter's delta commit.
#[inline]
fn helper_epilogue(state: &mut PacketState, r0: u64) {
    state.regs[0] = r0;
    state.regs[1] = 0;
    state.regs[2] = 0;
    state.regs[3] = 0;
    state.regs[4] = 0;
    state.regs[5] = 0;
}

impl PipelineSim {
    /// Compiled twin of [`PipelineSim::exec_stage`]: same prologue
    /// (resume fast path, empty-stage forward, predication, implicit
    /// length guard — all against baked constants), then either the
    /// in-place direct loop or the shared two-phase body.
    pub(super) fn exec_stage_compiled(
        &mut self,
        s: usize,
        pkt: &mut InFlight,
        lp: &LoweredPlan,
        plan: &ExecPlan,
    ) -> StageResult {
        // Flush-replay fast path: skip until the checkpointed stage.
        if let Some((resume_stage, _)) = pkt.resume {
            if s < resume_stage {
                return StageResult::Ok;
            }
            let (_, mut snap) = pkt.resume.take().expect("resume checked above");
            std::mem::swap(&mut pkt.state, &mut *snap);
            self.pool.recycle(snap);
        }

        let st = *lp.stage(s);
        let ops = lp.stage_fused(s);
        if ops.is_empty() {
            // Frame-wait / helper-latency stages forward state.
            return StageResult::Ok;
        }
        let block = st.block as usize;
        if pkt.state.faulted || !self.block_enabled(&mut pkt.state, block) {
            self.stage_disabled[s] = self.stage_disabled[s].saturating_add(1);
            return StageResult::Ok;
        }
        self.stage_enabled[s] = self.stage_enabled[s].saturating_add(1);
        let pkt_len = (pkt.state.end_off - pkt.state.data_off) as i64;
        if pkt_len < st.guard_min_len {
            pkt.state.faulted = true;
            return StageResult::Ok;
        }

        if st.delta {
            return self.exec_stage_two_phase(s, block, pkt, plan);
        }

        // Direct mode: ops commit into the packet state as they execute.
        let seq = pkt.seq;
        let mut ctl = DirectCtl { side_effect: false, flush: None };
        let mut fault = false;
        for (i, &op) in ops.iter().enumerate() {
            match self.exec_fused(s, i, block, op, seq, &mut pkt.state, &mut ctl, plan) {
                Ok(()) => {}
                Err(OpAbort::Fault) => {
                    fault = true;
                    break;
                }
                // Only reachable from op index 0 (the lowerer demotes any
                // later flush-capable op to delta mode), so there are no
                // earlier in-place writes to unwind.
                Err(OpAbort::FlushSelf) => return StageResult::FlushSelf,
            }
        }
        if fault {
            pkt.state.faulted = true;
        }
        let result = match ctl.flush.take() {
            Some((map, key, read_stage)) => {
                StageResult::FlushBelow { boundary: s, read_stage, map, key }
            }
            None => StageResult::Ok,
        };
        if ctl.side_effect {
            let snap = self.pool.snapshot(&pkt.state);
            pkt.checkpoints.push((s + 1, snap));
        }
        result
    }

    /// Execute one fused op in place. `Err` aborts the stage with the
    /// interpreter's exact semantics: `Fault` keeps earlier writes and
    /// poisons the packet, `FlushSelf` re-executes it from a checkpoint.
    ///
    /// Always inlined into the direct-stage loop: the ALU/memory arms
    /// below compile to a few instructions each, and keeping them in the
    /// loop body spares a 9-argument call per op. The map/helper arms are
    /// out-of-line methods so they don't bloat the dispatch table.
    #[inline(always)]
    #[allow(clippy::too_many_arguments, clippy::too_many_lines, clippy::inline_always)]
    fn exec_fused(
        &mut self,
        s: usize,
        i: usize,
        block: usize,
        op: FusedOp,
        seq: u64,
        state: &mut PacketState,
        ctl: &mut DirectCtl,
        plan: &ExecPlan,
    ) -> Result<(), OpAbort> {
        match op {
            FusedOp::AluRR { op, width, dst, src } => {
                let r = &mut state.regs;
                r[dst as usize] = alu_eval(op, width, r[dst as usize], r[src as usize]);
            }
            FusedOp::AluRI { op, width, dst, imm } => {
                let r = &mut state.regs;
                r[dst as usize] = alu_eval(op, width, r[dst as usize], imm);
            }
            FusedOp::Alu3RR { op, width, dst, a, b } => {
                let r = &mut state.regs;
                r[dst as usize] = alu_eval(op, width, r[a as usize], r[b as usize]);
            }
            FusedOp::Alu3RI { op, width, dst, a, imm } => {
                let r = &mut state.regs;
                r[dst as usize] = alu_eval(op, width, r[a as usize], imm);
            }
            FusedOp::MovImm { dst, imm } => state.regs[dst as usize] = imm,
            FusedOp::Endian { dst, bits, to_be } => {
                let r = &mut state.regs;
                r[dst as usize] = endian_eval(r[dst as usize], bits, to_be);
            }
            FusedOp::JmpAlways => state.taken.set(block, true),
            FusedOp::JmpRR { op, width, lhs, rhs } => {
                let t = cond_eval(op, width, state.regs[lhs as usize], state.regs[rhs as usize]);
                state.taken.set(block, t);
            }
            FusedOp::JmpRI { op, width, lhs, imm } => {
                let t = cond_eval(op, width, state.regs[lhs as usize], imm);
                state.taken.set(block, t);
            }
            FusedOp::Exit => state.action = Some(XdpAction::from_r0(state.regs[0])),
            FusedOp::LdCtx { size, dst, src, off } => {
                let addr = state.regs[src as usize].wrapping_add(off as i64 as u64);
                if (CTX_BASE..CTX_BASE + xdp_md::SIZE as u64).contains(&addr) {
                    let v = match (addr - CTX_BASE) as i64 {
                        xdp_md::DATA | xdp_md::DATA_META => PACKET_BASE + state.data_off as u64,
                        xdp_md::DATA_END => PACKET_BASE + state.end_off as u64,
                        _ => 0,
                    };
                    state.regs[dst as usize] = v & mask_for(size);
                } else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
            }
            FusedOp::LdStk { size, dst, src, off } => {
                let addr = state.regs[src as usize].wrapping_add(off as i64 as u64);
                if (STACK_BASE..STACK_TOP).contains(&addr) {
                    let o = (addr - STACK_BASE) as usize;
                    let n = size.bytes();
                    let Some(bytes) = state.stack.get(o..o + n) else {
                        return Err(OpAbort::Fault);
                    };
                    let mut v = [0u8; 8];
                    v[..n].copy_from_slice(bytes);
                    state.regs[dst as usize] = u64::from_le_bytes(v);
                } else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
            }
            FusedOp::LdPkt { size, dst, src, off, proven } => {
                let addr = state.regs[src as usize].wrapping_add(off as i64 as u64);
                if (PACKET_BASE..STACK_BASE).contains(&addr) {
                    let o = (addr - PACKET_BASE) as usize;
                    let n = size.bytes();
                    // The §4.4 elision: a proof from the abstract
                    // interpreter stands in for the dynamic bounds compare.
                    if !(proven || o >= state.data_off && o + n <= state.end_off) {
                        return Err(OpAbort::Fault);
                    }
                    let Some(bytes) = state.buf.get(o..o + n) else {
                        return Err(OpAbort::Fault);
                    };
                    let mut v = [0u8; 8];
                    v[..n].copy_from_slice(bytes);
                    state.regs[dst as usize] = u64::from_le_bytes(v);
                } else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
            }
            FusedOp::StStk { size, base, off, src } => {
                let addr = state.regs[base as usize].wrapping_add(off as i64 as u64);
                if (STACK_BASE..STACK_TOP).contains(&addr) {
                    let o = (addr - STACK_BASE) as usize;
                    let n = size.bytes();
                    let value = reg_or_imm_value(state, src);
                    let Some(bytes) = state.stack.get_mut(o..o + n) else {
                        return Err(OpAbort::Fault);
                    };
                    bytes.copy_from_slice(&value.to_le_bytes()[..n]);
                    state.stack_lo = state.stack_lo.min(o);
                } else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
            }
            FusedOp::StPkt { size, base, off, src, proven } => {
                let addr = state.regs[base as usize].wrapping_add(off as i64 as u64);
                if (PACKET_BASE..STACK_BASE).contains(&addr) {
                    let o = (addr - PACKET_BASE) as usize;
                    let n = size.bytes();
                    if !(proven || o >= state.data_off && o + n <= state.end_off) {
                        return Err(OpAbort::Fault);
                    }
                    let value = reg_or_imm_value(state, src);
                    let Some(bytes) = state.buf.get_mut(o..o + n) else {
                        return Err(OpAbort::Fault);
                    };
                    bytes.copy_from_slice(&value.to_le_bytes()[..n]);
                } else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
            }
            FusedOp::LdMap { .. }
            | FusedOp::StMap { .. }
            | FusedOp::AtomicMap { .. }
            | FusedOp::Lookup { .. }
            | FusedOp::MapUpdate { .. }
            | FusedOp::MapDelete { .. } => {
                return self.exec_fused_map(s, i, block, op, seq, state, ctl, plan);
            }
            FusedOp::Ktime => {
                let v = self.time_ns();
                helper_epilogue(state, v);
            }
            FusedOp::Prandom => {
                let v = self.prandom();
                helper_epilogue(state, v);
            }
            FusedOp::SmpId => helper_epilogue(state, 0),
            FusedOp::Redirect => {
                state.redirect = Some(state.regs[1] as u32);
                helper_epilogue(state, XdpAction::Redirect.code());
            }
            // Never lowered into a direct stage (any Interp op demotes the
            // stage to delta mode), but route it correctly regardless.
            FusedOp::Interp => {
                return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
            }
        }
        Ok(())
    }

    /// The map-op arms of [`PipelineSim::exec_fused`], out of line: each
    /// body is tens of instructions of shared-state machinery (hazard
    /// interlocks, delay buffers, hash lookups), so keeping them off the
    /// inlined dispatch path keeps the hot ALU/memory loop tight.
    #[inline(never)]
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn exec_fused_map(
        &mut self,
        s: usize,
        i: usize,
        block: usize,
        op: FusedOp,
        seq: u64,
        state: &mut PacketState,
        ctl: &mut DirectCtl,
        plan: &ExecPlan,
    ) -> Result<(), OpAbort> {
        match op {
            FusedOp::LdMap { size, dst, src, off, map, stride, value_size } => {
                let addr = state.regs[src as usize].wrapping_add(off as i64 as u64);
                let Some((slot, o)) = map_slot_of(addr, map, stride) else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                };
                self.forward_own_writes(map, seq);
                if self.fault.is_some() {
                    self.fault_map_read(map, slot as u32);
                }
                let n = size.bytes();
                let m = self.maps.get(map).ok_or(OpAbort::Fault)?;
                // Interpreter read order: bounds fault before stale risk.
                if o + n > value_size as usize {
                    return Err(OpAbort::Fault);
                }
                if self.stale_risk(map, seq, m.key_of(slot)) {
                    return Err(OpAbort::FlushSelf);
                }
                let mut v = [0u8; 8];
                v[..n].copy_from_slice(&m.value(slot)[o..o + n]);
                state.regs[dst as usize] = u64::from_le_bytes(v);
            }
            FusedOp::StMap {
                size,
                base,
                off,
                src,
                map,
                stride,
                value_size,
                delay,
                feb_read_stage,
            } => {
                let addr = state.regs[base as usize].wrapping_add(off as i64 as u64);
                let Some((slot, o)) = map_slot_of(addr, map, stride) else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                };
                let n = size.bytes();
                let value = reg_or_imm_value(state, src);
                let m = self.maps.get(map).ok_or(OpAbort::Fault)?;
                if o + n > value_size as usize {
                    return Err(OpAbort::Fault);
                }
                // Only a fired hazard needs an owned copy of the key.
                let flush_key = self
                    .younger_read_matches(s, map, m.key_of(slot))
                    .then(|| m.key_of(slot).to_vec());
                let w = PendingWrite {
                    commit_cycle: self.cycle + u64::from(delay),
                    map,
                    seq,
                    kind: WriteKind::StoreValue { slot, off: o, size, value },
                };
                if delay == 0 {
                    self.apply_write(&w);
                } else {
                    self.pending_writes.push(w);
                }
                ctl.side_effect = true;
                if let Some(key) = flush_key {
                    ctl.flush = Some((map, key, feb_read_stage as usize));
                }
            }
            FusedOp::AtomicMap { op, size, dst, src, off, map, stride, value_size } => {
                let addr = state.regs[dst as usize].wrapping_add(off as i64 as u64);
                let Some((slot, o)) = map_slot_of(addr, map, stride) else {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                };
                self.forward_own_writes(map, seq);
                if self.fault.is_some() {
                    self.fault_map_read(map, slot as u32);
                }
                let n = size.bytes();
                {
                    let m = self.maps.get(map).ok_or(OpAbort::Fault)?;
                    // Interpreter atomic order: stale risk before bounds.
                    if self.stale_risk(map, seq, m.key_of(slot)) {
                        return Err(OpAbort::FlushSelf);
                    }
                    if o + n > value_size as usize {
                        return Err(OpAbort::Fault);
                    }
                }
                let m = self.maps.get_mut(map).expect("map checked above");
                let mut cur = [0u8; 8];
                cur[..n].copy_from_slice(&m.value(slot)[o..o + n]);
                let old = u64::from_le_bytes(cur);
                let new = atomic_new_value(
                    op,
                    old,
                    state.regs[src as usize],
                    state.regs[0] & mask_for(size),
                );
                let bytes = new.to_le_bytes();
                m.value_mut(slot)[o..o + n].copy_from_slice(&bytes[..n]);
                if self.shared.is_some() {
                    self.note_map_atomic(map, slot);
                }
                ctl.side_effect = true;
                if self.debug_trace {
                    eprintln!("[sim {}] atomic map{map} slot{slot} seq{seq} old={old}", self.cycle);
                }
                match op {
                    AtomicOp::Cmpxchg => state.regs[0] = old,
                    _ if op.fetches() => state.regs[src as usize] = old,
                    _ => {}
                }
            }
            FusedOp::Lookup { map, key_size, stride } => {
                if map_handle(state.regs[1]) != Some(map) {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
                let mut key = std::mem::take(&mut self.scratch_key);
                key.clear();
                key.resize(key_size as usize, 0);
                let r = self.compiled_lookup(s, map, stride, seq, state, &mut key);
                key.clear();
                self.scratch_key = key;
                helper_epilogue(state, r?);
            }
            FusedOp::MapUpdate { map, key_size, value_size, delay, feb_read_stage } => {
                if map_handle(state.regs[1]) != Some(map) {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
                let mut key = std::mem::take(&mut self.scratch_key);
                key.clear();
                key.resize(key_size as usize, 0);
                let r = self.compiled_map_update(
                    s,
                    map,
                    value_size,
                    delay,
                    feb_read_stage,
                    seq,
                    state,
                    &mut key,
                    ctl,
                );
                key.clear();
                self.scratch_key = key;
                r?;
                helper_epilogue(state, 0);
            }
            FusedOp::MapDelete { map, key_size, delay, feb_read_stage } => {
                if map_handle(state.regs[1]) != Some(map) {
                    return self.exec_op_cold(s, i, block, seq, state, ctl, plan);
                }
                let mut key = std::mem::take(&mut self.scratch_key);
                key.clear();
                key.resize(key_size as usize, 0);
                let r = self.compiled_map_delete(
                    s,
                    map,
                    delay,
                    feb_read_stage,
                    seq,
                    state,
                    &mut key,
                    ctl,
                );
                key.clear();
                self.scratch_key = key;
                r?;
                helper_epilogue(state, 0);
            }
            // Routed here only for the map-op variants.
            _ => unreachable!("exec_fused_map handles map ops only"),
        }
        Ok(())
    }

    /// Per-op interpreter fallback for a direct stage: run the original
    /// [`ehdl_core::StageOp`] at the same index through [`PipelineSim::exec_op`]
    /// with the scratch write set, then commit immediately. Exact because
    /// a direct stage's ops are proven order-independent, so "reads
    /// stage-entry state" and "reads current state" coincide.
    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn exec_op_cold(
        &mut self,
        s: usize,
        i: usize,
        block: usize,
        seq: u64,
        state: &mut PacketState,
        ctl: &mut DirectCtl,
        plan: &ExecPlan,
    ) -> Result<(), OpAbort> {
        let mut delta = self.scratch.take().expect("scratch delta available");
        let res = self.exec_op(s, &plan.stage_ops(s)[i], seq, state, &mut delta);
        if matches!(res, Err(OpAbort::FlushSelf)) {
            delta.clear();
            self.scratch = Some(delta);
            return Err(OpAbort::FlushSelf);
        }
        if let Some(f) = delta.flush_below.take() {
            ctl.flush = Some(f);
        }
        ctl.side_effect |= delta.side_effect;
        if res.is_err() {
            delta.fault = true;
        }
        delta.apply(state, block);
        delta.clear();
        self.scratch = Some(delta);
        res
    }

    /// [`PipelineSim::lookup_with_key`] with baked geometry and a pooled
    /// unconfirmed-read record (the interpreter allocates one per lookup;
    /// this path must not).
    fn compiled_lookup(
        &mut self,
        stage_idx: usize,
        map_id: u32,
        stride: u32,
        seq: u64,
        state: &mut PacketState,
        key: &mut [u8],
    ) -> Result<u64, OpAbort> {
        let key_addr = state.regs[2];
        self.read_into(state, seq, key_addr, key)?;
        self.forward_own_writes(map_id, seq);
        if self.stale_risk(map_id, seq, key) {
            return Err(OpAbort::FlushSelf);
        }
        let mut k = self.pool.take_key();
        k.clear();
        k.extend_from_slice(key);
        state.read_filter |= read_key_bit(map_id, &k);
        state.map_reads.push((map_id, stage_idx as u32, k));
        let map = self.maps.get_mut(map_id).expect("map exists");
        let slot = map.lookup(key).ok().flatten();
        if let Some(c) = self.map_lookups.get_mut(map_id as usize) {
            *c = c.saturating_add(1);
        }
        if slot.is_some() {
            if let Some(c) = self.map_hits.get_mut(map_id as usize) {
                *c = c.saturating_add(1);
            }
        }
        if self.shared.is_some() {
            self.note_map_read(map_id, key, slot);
        }
        Ok(match slot {
            Some(slot) => {
                if self.fault.is_some() {
                    self.fault_map_read(map_id, slot as u32);
                }
                map_value_addr(map_id, slot, stride)
            }
            None => 0,
        })
    }

    /// `bpf_map_update_elem` body with baked geometry and hazard schedule;
    /// mirrors [`PipelineSim::map_write_with_key`]'s update arm exactly
    /// (value-read failure restores the scratch buffer, commits nothing,
    /// raises no hazard, and propagates the fault).
    #[allow(clippy::too_many_arguments)]
    fn compiled_map_update(
        &mut self,
        stage_idx: usize,
        map_id: u32,
        value_size: u32,
        delay: u32,
        feb_read_stage: u32,
        seq: u64,
        state: &PacketState,
        key: &mut [u8],
        ctl: &mut DirectCtl,
    ) -> Result<(), OpAbort> {
        self.read_into(state, seq, state.regs[2], key)?;
        let hazard = self.younger_read_matches(stage_idx, map_id, key);
        let flags = UpdateFlags::from_raw(state.regs[4]).unwrap_or(UpdateFlags::Any);
        let mut value = std::mem::take(&mut self.scratch_val);
        value.clear();
        value.resize(value_size as usize, 0);
        let read = self.read_into(state, seq, state.regs[3], &mut value);
        if read.is_ok() {
            if delay == 0 {
                if let Some(map) = self.maps.get_mut(map_id) {
                    let _ = map.update(key, &value, flags);
                }
                if self.shared.is_some() {
                    self.note_map_update(map_id, key, &value);
                }
            } else {
                let k = self.pooled_copy(key);
                let v = self.pooled_copy(&value);
                self.pending_writes.push(PendingWrite {
                    commit_cycle: self.cycle + u64::from(delay),
                    map: map_id,
                    seq,
                    kind: WriteKind::Update { key: k, value: v, flags },
                });
            }
        }
        value.clear();
        self.scratch_val = value;
        read?;
        ctl.side_effect = true;
        if hazard {
            ctl.flush = Some((map_id, key.to_vec(), feb_read_stage as usize));
        }
        Ok(())
    }

    /// `bpf_map_delete_elem` body with baked geometry and hazard schedule.
    #[allow(clippy::too_many_arguments)]
    fn compiled_map_delete(
        &mut self,
        stage_idx: usize,
        map_id: u32,
        delay: u32,
        feb_read_stage: u32,
        seq: u64,
        state: &PacketState,
        key: &mut [u8],
        ctl: &mut DirectCtl,
    ) -> Result<(), OpAbort> {
        self.read_into(state, seq, state.regs[2], key)?;
        let hazard = self.younger_read_matches(stage_idx, map_id, key);
        if delay == 0 {
            if let Some(map) = self.maps.get_mut(map_id) {
                let _ = map.delete(key);
            }
            if self.shared.is_some() {
                self.note_map_delete(map_id, key);
            }
        } else {
            let k = self.pooled_copy(key);
            self.pending_writes.push(PendingWrite {
                commit_cycle: self.cycle + u64::from(delay),
                map: map_id,
                seq,
                kind: WriteKind::Delete { key: k },
            });
        }
        ctl.side_effect = true;
        if hazard {
            ctl.flush = Some((map_id, key.to_vec(), feb_read_stage as usize));
        }
        Ok(())
    }
}

/// Resolve a pre-lowered register-or-immediate operand.
#[inline]
fn reg_or_imm_value(state: &PacketState, v: RegOrImm) -> u64 {
    match v {
        RegOrImm::Reg(r) => state.regs[r as usize],
        RegOrImm::Imm(i) => i,
    }
}
