//! Malformed-frame hardening: runts, truncated headers, oversized frames
//! and deterministic garbage must never panic either engine, and the
//! pipeline must keep matching the reference VM on every frame the
//! ingress accepts.

#![allow(clippy::unwrap_used)]

use ehdl_core::Compiler;
use ehdl_ebpf::Program;
use ehdl_hwsim::diff::compare;
use ehdl_hwsim::{PipelineSim, SimError, SimOptions};
use ehdl_net::{PacketBuilder, IPPROTO_TCP, IPPROTO_UDP, MAX_FRAME};
use ehdl_programs::{router, simple_firewall, suricata};
use ehdl_rng::Rng;

/// A deterministic zoo of hostile frames, all within the datapath's
/// maximum length: runts down to the empty frame, truncated L3/L4,
/// lying length fields, wrong ethertypes and seeded garbage.
fn adversarial_frames() -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = Vec::new();

    // Runts: every length shorter than an Ethernet header, plus the
    // empty frame, plus each length cutting through the IPv4 header.
    for len in 0..=(14 + 20) {
        frames.push(
            PacketBuilder::new()
                .eth([2; 6], [3; 6])
                .ipv4([10, 0, 0, 1], [10, 0, 0, 2], IPPROTO_UDP)
                .udp(4000, 53)
                .exact_len(len)
                .build(),
        );
    }
    // Truncated L4: Ethernet + IPv4 intact, TCP/UDP header cut short.
    for cut in [35, 38, 41, 47, 53] {
        frames.push(
            PacketBuilder::new()
                .eth([2; 6], [3; 6])
                .ipv4([192, 168, 0, 1], [192, 168, 0, 2], IPPROTO_TCP)
                .tcp(1234, 80, 0x02)
                .exact_len(cut)
                .build(),
        );
    }
    // Lying IPv4 total-length: claims far more payload than the frame
    // carries (and, next, far less).
    for tot_len in [0u16, 9, 1500, 0xffff] {
        let mut p = PacketBuilder::new()
            .eth([2; 6], [3; 6])
            .ipv4([10, 1, 0, 1], [10, 1, 0, 2], IPPROTO_UDP)
            .udp(1, 2)
            .build();
        p[16..18].copy_from_slice(&tot_len.to_be_bytes());
        frames.push(p);
    }
    // Non-IP and half-parsed ethertypes.
    frames.push(PacketBuilder::new().eth([2; 6], [3; 6]).ipv6([1; 16], [2; 16], 17).build());
    let mut arp = vec![0u8; 60];
    arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
    frames.push(arp);
    // Largest accepted frame, exactly at the limit.
    frames.push(
        PacketBuilder::new()
            .eth([2; 6], [3; 6])
            .ipv4([10, 2, 0, 1], [10, 2, 0, 2], IPPROTO_UDP)
            .udp(9, 9)
            .exact_len(MAX_FRAME)
            .build(),
    );
    // Seeded garbage at assorted lengths — bytes with no protocol
    // structure at all.
    let mut rng = Rng::seed_from_u64(0xadff_5a71);
    for len in [1usize, 13, 14, 15, 33, 64, 65, 200, 512, 1514] {
        let mut p = vec![0u8; len];
        rng.fill_bytes(&mut p);
        frames.push(p);
    }
    frames
}

fn check_program(program: &Program) {
    let design = Compiler::new().compile(program).unwrap();
    let frames = adversarial_frames();
    let divs = compare(program, &design, &frames);
    assert!(divs.is_empty(), "adversarial frames diverge: {divs:?}");
}

#[test]
fn firewall_survives_adversarial_frames() {
    check_program(&simple_firewall::program());
}

#[test]
fn suricata_survives_adversarial_frames() {
    check_program(&suricata::program());
}

#[test]
fn router_survives_adversarial_frames() {
    check_program(&router::program());
}

#[test]
fn oversized_frames_dropped_at_ingress() {
    let design = Compiler::new().compile(&simple_firewall::program()).unwrap();
    let mut sim = PipelineSim::with_options(&design, SimOptions::default());
    let max = design.framing.max_packet_len;

    // One byte over the datapath maximum: refused with a typed error,
    // counted as an RX drop, and never assigned a sequence number.
    let oversized = vec![0u8; max + 1];
    assert_eq!(
        sim.try_enqueue(oversized.clone()),
        Err(SimError::FrameTooLarge { len: max + 1, max })
    );
    assert!(!sim.enqueue(vec![0u8; max * 2]));
    assert_eq!(sim.counters().rx_dropped, 2);

    // A frame exactly at the limit still flows through normally.
    assert_eq!(sim.try_enqueue(vec![0u8; max]), Ok(()));
    sim.settle(1_000_000);
    let outs = sim.drain();
    assert_eq!(outs.len(), 1);
    assert_eq!(outs[0].seq, 0, "dropped frames must not consume sequence numbers");
}

#[test]
fn queue_overflow_reports_typed_error() {
    let design = Compiler::new().compile(&simple_firewall::program()).unwrap();
    let mut sim =
        PipelineSim::with_options(&design, SimOptions { rx_queue_depth: 2, ..Default::default() });
    assert_eq!(sim.try_enqueue(vec![0u8; 64]), Ok(()));
    assert_eq!(sim.try_enqueue(vec![0u8; 64]), Ok(()));
    assert_eq!(sim.try_enqueue(vec![0u8; 64]), Err(SimError::QueueFull { depth: 2 }));
    assert_eq!(sim.counters().rx_dropped, 1);
}
