//! Deterministic fuzzing of the control-channel front end: the frame
//! codec and the mailbox must return typed errors on arbitrary input —
//! never panic, never hang, never silently half-apply — and every frame
//! the mailbox accepts must complete exactly once.
//!
//! Every case is derived from `ehdl-rng`, so a failure reproduces from
//! the seed printed in the assertion message.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use ehdl_core::Compiler;
use ehdl_ebpf::maps::{MapDef, MapKind, UpdateFlags};
use ehdl_ebpf::opcode::MemSize;
use ehdl_ebpf::{asm::Asm, Program};
use ehdl_hwsim::{
    decode_frame, encode_frame, CtrlError, CtrlOptions, HostOp, PipelineSim, FRAME_HEADER_LEN,
    MAX_FRAME_LEN,
};
use ehdl_rng::Rng;

/// Pass-through program with two host-facing maps so frames can name a
/// valid map, a second valid map, and out-of-range ids.
fn two_map_program() -> Program {
    let mut a = Asm::new();
    a.load(MemSize::W, 7, 1, 0);
    a.mov64_imm(0, 3);
    a.exit();
    Program::new(
        "fuzzctrl",
        a.into_insns(),
        vec![
            MapDef::new(0, "cells", MapKind::Hash, 8, 8, 32),
            MapDef::new(1, "tallies", MapKind::Array, 4, 8, 16),
        ],
    )
}

fn sim_with_ctrl(queue_depth: usize, latency_cycles: u64) -> PipelineSim {
    let design = Compiler::new().compile(&two_map_program()).unwrap();
    let mut sim = PipelineSim::new(&design);
    sim.attach_ctrl(CtrlOptions { latency_cycles, queue_depth });
    sim
}

/// A random op, weighted toward well-formed shapes but with wrong key
/// and value sizes and out-of-range map ids mixed in.
fn random_op(rng: &mut Rng) -> HostOp {
    let map = match rng.gen_index(8) {
        0..=4 => 0,
        5..=6 => 1,
        _ => rng.gen_u8() as u32, // usually out of range
    };
    // Keys must be non-empty (the codec rejects empty keys as a
    // malformed shape); sizes still roam so the device-side key/value
    // size checks get exercised through clean frames.
    let blob = |rng: &mut Rng, min: usize, usual: usize| -> Vec<u8> {
        let len = if rng.gen_index(4) == 0 { min + rng.gen_index(64 - min) } else { usual };
        (0..len).map(|_| rng.gen_u8()).collect()
    };
    match rng.gen_index(4) {
        0 => HostOp::Lookup { map, key: blob(rng, 1, 8) },
        1 => HostOp::Update {
            map,
            key: blob(rng, 1, 8),
            value: blob(rng, 0, 8),
            flags: match rng.gen_index(3) {
                0 => UpdateFlags::Any,
                1 => UpdateFlags::NoExist,
                _ => UpdateFlags::Exist,
            },
        },
        2 => HostOp::Delete { map, key: blob(rng, 1, 8) },
        _ => HostOp::Dump { map },
    }
}

/// Mutate an encoded frame: bit flips, truncation, extension past the
/// length limit, byte-window overwrites, or header-field surgery.
fn mutate(rng: &mut Rng, frame: &mut Vec<u8>) {
    match rng.gen_index(5) {
        0 => {
            for _ in 0..=rng.gen_index(8) {
                let bit = rng.gen_index(frame.len() * 8);
                frame[bit / 8] ^= 1 << (bit % 8);
            }
        }
        1 => frame.truncate(rng.gen_index(frame.len() + 1)),
        2 => {
            let extra = rng.gen_range_u64(1, MAX_FRAME_LEN as u64 + 64) as usize;
            frame.extend((0..extra).map(|_| rng.gen_u8()));
        }
        3 => {
            let start = rng.gen_index(frame.len());
            let end = (start + 1 + rng.gen_index(16)).min(frame.len());
            for b in &mut frame[start..end] {
                *b = rng.gen_u8();
            }
        }
        _ => {
            // Header surgery: kind byte, length fields, or the CRC word.
            let off = [4, 12, 14, 16, 18, frame.len() - 4][rng.gen_index(6)];
            if off < frame.len() {
                frame[off] = frame[off].wrapping_add(1 + rng.gen_u8() % 0xff);
            }
        }
    }
}

/// The codec round-trips every op shape bit-exactly.
#[test]
fn codec_roundtrips_random_ops() {
    let mut rng = Rng::seed_from_u64(0xC0DEC);
    for case in 0..2000 {
        let op = random_op(&mut rng);
        let seq = rng.next_u64();
        let frame = encode_frame(seq, &op);
        assert!(
            frame.len() >= FRAME_HEADER_LEN && frame.len() <= MAX_FRAME_LEN,
            "case {case}: encoded length {} out of range",
            frame.len()
        );
        let (got_seq, got_op) = decode_frame(&frame)
            .unwrap_or_else(|e| panic!("case {case}: clean frame rejected: {e}"));
        assert_eq!(got_seq, seq, "case {case}: seq mangled");
        assert_eq!(got_op, op, "case {case}: op mangled");
    }
}

/// Mutated frames — bit-flipped, truncated, oversized, rewritten — must
/// come back as a typed [`ehdl_hwsim::FrameError`] or decode cleanly;
/// the decoder never panics and never returns a frame longer than the
/// limit.
#[test]
fn decoder_is_total_on_mutated_frames() {
    let mut rng = Rng::seed_from_u64(0xDEC0DE);
    let mut rejected = 0u32;
    for case in 0..3000 {
        let mut frame = encode_frame(rng.next_u64(), &random_op(&mut rng));
        mutate(&mut rng, &mut frame);
        match decode_frame(&frame) {
            Ok(_) => {}
            Err(e) => {
                rejected += 1;
                // The error formats — it is a real typed value, not a
                // sentinel that panics on display.
                let _ = format!("case {case}: {e}");
            }
        }
    }
    assert!(rejected > 1000, "mutations must actually trip the codec (got {rejected})");
}

/// End-to-end: mutated frames through the mailbox. Every submission
/// returns a typed result, every accepted frame completes exactly once
/// (retransmitted seqs are answered from the dedupe cache, not
/// re-applied), and nothing panics between submit and completion.
#[test]
fn mailbox_survives_mutated_frames_and_completes_accepted_ones() {
    let mut rng = Rng::seed_from_u64(0xFEEDFACE);
    let mut sim = sim_with_ctrl(64, 2);
    let mut accepted: Vec<u64> = Vec::new();
    let mut typed_rejects = 0u64;
    for case in 0..1500 {
        let mut frame = encode_frame(rng.next_u64(), &random_op(&mut rng));
        if rng.gen_index(4) != 0 {
            mutate(&mut rng, &mut frame);
        }
        match sim.submit_host_frame(&frame) {
            Ok(seq) => accepted.push(seq),
            Err(CtrlError::BadFrame(_) | CtrlError::NoSuchMap { .. }) => typed_rejects += 1,
            Err(e) => panic!("case {case}: unexpected error class: {e}"),
        }
        // Drain between bursts so the mailbox never fills: this test is
        // about codec hardening, not backpressure.
        if case % 32 == 31 {
            sim.settle(100_000);
        }
    }
    sim.settle(100_000);
    let completions: Vec<u64> = sim.host_completions().iter().map(|c| c.id).collect();
    assert!(typed_rejects > 0, "mutations must produce typed driver-side rejects");
    assert_eq!(
        completions.len(),
        accepted.len(),
        "every accepted frame completes exactly once — no silent drop, no double apply"
    );
    let accepted_set: BTreeSet<u64> = accepted.iter().copied().collect();
    for id in &completions {
        assert!(accepted_set.contains(id), "completion {id} for a frame never accepted");
    }
    let unique = accepted_set.len() as u64;
    let stats = sim.ctrl_stats().unwrap();
    assert_eq!(
        stats.dedupe_hits,
        accepted.len() as u64 - unique,
        "a resubmitted seq is answered from the applied cache, not re-applied"
    );
}

/// Satellite: flooding the mailbox past its depth must return
/// [`CtrlError::QueueFull`] with the configured depth — typed, never a
/// panic, never a silent drop — and the accepted prefix still completes
/// exactly once.
#[test]
fn queue_overflow_is_typed_and_lossless_for_accepted_ops() {
    let depth = 4;
    let mut sim = sim_with_ctrl(depth, 1000);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..(10 * depth as u64) {
        let frame = encode_frame(
            i,
            &HostOp::Update {
                map: 0,
                key: i.to_le_bytes().to_vec(),
                value: (i * 3).to_le_bytes().to_vec(),
                flags: UpdateFlags::Any,
            },
        );
        match sim.submit_host_frame(&frame) {
            Ok(_) => accepted += 1,
            Err(CtrlError::QueueFull { depth: d }) => {
                assert_eq!(d, depth, "the error names the configured depth");
                rejected += 1;
            }
            Err(e) => panic!("flood must only hit QueueFull, got {e}"),
        }
    }
    assert_eq!(accepted, depth as u64, "exactly the mailbox depth is admitted");
    assert_eq!(rejected, 9 * depth as u64, "every overflow is a typed rejection");
    let stats = sim.ctrl_stats().unwrap();
    assert_eq!(stats.rejected, rejected, "rejects are counted, not silent");
    sim.settle(1_000_000);
    let completions = sim.host_completions();
    assert_eq!(completions.len(), depth, "accepted ops all complete exactly once");
    assert!(completions.iter().all(|c| c.result.is_ok()));
    // The admitted prefix really landed: keys 0..depth are present.
    let maps = sim.maps();
    let m = maps.get(0).unwrap();
    for i in 0..depth as u64 {
        assert!(
            matches!(m.clone().lookup(&i.to_le_bytes()), Ok(Some(_))),
            "accepted update {i} must be applied"
        );
    }
}
