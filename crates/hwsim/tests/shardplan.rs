//! Cross-validation of the static sharding-soundness pass (`ehdl-core::
//! shardcheck`) against the dynamic checkers: every verdict the analysis
//! emits — private/shared placement, merge soundness, exactness, race —
//! must agree with what `diff::compare_sharded` (which includes the
//! per-key linearizability replay) observes on real traffic.

use ehdl_core::shardcheck::{MapClass, MergePolicy, Placement, ShardError};
use ehdl_core::Compiler;
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::BPF_MAP_LOOKUP_ELEM;
use ehdl_ebpf::maps::{MapDef, MapKind, MapStore};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_hwsim::{
    compare_sharded, fabric_from_plan, merges_from_plan, Divergence, ShardedNic, SharedMapOptions,
    SimOptions,
};
use ehdl_net::{FiveTuple, IPPROTO_TCP, IPPROTO_UDP};
use ehdl_programs::{dnat, leaky_bucket, simple_firewall, suricata, toy_counter, App};
use ehdl_traffic::{build_flow_packet, FlowSet, Popularity, Workload};

fn compile(p: &Program) -> ehdl_core::PipelineDesign {
    Compiler::new().compile(p).expect("app compiles")
}

fn flow(i: usize, proto: u8) -> FiveTuple {
    FiveTuple {
        saddr: [10, 1, (i >> 8) as u8, i as u8],
        daddr: [203, 0, 113, 9],
        sport: 40000 + i as u16,
        dport: 53,
        proto,
    }
}

/// Bidirectional trace over `flows` flows.
fn bidi_trace(flows: usize, rounds: usize, proto: u8) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for i in 0..flows {
        out.push(build_flow_packet(&flow(i, proto), [1; 6], [2; 6], 64));
    }
    for _ in 0..rounds {
        for i in 0..flows {
            out.push(build_flow_packet(&flow(i, proto).reversed(), [2; 6], [1; 6], 64));
            out.push(build_flow_packet(&flow(i, proto), [1; 6], [2; 6], 64));
        }
    }
    out
}

/// Mixed workload from the traffic generator (exercises non-IP frames
/// and skewed popularity too).
fn workload(app: App, n: usize) -> Vec<Vec<u8>> {
    let flows = match app {
        App::Suricata => FlowSet::tcp(256, 42),
        _ => FlowSet::udp(256, 42),
    };
    Workload::new(flows, Popularity::Zipf { alpha: 1.1 }, 64, 43).packets(n)
}

/// Host-side map population per app (routes, endpoints, ACL rules).
fn setup_app(app: App, maps: &mut MapStore) {
    match app {
        App::Router => {
            ehdl_programs::router::install_route(maps, [0, 0, 0, 0], 0, 1, [0xaa; 6], [0x02; 6]);
            ehdl_programs::router::install_route(
                maps,
                [192, 168, 0, 0],
                16,
                2,
                [0xbb; 6],
                [0x02; 6],
            );
        }
        App::Tunnel => {
            for i in 0..32u8 {
                ehdl_programs::tunnel::install_endpoint(
                    maps,
                    [192, 168, i, i],
                    [172, 16, 0, 1],
                    [172, 16, 0, 2],
                    [0xaa; 6],
                    [0xbb; 6],
                );
            }
        }
        App::Suricata => {
            for f in FlowSet::tcp(256, 42).flows().iter().take(64) {
                suricata::install_rule(maps, f);
            }
        }
        App::Firewall | App::Dnat => {}
    }
}

/// Pin the zero-hint classification of every map of the app zoo. These
/// verdicts are load-bearing: `scripts/check.sh` gates on this test, and
/// the dynamic-agreement tests below trust `vm_exact` to predict the
/// differential outcome.
#[test]
fn app_zoo_classifications_pinned() {
    use MapClass::*;
    use MergePolicy as MP;
    // Per map: (id, class, placement, merge, vm_exact).
    type MapPins = Vec<(u32, MapClass, Placement, MP, bool)>;
    let expect: Vec<(&str, Program, MapPins)> = vec![
        (
            "firewall",
            simple_firewall::program(),
            vec![
                // Flow-keyed and sound private, but the established-path
                // in-place bump precedes the open-path session update in
                // program order; the pc-window replay rule cannot see
                // that the two paths are exclusive, so it soundly drops
                // the exactness claim.
                (0, FlowKeyed, Placement::Private, MP::Union, false),
                // The drop-path counter bump sits between the session
                // lookup and the session update commit — an FEB replay
                // can re-execute it, so exactness is not claimed.
                (1, SumDelta, Placement::Private, MP::SumDelta, false),
            ],
        ),
        (
            "router",
            ehdl_programs::router::program(),
            vec![
                (0, ReadOnly, Placement::Private, MP::Union, true),
                (1, SumDelta, Placement::Private, MP::SumDelta, true),
            ],
        ),
        (
            "tunnel",
            ehdl_programs::tunnel::program(),
            vec![
                (0, ReadOnly, Placement::Private, MP::Union, true),
                (1, SumDelta, Placement::Private, MP::SumDelta, true),
            ],
        ),
        (
            "dnat",
            dnat::program(),
            vec![
                (dnat::CONN_MAP, FlowKeyed, Placement::Private, MP::Union, false),
                // The port-allocator fetch-add lives inside the conn
                // map's hazard-replay window (lookup < atomic < update):
                // a stale-read flush re-executes the committed add, so
                // the counter can over-count even on one pipeline.
                (dnat::PORT_ALLOC_MAP, SharedAtomic, Placement::Shared, MP::Direct, false),
                (dnat::STATS_MAP, SumDelta, Placement::Private, MP::SumDelta, true),
            ],
        ),
        (
            "suricata",
            suricata::program(),
            vec![
                // Not flow-keyed: the VLAN path reads the tuple at
                // shifted offsets the steering hash never sees. Still
                // sound private: the only writes are blind counter adds.
                (suricata::ACL_MAP, SumDelta, Placement::Private, MP::SumDelta, true),
                (suricata::STATS_MAP, SumDelta, Placement::Private, MP::SumDelta, true),
            ],
        ),
        (
            "toy_counter",
            toy_counter::program(),
            vec![(0, SumDelta, Placement::Private, MP::SumDelta, true)],
        ),
        (
            "leaky_bucket",
            leaky_bucket::program(),
            vec![
                // Flow-keyed RMW: private is sound, but stored values
                // derive from loaded state, so exactness is not claimed.
                (0, FlowKeyed, Placement::Private, MP::Union, false),
                (1, SumDelta, Placement::Private, MP::SumDelta, true),
            ],
        ),
    ];
    for (name, program, maps) in expect {
        let plan = compile(&program).shard;
        assert!(plan.analyzed, "{name}: plan analyzed");
        assert_eq!(plan.maps.len(), maps.len(), "{name}: every map classified");
        for (id, class, place, merge, exact) in maps {
            let m = plan.map(id).unwrap_or_else(|| panic!("{name}: map {id} in plan"));
            assert_eq!(m.class, class, "{name}: map {id} class");
            assert_eq!(m.placement, place, "{name}: map {id} placement");
            assert_eq!(m.merge, merge, "{name}: map {id} merge");
            assert_eq!(m.vm_exact, exact, "{name}: map {id} exactness");
        }
        assert!(plan.require_sound(4).is_ok(), "{name}: sound at 4 replicas");
    }
    // The statically pre-assigned bank count: DNAT's constant-keyed
    // port allocator gets a single bank (PR 7 measured ~50% conflicts
    // there regardless of banking); everyone else keeps the default.
    let plan = compile(&dnat::program()).shard;
    assert_eq!(plan.map(dnat::PORT_ALLOC_MAP).expect("port_alloc").banks, 1);
    assert_eq!(plan.fabric_banks(), 1);
    assert_eq!(plan.shared_map_ids(), vec![dnat::PORT_ALLOC_MAP]);
}

/// Maps the analysis proved `vm_exact` must never diverge dynamically,
/// and plans where *every* map is exact must run fully clean. This is
/// the 100%-agreement gate over the whole app zoo at 2 and 4 replicas,
/// on both a structured bidirectional trace and a generated workload.
#[test]
fn verdicts_agree_with_dynamic_checkers() {
    let apps = [App::Firewall, App::Router, App::Tunnel, App::Dnat, App::Suricata];
    let extras: Vec<(String, Program)> = vec![
        ("toy_counter".into(), toy_counter::program()),
        ("leaky_bucket".into(), leaky_bucket::program()),
    ];
    let all: Vec<(String, Program, Option<App>)> = apps
        .iter()
        .map(|a| (format!("{a:?}"), a.program(), Some(*a)))
        .chain(extras.into_iter().map(|(n, p)| (n, p, None)))
        .collect();
    for (name, program, app) in &all {
        let design = compile(program);
        let plan = design.shard.clone();
        let fabric = fabric_from_plan(&plan);
        let merges = merges_from_plan(&plan);
        let proto = if *app == Some(App::Suricata) { IPPROTO_TCP } else { IPPROTO_UDP };
        let traces: Vec<Vec<Vec<u8>>> = vec![
            bidi_trace(32, 2, proto),
            app.map(|a| workload(a, 220)).unwrap_or_else(|| bidi_trace(48, 1, proto)),
        ];
        for packets in &traces {
            for replicas in [2usize, 4] {
                let setup = |maps: &mut MapStore| {
                    if let Some(a) = app {
                        setup_app(*a, maps);
                    }
                };
                let div = compare_sharded(
                    program,
                    &design,
                    replicas,
                    7,
                    packets,
                    &[],
                    setup,
                    &merges,
                    fabric.clone(),
                    SimOptions::default(),
                );
                // Exact maps must be divergence-free; beyond that no
                // action/count/coherence/proof divergence anywhere
                // (placement + serialization are sound).
                for d in &div {
                    match d {
                        Divergence::Map { map } => {
                            let m = plan.map(*map).expect("diverged map is classified");
                            assert!(
                                !m.vm_exact,
                                "{name} x{replicas}: map {map} was proven exact but diverged"
                            );
                        }
                        Divergence::Packet { .. } => {
                            assert!(
                                !plan.all_exact(),
                                "{name} x{replicas}: packet divergence in an all-exact plan: {d}"
                            );
                        }
                        other => panic!("{name} x{replicas}: unexpected divergence {other}"),
                    }
                }
                if plan.all_exact() {
                    assert!(
                        div.is_empty(),
                        "{name} x{replicas}: all-exact plan must be clean, got {div:?}"
                    );
                }
            }
        }
    }
}

/// DNAT with pre-bound flows: the order-dependent port allocator never
/// runs, so even the maps the analysis refuses to call exact merge
/// bit-equivalently — the conservative direction of the verdict.
#[test]
fn dnat_prebound_runs_clean_under_plan_config() {
    use ehdl_ebpf::maps::UpdateFlags;
    let program = dnat::program();
    let design = compile(&program);
    let flows = 40;
    let mut packets = Vec::new();
    for _ in 0..3 {
        for i in 0..flows {
            packets.push(build_flow_packet(&flow(i, IPPROTO_UDP), [1; 6], [2; 6], 64));
        }
    }
    let setup = move |maps: &mut MapStore| {
        let conn = maps.get_mut(dnat::CONN_MAP).expect("conn map");
        for i in 0..flows {
            let port = dnat::PORT_BASE + i as u16;
            let mut val = [0u8; 8];
            val[..4].copy_from_slice(&dnat::NAT_ADDR);
            val[4..6].copy_from_slice(&port.to_be_bytes());
            conn.update(&flow(i, IPPROTO_UDP).to_key(), &val, UpdateFlags::Any).expect("bind");
        }
    };
    let div = compare_sharded(
        &program,
        &design,
        4,
        11,
        &packets,
        &[],
        setup,
        &merges_from_plan(&design.shard),
        fabric_from_plan(&design.shard),
        SimOptions::default(),
    );
    assert!(div.is_empty(), "prebound DNAT under the derived plan: {div:?}");
}

/// A hand-written unfenced RMW (lookup → load → store on one hot key):
/// the pass flags a compile-time `CrossReplicaRace`, and the dynamic
/// checker confirms it — running the same design across replicas with the
/// map serialized per *access* (but not per RMW sequence) loses updates.
#[test]
fn static_race_agrees_with_dynamic_divergence() {
    let mut a = Asm::new();
    let out = a.new_label();
    a.load(MemSize::W, 7, 1, 0);
    a.load(MemSize::W, 8, 1, 4);
    a.mov64_imm(1, 0);
    a.store_reg(MemSize::W, 10, -4, 1);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -4);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, out);
    a.load(MemSize::Dw, 1, 0, 0);
    a.alu64_imm(AluOp::Add, 1, 1);
    a.store_reg(MemSize::Dw, 0, 0, 1);
    a.bind(out);
    a.mov64_imm(0, 2);
    a.exit();
    let program =
        Program::new("racer", a.into_insns(), vec![MapDef::new(0, "ctr", MapKind::Array, 4, 8, 1)]);
    let design = compile(&program);

    // Static verdict: a typed race, rejected before any cycle runs.
    let m = design.shard.map(0).expect("classified");
    assert_eq!(m.class, MapClass::OpaqueRmw);
    let errs = design.shard.require_sound(2).unwrap_err();
    assert!(matches!(errs[0], ShardError::CrossReplicaRace { map: 0, .. }));
    let err = ShardedNic::from_shard_plan(&design, 2, 7, SimOptions::default()).unwrap_err();
    assert!(matches!(err[0], ShardError::CrossReplicaRace { map: 0, .. }));

    // Dynamic confirmation: force the unsound deployment (shared map,
    // per-access serialization) and the lost updates materialize as a
    // map divergence against the sequential reference.
    let packets = bidi_trace(64, 2, IPPROTO_UDP);
    let div = compare_sharded(
        &program,
        &design,
        2,
        7,
        &packets,
        &[],
        |_| {},
        &[],
        SharedMapOptions { shared_maps: vec![0], ..Default::default() },
        SimOptions::default(),
    );
    assert!(
        div.iter().any(|d| matches!(d, Divergence::Map { map: 0 })),
        "dynamic run must lose updates on the contended counter, got {div:?}"
    );
    // Single replica is sound statically — and clean dynamically.
    assert!(ShardedNic::from_shard_plan(&design, 1, 7, SimOptions::default()).is_ok());
    let div = compare_sharded(
        &program,
        &design,
        1,
        7,
        &packets,
        &[],
        |_| {},
        &[],
        SharedMapOptions::default(),
        SimOptions::default(),
    );
    assert!(div.is_empty(), "single replica must be exact: {div:?}");
}

/// `validate_config` reproduces (or rejects) the hand-written configs the
/// benches used before the pass existed.
#[test]
fn hand_written_configs_validated() {
    let design = compile(&dnat::program());
    let plan = &design.shard;
    // The config the chaos/scale-out benches hand-assert today.
    assert!(plan
        .validate_config(
            4,
            &[dnat::PORT_ALLOC_MAP],
            &[(dnat::CONN_MAP, MergePolicy::Union), (dnat::STATS_MAP, MergePolicy::SumDelta)],
        )
        .is_ok());
    // Wrong merge for conn (helper update does not commute as a delta).
    let errs = plan
        .validate_config(4, &[dnat::PORT_ALLOC_MAP], &[(dnat::CONN_MAP, MergePolicy::SumDelta)])
        .unwrap_err();
    assert!(
        matches!(errs[0], ShardError::NonCommutativeWrite { map, .. } if map == dnat::CONN_MAP),
        "{errs:?}"
    );
    // Leaving the fetch-add allocator private under Union is unsound:
    // its key is not a symmetric tuple function.
    let errs =
        plan.validate_config(4, &[], &[(dnat::PORT_ALLOC_MAP, MergePolicy::Union)]).unwrap_err();
    assert!(
        matches!(errs[0], ShardError::NonSymmetricKey { map, .. } if map == dnat::PORT_ALLOC_MAP),
        "{errs:?}"
    );
}

/// `ShardedNic::from_shard_plan` is a drop-in constructor: identical
/// behavior to a hand-configured NIC with the equivalent fabric.
#[test]
fn from_shard_plan_matches_hand_config() {
    let program = dnat::program();
    let design = compile(&program);
    let mut auto = ShardedNic::from_shard_plan(&design, 4, 9, SimOptions::default())
        .expect("dnat plan is sound");
    let mut hand = ShardedNic::new(
        &design,
        4,
        9,
        SimOptions::default(),
        SharedMapOptions {
            shared_maps: vec![dnat::PORT_ALLOC_MAP],
            banks: 1,
            ..Default::default()
        },
    );
    let packets = bidi_trace(24, 1, IPPROTO_UDP);
    let ra = auto.run(packets.clone());
    let rb = hand.run(packets);
    assert_eq!(ra.outcomes.len(), rb.outcomes.len());
    for (x, y) in ra.outcomes.iter().zip(&rb.outcomes) {
        assert_eq!((x.0, x.1), (y.0, y.1), "same replica + packet order");
        assert_eq!(x.2.action, y.2.action, "identical verdicts");
        assert_eq!(x.2.packet, y.2.packet, "identical output bytes");
    }
    assert_eq!(ra.cycles, rb.cycles, "identical fabric timing");
}

/// An unanalyzed design (absint off) cannot be sharded through the plan.
#[test]
fn unanalyzed_design_is_rejected() {
    let opts = ehdl_core::CompilerOptions { absint: false, ..Default::default() };
    let design = Compiler::with_options(opts)
        .compile(&toy_counter::program())
        .expect("compiles without analysis");
    let err = ShardedNic::from_shard_plan(&design, 2, 7, SimOptions::default()).unwrap_err();
    assert_eq!(err, vec![ShardError::Unanalyzed]);
}

/// One random program: 1–3 maps, each drawn from the access-pattern
/// grammar the classifier lattice distinguishes (const-key lookups,
/// tuple-keyed updates in forward or σ-reversed form, blind adds,
/// fetch-adds, and opaque load/store RMWs). A flow-keyed map's update
/// may be deferred to the end of the program, which puts intervening
/// atomics inside its hazard-replay window.
fn random_shard_program(rng: &mut ehdl_rng::Rng) -> Program {
    use ehdl_ebpf::opcode::AtomicOp;
    let mut a = Asm::new();
    let out = a.new_label();
    // Parser guards: bounds to 42, EtherType IPv4, proto UDP.
    a.load(MemSize::W, 7, 1, 0);
    a.load(MemSize::W, 8, 1, 4);
    a.mov64_reg(1, 7);
    a.alu64_imm(AluOp::Add, 1, 42);
    a.jmp_reg(JmpOp::Jgt, 1, 8, out);
    a.load(MemSize::B, 2, 7, 12);
    a.load(MemSize::B, 1, 7, 13);
    a.alu64_imm(AluOp::Lsh, 2, 8);
    a.alu64_reg(AluOp::Or, 2, 1);
    a.jmp_imm(JmpOp::Jne, 2, 0x0800, out);
    a.load(MemSize::B, 2, 7, 23);
    a.jmp_imm(JmpOp::Jne, 2, 17, out);

    let nmaps = 1 + rng.gen_index(3);
    let mut maps = Vec::new();
    let mut deferred: Vec<(u32, i16)> = Vec::new();
    for m in 0..nmaps {
        let id = m as u32;
        let base = -(32 * (m as i16 + 1));
        match rng.gen_index(5) {
            0 => {
                // Read-only: const-key lookup on a small array.
                maps.push(MapDef::new(id, "ro", MapKind::Array, 4, 8, 4));
                a.mov64_imm(1, rng.gen_index(4) as i32);
                a.store_reg(MemSize::W, 10, base, 1);
                a.ld_map_fd(1, id);
                a.mov64_reg(2, 10);
                a.alu64_imm(AluOp::Add, 2, i32::from(base));
                a.call(BPF_MAP_LOOKUP_ELEM);
            }
            1 => {
                // Flow-keyed: tuple lookup (forward or σ-reversed) plus
                // a const-value update, possibly deferred.
                maps.push(MapDef::new(id, "flow", MapKind::Hash, 13, 8, 1024));
                if rng.gen_bool() {
                    a.load(MemSize::W, 1, 7, 26);
                    a.store_reg(MemSize::W, 10, base, 1);
                    a.load(MemSize::W, 1, 7, 30);
                    a.store_reg(MemSize::W, 10, base + 4, 1);
                    a.load(MemSize::W, 1, 7, 34);
                    a.store_reg(MemSize::W, 10, base + 8, 1);
                } else {
                    a.load(MemSize::W, 1, 7, 30);
                    a.store_reg(MemSize::W, 10, base, 1);
                    a.load(MemSize::W, 1, 7, 26);
                    a.store_reg(MemSize::W, 10, base + 4, 1);
                    a.load(MemSize::H, 1, 7, 36);
                    a.store_reg(MemSize::H, 10, base + 8, 1);
                    a.load(MemSize::H, 1, 7, 34);
                    a.store_reg(MemSize::H, 10, base + 10, 1);
                }
                a.load(MemSize::B, 1, 7, 23);
                a.store_reg(MemSize::B, 10, base + 12, 1);
                a.ld_map_fd(1, id);
                a.mov64_reg(2, 10);
                a.alu64_imm(AluOp::Add, 2, i32::from(base));
                a.call(BPF_MAP_LOOKUP_ELEM);
                a.mov64_imm(1, 1 + rng.gen_index(100) as i32);
                a.store_reg(MemSize::Dw, 10, base + 16, 1);
                if rng.gen_bool() {
                    deferred.push((id, base));
                } else {
                    emit_update(&mut a, id, base);
                }
            }
            2 | 3 => {
                // Counter: a blind add or a fetch-add on one cell.
                maps.push(MapDef::new(id, "ctr", MapKind::Array, 4, 8, 1));
                let skip = a.new_label();
                a.mov64_imm(1, 0);
                a.store_reg(MemSize::W, 10, base, 1);
                a.ld_map_fd(1, id);
                a.mov64_reg(2, 10);
                a.alu64_imm(AluOp::Add, 2, i32::from(base));
                a.call(BPF_MAP_LOOKUP_ELEM);
                a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
                a.mov64_imm(2, 1 + rng.gen_index(7) as i32);
                a.atomic(AtomicOp::Add { fetch: rng.gen_bool() }, MemSize::Dw, 0, 0, 2);
                a.bind(skip);
            }
            _ => {
                // Opaque RMW: packet-byte key, load + store of the value.
                maps.push(MapDef::new(id, "rmw", MapKind::Hash, 4, 8, 64));
                let skip = a.new_label();
                a.load(MemSize::B, 1, 7, 20);
                a.store_reg(MemSize::W, 10, base, 1);
                a.ld_map_fd(1, id);
                a.mov64_reg(2, 10);
                a.alu64_imm(AluOp::Add, 2, i32::from(base));
                a.call(BPF_MAP_LOOKUP_ELEM);
                a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
                a.load(MemSize::Dw, 3, 0, 0);
                a.alu64_imm(AluOp::Add, 3, 1);
                a.store_reg(MemSize::Dw, 0, 0, 3);
                a.bind(skip);
            }
        }
    }
    for (id, base) in deferred {
        emit_update(&mut a, id, base);
    }
    a.bind(out);
    a.mov64_imm(0, 2);
    a.exit();
    Program::new("rand", a.into_insns(), maps)
}

fn emit_update(a: &mut Asm, id: u32, base: i16) {
    use ehdl_ebpf::helpers::BPF_MAP_UPDATE_ELEM;
    a.ld_map_fd(1, id);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(base));
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, i32::from(base + 16));
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);
}

/// Seeded random-program campaign: for every generated program, a sound
/// plan's exactness verdicts must agree with `compare_sharded` (same
/// one-way contract as the app zoo), and an unsound verdict must name
/// exactly the opaque-RMW maps.
#[test]
fn random_program_verdicts_agree() {
    let mut sound_runs = 0usize;
    let mut unsound_plans = 0usize;
    for seed in 0..24u64 {
        let mut rng = ehdl_rng::Rng::seed_from_u64(0x5eed_0000 + seed);
        let program = random_shard_program(&mut rng);
        let design = compile(&program);
        let plan = design.shard.clone();
        let opaque: Vec<u32> =
            plan.maps.iter().filter(|m| m.class == MapClass::OpaqueRmw).map(|m| m.map).collect();
        let packets = bidi_trace(16, 2, IPPROTO_UDP);
        for replicas in [2usize, 4] {
            match plan.require_sound(replicas) {
                Err(errs) => {
                    let flagged: Vec<u32> = errs
                        .iter()
                        .map(|e| match e {
                            ShardError::CrossReplicaRace { map, .. } => *map,
                            other => panic!("seed {seed}: unexpected error {other:?}"),
                        })
                        .collect();
                    assert_eq!(
                        flagged, opaque,
                        "seed {seed}: race diagnostics name exactly the opaque maps"
                    );
                    unsound_plans += 1;
                }
                Ok(()) => {
                    let div = compare_sharded(
                        &program,
                        &design,
                        replicas,
                        7,
                        &packets,
                        &[],
                        |_| {},
                        &merges_from_plan(&plan),
                        fabric_from_plan(&plan),
                        SimOptions::default(),
                    );
                    for d in &div {
                        match d {
                            Divergence::Map { map } => {
                                let m = plan.map(*map).expect("classified");
                                assert!(
                                    !m.vm_exact,
                                    "seed {seed} x{replicas}: map {map} proven exact diverged"
                                );
                            }
                            Divergence::Packet { .. } => {
                                assert!(!plan.all_exact(), "seed {seed}: packet divergence");
                            }
                            other => panic!("seed {seed} x{replicas}: unexpected {other}"),
                        }
                    }
                    if plan.all_exact() {
                        assert!(
                            div.is_empty(),
                            "seed {seed} x{replicas}: all-exact plan diverged: {div:?}"
                        );
                    }
                    sound_runs += 1;
                }
            }
        }
    }
    assert!(sound_runs >= 10, "campaign too thin: {sound_runs} sound runs");
    assert!(unsound_plans >= 2, "campaign too thin: {unsound_plans} unsound plans");
}
