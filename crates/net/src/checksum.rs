//! RFC 1071 internet checksum, plus the incremental-update form (RFC 1624)
//! that router-style XDP programs use when rewriting TTLs and addresses.

/// One's-complement sum of `data` folded to 16 bits, complemented.
///
/// Computing this over an IPv4 header whose checksum field is correct
/// yields zero.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum(data))
}

/// Raw 32-bit accumulating sum (not folded, not complemented).
pub fn sum(data: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc = acc.wrapping_add(u32::from(u16::from_be_bytes([c[0], c[1]])));
    }
    if let [last] = chunks.remainder() {
        acc = acc.wrapping_add(u32::from(u16::from_be_bytes([*last, 0])));
    }
    acc
}

/// Fold a 32-bit accumulator into 16 bits with end-around carry.
pub fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// RFC 1624 incremental checksum update: `old_csum` is the stored checksum,
/// `old_word`/`new_word` the 16-bit field being changed. Returns the new
/// stored checksum.
pub fn incremental_update(old_csum: u16, old_word: u16, new_word: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    let mut acc = u32::from(!old_csum);
    acc += u32::from(!old_word);
    acc += u32::from(new_word);
    !fold(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: checksum of 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(internet_checksum(&[0xff]), !0xff00);
    }

    #[test]
    fn verify_round_trip() {
        let mut header = vec![
            0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0, 0xac, 0x10, 0x0a,
            0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let c = internet_checksum(&header);
        header[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&header), 0);
    }

    #[test]
    fn incremental_matches_recompute() {
        // Change the TTL/proto word of a checksummed header and verify the
        // incremental form agrees with full recomputation.
        let mut header = vec![
            0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0, 0xac, 0x10, 0x0a,
            0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let c = internet_checksum(&header);
        header[10..12].copy_from_slice(&c.to_be_bytes());

        let old_word = u16::from_be_bytes([header[8], header[9]]);
        header[8] = header[8].wrapping_sub(1); // dec TTL
        let new_word = u16::from_be_bytes([header[8], header[9]]);
        let inc = incremental_update(c, old_word, new_word);

        header[10] = 0;
        header[11] = 0;
        let full = internet_checksum(&header);
        assert_eq!(inc, full);
    }
}
