//! Flow identities: the 5-tuple that keys stateful network functions.

use crate::{offsets, ETH_HLEN, ETH_P_IP, IPPROTO_TCP, IPPROTO_UDP};
use std::fmt;

/// An IPv4 5-tuple `(saddr, daddr, sport, dport, proto)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub saddr: [u8; 4],
    /// Destination IPv4 address.
    pub daddr: [u8; 4],
    /// Source L4 port.
    pub sport: u16,
    /// Destination L4 port.
    pub dport: u16,
    /// L4 protocol number.
    pub proto: u8,
}

impl FiveTuple {
    /// The reverse direction of this flow.
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            saddr: self.daddr,
            daddr: self.saddr,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
        }
    }

    /// Serialize as the 13-byte map key used by the firewall/DNAT programs:
    /// `saddr . daddr . sport_be . dport_be . proto`.
    pub fn to_key(self) -> [u8; 13] {
        let mut k = [0u8; 13];
        k[..4].copy_from_slice(&self.saddr);
        k[4..8].copy_from_slice(&self.daddr);
        k[8..10].copy_from_slice(&self.sport.to_be_bytes());
        k[10..12].copy_from_slice(&self.dport.to_be_bytes());
        k[12] = self.proto;
        k
    }

    /// Extract from a well-formed Eth/IPv4/{UDP,TCP} packet, if it is
    /// one: EtherType 0x0800, IP version nibble 4, L4 proto TCP or UDP,
    /// and enough bytes for the port fields. This is the strict parser
    /// for utility consumers (traffic generation, benches, tests) that
    /// want malformed packets refused. RSS steering deliberately uses
    /// the laxer [`FiveTuple::parse_for_steering`] instead.
    pub fn parse(pkt: &[u8]) -> Option<FiveTuple> {
        if pkt.len() >= offsets::L4_DPORT + 2 && pkt[ETH_HLEN] >> 4 == 4 {
            FiveTuple::parse_for_steering(pkt)
        } else {
            None
        }
    }

    /// Extract the tuple the RSS steering hash consumes, if the packet
    /// is tuple-steered at all.
    ///
    /// The precondition set — length ≥ 38, EtherType 0x0800, L4 proto in
    /// {TCP, UDP} — is deliberately exactly the set of facts XDP programs
    /// guard before touching 5-tuple fields at the fixed [`offsets`].
    /// RSS steering hashes whatever passes this parser, so any byte the
    /// parser *doesn't* inspect (version/IHL nibble, header options) must
    /// not change whether a packet is tuple-steered: a program reading
    /// ports at offset 34 and the steering hash reading the same bytes
    /// stay consistent even on packets that are not well-formed IPv4.
    /// Consumers that want strict IPv4 validation use
    /// [`FiveTuple::parse`].
    pub fn parse_for_steering(pkt: &[u8]) -> Option<FiveTuple> {
        if pkt.len() < offsets::L4_DPORT + 2 {
            return None;
        }
        let ethertype = u16::from_be_bytes([pkt[offsets::ETH_PROTO], pkt[offsets::ETH_PROTO + 1]]);
        if ethertype != ETH_P_IP {
            return None;
        }
        let proto = pkt[offsets::IP_PROTO];
        if proto != IPPROTO_UDP && proto != IPPROTO_TCP {
            return None;
        }
        Some(FiveTuple {
            saddr: pkt[offsets::IP_SADDR..offsets::IP_SADDR + 4].try_into().expect("4 bytes"),
            daddr: pkt[offsets::IP_DADDR..offsets::IP_DADDR + 4].try_into().expect("4 bytes"),
            sport: u16::from_be_bytes([pkt[offsets::L4_SPORT], pkt[offsets::L4_SPORT + 1]]),
            dport: u16::from_be_bytes([pkt[offsets::L4_DPORT], pkt[offsets::L4_DPORT + 1]]),
            proto,
        })
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} proto {}",
            self.saddr[0],
            self.saddr[1],
            self.saddr[2],
            self.saddr[3],
            self.sport,
            self.daddr[0],
            self.daddr[1],
            self.daddr[2],
            self.daddr[3],
            self.dport,
            self.proto
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn parse_from_builder() {
        let p = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([10, 0, 0, 1], [10, 0, 0, 2], IPPROTO_UDP)
            .udp(4000, 53)
            .build();
        let ft = FiveTuple::parse(&p).unwrap();
        assert_eq!(ft.saddr, [10, 0, 0, 1]);
        assert_eq!(ft.dport, 53);
        assert_eq!(ft.proto, IPPROTO_UDP);
    }

    #[test]
    fn reverse_is_involutive() {
        let ft =
            FiveTuple { saddr: [1, 2, 3, 4], daddr: [5, 6, 7, 8], sport: 9, dport: 10, proto: 6 };
        assert_eq!(ft.reversed().reversed(), ft);
        assert_ne!(ft.reversed(), ft);
    }

    #[test]
    fn key_layout() {
        let ft = FiveTuple {
            saddr: [1, 2, 3, 4],
            daddr: [5, 6, 7, 8],
            sport: 0x1234,
            dport: 0x5678,
            proto: 17,
        };
        let k = ft.to_key();
        assert_eq!(&k[..4], &[1, 2, 3, 4]);
        assert_eq!(&k[8..10], &[0x12, 0x34]);
        assert_eq!(k[12], 17);
    }

    #[test]
    fn bad_version_nibble_strict_vs_steering() {
        let mut p = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([10, 0, 0, 1], [10, 0, 0, 2], IPPROTO_UDP)
            .udp(4000, 53)
            .build();
        p[crate::ETH_HLEN] = 0x55; // version nibble 5: not IPv4
        assert_eq!(FiveTuple::parse(&p), None, "strict parser refuses malformed IPv4");
        let ft = FiveTuple::parse_for_steering(&p).expect("steering hashes the guarded bytes");
        assert_eq!(ft.saddr, [10, 0, 0, 1]);
        assert_eq!(ft.dport, 53);
    }

    #[test]
    fn non_ip_returns_none() {
        let p =
            PacketBuilder::new().eth([1; 6], [2; 6]).ipv6([1; 16], [2; 16], IPPROTO_UDP).build();
        assert_eq!(FiveTuple::parse(&p), None);
    }
}
