//! Typed protocol headers with byte-level encode/decode.

use crate::{checksum, ETH_HLEN, IPV4_HLEN, TCP_HLEN, UDP_HLEN};

/// Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: [u8; 6],
    /// Source MAC.
    pub src: [u8; 6],
    /// EtherType (host order; encoded big-endian).
    pub ethertype: u16,
}

impl EthHeader {
    /// Serialize to wire format.
    pub fn to_bytes(&self) -> [u8; ETH_HLEN] {
        let mut b = [0u8; ETH_HLEN];
        b[..6].copy_from_slice(&self.dst);
        b[6..12].copy_from_slice(&self.src);
        b[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
        b
    }

    /// Parse from the start of `bytes`, if long enough.
    pub fn parse(bytes: &[u8]) -> Option<EthHeader> {
        if bytes.len() < ETH_HLEN {
            return None;
        }
        Some(EthHeader {
            dst: bytes[..6].try_into().expect("6 bytes"),
            src: bytes[6..12].try_into().expect("6 bytes"),
            ethertype: u16::from_be_bytes([bytes[12], bytes[13]]),
        })
    }
}

/// IPv4 header (options unsupported; IHL is always 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ipv4Header {
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// L4 protocol.
    pub proto: u8,
    /// Time to live.
    pub ttl: u8,
    /// Total length including header.
    pub tot_len: u16,
    /// Header checksum (filled by the builder).
    pub checksum: u16,
}

impl Ipv4Header {
    /// Serialize to wire format (checksum field as stored).
    pub fn to_bytes(&self) -> [u8; IPV4_HLEN] {
        let mut b = [0u8; IPV4_HLEN];
        b[0] = 0x45;
        b[2..4].copy_from_slice(&self.tot_len.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.proto;
        b[10..12].copy_from_slice(&self.checksum.to_be_bytes());
        b[12..16].copy_from_slice(&self.src);
        b[16..20].copy_from_slice(&self.dst);
        b
    }

    /// Parse from the start of `bytes`, if long enough and version 4.
    pub fn parse(bytes: &[u8]) -> Option<Ipv4Header> {
        if bytes.len() < IPV4_HLEN || bytes[0] >> 4 != 4 {
            return None;
        }
        Some(Ipv4Header {
            src: bytes[12..16].try_into().expect("4 bytes"),
            dst: bytes[16..20].try_into().expect("4 bytes"),
            proto: bytes[9],
            ttl: bytes[8],
            tot_len: u16::from_be_bytes([bytes[2], bytes[3]]),
            checksum: u16::from_be_bytes([bytes[10], bytes[11]]),
        })
    }

    /// Recompute the header checksum over serialized bytes.
    pub fn compute_checksum(&self) -> u16 {
        let mut b = self.to_bytes();
        b[10] = 0;
        b[11] = 0;
        checksum::internet_checksum(&b)
    }
}

/// UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UdpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Length including header.
    pub len: u16,
    /// Checksum (0 = unset; legal for IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Serialize to wire format.
    pub fn to_bytes(&self) -> [u8; UDP_HLEN] {
        let mut b = [0u8; UDP_HLEN];
        b[0..2].copy_from_slice(&self.sport.to_be_bytes());
        b[2..4].copy_from_slice(&self.dport.to_be_bytes());
        b[4..6].copy_from_slice(&self.len.to_be_bytes());
        b[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        b
    }

    /// Parse from the start of `bytes`, if long enough.
    pub fn parse(bytes: &[u8]) -> Option<UdpHeader> {
        if bytes.len() < UDP_HLEN {
            return None;
        }
        Some(UdpHeader {
            sport: u16::from_be_bytes([bytes[0], bytes[1]]),
            dport: u16::from_be_bytes([bytes[2], bytes[3]]),
            len: u16::from_be_bytes([bytes[4], bytes[5]]),
            checksum: u16::from_be_bytes([bytes[6], bytes[7]]),
        })
    }
}

/// TCP header (no options; data offset always 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags byte (`SYN` = 0x02, `ACK` = 0x10, `FIN` = 0x01, `RST` = 0x04).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
}

/// TCP `SYN` flag.
pub const TCP_SYN: u8 = 0x02;
/// TCP `ACK` flag.
pub const TCP_ACK: u8 = 0x10;
/// TCP `FIN` flag.
pub const TCP_FIN: u8 = 0x01;
/// TCP `RST` flag.
pub const TCP_RST: u8 = 0x04;

impl TcpHeader {
    /// Serialize to wire format.
    pub fn to_bytes(&self) -> [u8; TCP_HLEN] {
        let mut b = [0u8; TCP_HLEN];
        b[0..2].copy_from_slice(&self.sport.to_be_bytes());
        b[2..4].copy_from_slice(&self.dport.to_be_bytes());
        b[4..8].copy_from_slice(&self.seq.to_be_bytes());
        b[8..12].copy_from_slice(&self.ack.to_be_bytes());
        b[12] = 5 << 4;
        b[13] = self.flags;
        b[14..16].copy_from_slice(&self.window.to_be_bytes());
        b
    }

    /// Parse from the start of `bytes`, if long enough.
    pub fn parse(bytes: &[u8]) -> Option<TcpHeader> {
        if bytes.len() < TCP_HLEN {
            return None;
        }
        Some(TcpHeader {
            sport: u16::from_be_bytes([bytes[0], bytes[1]]),
            dport: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes")),
            ack: u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes")),
            flags: bytes[13],
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eth_roundtrip() {
        let h = EthHeader { dst: [1; 6], src: [2; 6], ethertype: 0x0800 };
        assert_eq!(EthHeader::parse(&h.to_bytes()), Some(h));
        assert_eq!(EthHeader::parse(&[0; 5]), None);
    }

    #[test]
    fn ipv4_roundtrip() {
        let h = Ipv4Header {
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            proto: 17,
            ttl: 63,
            tot_len: 100,
            checksum: 0xabcd,
        };
        assert_eq!(Ipv4Header::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn ipv4_rejects_v6() {
        let mut b = [0u8; 20];
        b[0] = 0x60;
        assert_eq!(Ipv4Header::parse(&b), None);
    }

    #[test]
    fn udp_roundtrip() {
        let h = UdpHeader { sport: 53, dport: 5353, len: 20, checksum: 1 };
        assert_eq!(UdpHeader::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn tcp_roundtrip() {
        let h = TcpHeader {
            sport: 80,
            dport: 4000,
            seq: 7,
            ack: 9,
            flags: TCP_SYN | TCP_ACK,
            window: 512,
        };
        assert_eq!(TcpHeader::parse(&h.to_bytes()), Some(h));
    }
}
