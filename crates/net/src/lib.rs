//! Packet substrate: header construction, parsing and flow identities for
//! Ethernet / IPv4 / IPv6 / UDP / TCP traffic.
//!
//! The eHDL evaluation drives 64-byte-and-up packets through XDP programs;
//! this crate provides the builders used by the traffic generators and the
//! parsers used by tests to check program effects (rewritten MACs,
//! decremented TTLs, translated ports, encapsulation headers).
//!
//! ```
//! use ehdl_net::PacketBuilder;
//!
//! let pkt = PacketBuilder::new()
//!     .eth([2, 0, 0, 0, 0, 1], [2, 0, 0, 0, 0, 2])
//!     .ipv4([10, 0, 0, 1], [10, 0, 0, 2], 17)
//!     .udp(1234, 53)
//!     .payload_len(18)
//!     .build();
//! assert_eq!(pkt.len(), 64);
//! ```

#![deny(clippy::unwrap_used)]

pub mod checksum;
pub mod flow;
pub mod headers;

pub use flow::FiveTuple;
pub use headers::{EthHeader, Ipv4Header, TcpHeader, UdpHeader};

/// EtherType for IPv4.
pub const ETH_P_IP: u16 = 0x0800;
/// EtherType for ARP.
pub const ETH_P_ARP: u16 = 0x0806;
/// EtherType for IPv6.
pub const ETH_P_IPV6: u16 = 0x86DD;
/// EtherType for 802.1Q VLAN tags.
pub const ETH_P_8021Q: u16 = 0x8100;

/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;
/// IP protocol number for ICMP.
pub const IPPROTO_ICMP: u8 = 1;

/// Ethernet header length.
pub const ETH_HLEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_HLEN: usize = 20;
/// UDP header length.
pub const UDP_HLEN: usize = 8;
/// TCP header length (no options).
pub const TCP_HLEN: usize = 20;
/// Minimum Ethernet frame (without FCS) used for line-rate tests.
pub const MIN_FRAME: usize = 64;
/// Common MTU-sized frame.
pub const MAX_FRAME: usize = 1514;

/// Byte-offset constants into a plain Eth/IPv4/L4 packet, matching what the
/// XDP programs in `ehdl-programs` hard-code (as clang would).
pub mod offsets {
    /// Destination MAC.
    pub const ETH_DST: usize = 0;
    /// Source MAC.
    pub const ETH_SRC: usize = 6;
    /// EtherType (big-endian u16).
    pub const ETH_PROTO: usize = 12;
    /// IPv4 version/IHL byte.
    pub const IP_VER_IHL: usize = 14;
    /// IPv4 total length.
    pub const IP_TOT_LEN: usize = 16;
    /// IPv4 TTL.
    pub const IP_TTL: usize = 22;
    /// IPv4 protocol.
    pub const IP_PROTO: usize = 23;
    /// IPv4 header checksum.
    pub const IP_CSUM: usize = 24;
    /// IPv4 source address.
    pub const IP_SADDR: usize = 26;
    /// IPv4 destination address.
    pub const IP_DADDR: usize = 30;
    /// L4 source port (UDP and TCP share these offsets).
    pub const L4_SPORT: usize = 34;
    /// L4 destination port.
    pub const L4_DPORT: usize = 36;
    /// UDP length field.
    pub const UDP_LEN: usize = 38;
    /// UDP checksum field.
    pub const UDP_CSUM: usize = 40;
    /// TCP flags byte.
    pub const TCP_FLAGS: usize = 47;
}

/// Fluent builder for test/benchmark packets.
///
/// The builder fills protocol fields with consistent lengths and checksums;
/// [`PacketBuilder::build`] pads to at least [`MIN_FRAME`] bytes unless a
/// smaller explicit size was forced with [`PacketBuilder::exact_len`].
#[derive(Debug, Clone, Default)]
pub struct PacketBuilder {
    eth: Option<EthHeader>,
    vlan: Option<u16>,
    ipv4: Option<Ipv4Header>,
    ipv6: Option<([u8; 16], [u8; 16], u8)>,
    udp: Option<UdpHeader>,
    tcp: Option<TcpHeader>,
    payload: Vec<u8>,
    pad_to: Option<usize>,
    exact: Option<usize>,
}

impl PacketBuilder {
    /// Start an empty packet.
    pub fn new() -> PacketBuilder {
        PacketBuilder::default()
    }

    /// Add an Ethernet header.
    pub fn eth(mut self, src: [u8; 6], dst: [u8; 6]) -> PacketBuilder {
        self.eth = Some(EthHeader { src, dst, ethertype: 0 });
        self
    }

    /// Insert an 802.1Q VLAN tag with the given VID.
    pub fn vlan(mut self, vid: u16) -> PacketBuilder {
        self.vlan = Some(vid);
        self
    }

    /// Add an IPv4 header; `proto` is the L4 protocol number.
    pub fn ipv4(mut self, src: [u8; 4], dst: [u8; 4], proto: u8) -> PacketBuilder {
        self.ipv4 = Some(Ipv4Header { src, dst, proto, ttl: 64, tot_len: 0, checksum: 0 });
        self
    }

    /// Override the IPv4 TTL (default 64).
    ///
    /// # Panics
    ///
    /// Panics if called before [`PacketBuilder::ipv4`].
    pub fn ttl(mut self, ttl: u8) -> PacketBuilder {
        self.ipv4.as_mut().expect("ttl() requires ipv4()").ttl = ttl;
        self
    }

    /// Add an IPv6 header (for EtherType classification tests).
    pub fn ipv6(mut self, src: [u8; 16], dst: [u8; 16], next: u8) -> PacketBuilder {
        self.ipv6 = Some((src, dst, next));
        self
    }

    /// Add a UDP header.
    pub fn udp(mut self, sport: u16, dport: u16) -> PacketBuilder {
        self.udp = Some(UdpHeader { sport, dport, len: 0, checksum: 0 });
        self
    }

    /// Add a TCP header with the given flags byte.
    pub fn tcp(mut self, sport: u16, dport: u16, flags: u8) -> PacketBuilder {
        self.tcp = Some(TcpHeader { sport, dport, seq: 0, ack: 0, flags, window: 0xffff });
        self
    }

    /// Append literal payload bytes.
    pub fn payload(mut self, bytes: &[u8]) -> PacketBuilder {
        self.payload.extend_from_slice(bytes);
        self
    }

    /// Append `n` deterministic filler bytes.
    pub fn payload_len(mut self, n: usize) -> PacketBuilder {
        for i in 0..n {
            self.payload.push((i & 0xff) as u8);
        }
        self
    }

    /// Pad the final frame to at least `n` bytes.
    pub fn pad_to(mut self, n: usize) -> PacketBuilder {
        self.pad_to = Some(n);
        self
    }

    /// Force an exact frame length (may truncate padding rules).
    pub fn exact_len(mut self, n: usize) -> PacketBuilder {
        self.exact = Some(n);
        self
    }

    /// Serialize the packet.
    ///
    /// # Panics
    ///
    /// Panics if both UDP and TCP were requested, or IPv4 and IPv6.
    pub fn build(self) -> Vec<u8> {
        assert!(!(self.udp.is_some() && self.tcp.is_some()), "a packet cannot be both UDP and TCP");
        assert!(
            !(self.ipv4.is_some() && self.ipv6.is_some()),
            "a packet cannot be both IPv4 and IPv6"
        );
        let mut l4 = Vec::new();
        if let Some(mut u) = self.udp {
            u.len = (UDP_HLEN + self.payload.len()) as u16;
            l4.extend_from_slice(&u.to_bytes());
        } else if let Some(t) = self.tcp {
            l4.extend_from_slice(&t.to_bytes());
        }
        l4.extend_from_slice(&self.payload);

        let mut l3 = Vec::new();
        if let Some(mut ip) = self.ipv4 {
            ip.tot_len = (IPV4_HLEN + l4.len()) as u16;
            let mut b = ip.to_bytes();
            let csum = checksum::internet_checksum(&b);
            b[10..12].copy_from_slice(&csum.to_be_bytes());
            l3.extend_from_slice(&b);
        } else if let Some((src, dst, next)) = self.ipv6 {
            let mut b = vec![0u8; 40];
            b[0] = 0x60;
            b[4..6].copy_from_slice(&(l4.len() as u16).to_be_bytes());
            b[6] = next;
            b[7] = 64;
            b[8..24].copy_from_slice(&src);
            b[24..40].copy_from_slice(&dst);
            l3.extend_from_slice(&b);
        }
        l3.extend_from_slice(&l4);

        let mut out = Vec::new();
        if let Some(mut e) = self.eth {
            e.ethertype = if self.vlan.is_some() {
                ETH_P_8021Q
            } else if self.ipv4.is_some() {
                ETH_P_IP
            } else if self.ipv6.is_some() {
                ETH_P_IPV6
            } else {
                e.ethertype
            };
            out.extend_from_slice(&e.to_bytes());
            if let Some(vid) = self.vlan {
                out.extend_from_slice(&vid.to_be_bytes());
                let inner: u16 = if self.ipv4.is_some() {
                    ETH_P_IP
                } else if self.ipv6.is_some() {
                    ETH_P_IPV6
                } else {
                    0
                };
                out.extend_from_slice(&inner.to_be_bytes());
            }
        }
        out.extend_from_slice(&l3);

        if let Some(n) = self.exact {
            out.resize(n, 0);
        } else {
            let floor = self.pad_to.unwrap_or(MIN_FRAME);
            if out.len() < floor {
                out.resize(floor, 0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_frame_padding() {
        let p = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([10, 0, 0, 1], [10, 0, 0, 2], IPPROTO_UDP)
            .udp(1, 2)
            .build();
        assert_eq!(p.len(), MIN_FRAME);
        assert_eq!(
            u16::from_be_bytes([p[offsets::ETH_PROTO], p[offsets::ETH_PROTO + 1]]),
            ETH_P_IP
        );
    }

    #[test]
    fn ipv4_header_checksums_to_zero() {
        let p = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([192, 168, 1, 1], [8, 8, 8, 8], IPPROTO_TCP)
            .tcp(4000, 80, 0x02)
            .build();
        let sum = checksum::internet_checksum(&p[ETH_HLEN..ETH_HLEN + IPV4_HLEN]);
        assert_eq!(sum, 0);
    }

    #[test]
    fn udp_length_field_set() {
        let p = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([1, 1, 1, 1], [2, 2, 2, 2], IPPROTO_UDP)
            .udp(53, 53)
            .payload_len(10)
            .build();
        let udp_len = u16::from_be_bytes([p[offsets::UDP_LEN], p[offsets::UDP_LEN + 1]]);
        assert_eq!(udp_len, 18);
    }

    #[test]
    fn vlan_tag_inserted() {
        let p = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .vlan(100)
            .ipv4([1, 1, 1, 1], [2, 2, 2, 2], IPPROTO_UDP)
            .udp(1, 2)
            .build();
        assert_eq!(u16::from_be_bytes([p[12], p[13]]), ETH_P_8021Q);
        assert_eq!(u16::from_be_bytes([p[14], p[15]]), 100);
        assert_eq!(u16::from_be_bytes([p[16], p[17]]), ETH_P_IP);
    }

    #[test]
    fn ipv6_ethertype() {
        let p =
            PacketBuilder::new().eth([1; 6], [2; 6]).ipv6([1; 16], [2; 16], IPPROTO_UDP).build();
        assert_eq!(
            u16::from_be_bytes([p[offsets::ETH_PROTO], p[offsets::ETH_PROTO + 1]]),
            ETH_P_IPV6
        );
        assert_eq!(p[14] >> 4, 6);
    }

    #[test]
    fn exact_len_honoured() {
        let p = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([1, 1, 1, 1], [2, 2, 2, 2], IPPROTO_UDP)
            .udp(1, 2)
            .exact_len(1500)
            .build();
        assert_eq!(p.len(), 1500);
    }

    #[test]
    #[should_panic(expected = "both UDP and TCP")]
    fn udp_and_tcp_rejected() {
        let _ = PacketBuilder::new().udp(1, 2).tcp(3, 4, 0).build();
    }
}
