//! Property tests on the packet substrate: header round trips, checksum
//! laws, and builder/parser agreement.

use ehdl_net::checksum::{fold, incremental_update, internet_checksum, sum};
use ehdl_net::headers::{EthHeader, Ipv4Header, TcpHeader, UdpHeader};
use ehdl_net::{FiveTuple, PacketBuilder, ETH_HLEN, IPPROTO_TCP, IPPROTO_UDP, IPV4_HLEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eth_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), ty in any::<u16>()) {
        let h = EthHeader { dst, src, ethertype: ty };
        prop_assert_eq!(EthHeader::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn ipv4_roundtrip(src in any::<[u8; 4]>(), dst in any::<[u8; 4]>(), proto in any::<u8>(),
                      ttl in any::<u8>(), len in any::<u16>(), csum in any::<u16>()) {
        let h = Ipv4Header { src, dst, proto, ttl, tot_len: len, checksum: csum };
        prop_assert_eq!(Ipv4Header::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn udp_tcp_roundtrip(sport in any::<u16>(), dport in any::<u16>(), x in any::<u16>()) {
        let u = UdpHeader { sport, dport, len: x, checksum: !x };
        prop_assert_eq!(UdpHeader::parse(&u.to_bytes()), Some(u));
        let t = TcpHeader { sport, dport, seq: u32::from(x), ack: 7, flags: 0x12, window: x };
        prop_assert_eq!(TcpHeader::parse(&t.to_bytes()), Some(t));
    }

    /// Filling in the computed checksum always verifies to zero.
    #[test]
    fn checksum_self_verifies(data in prop::collection::vec(any::<u8>(), 2..64)) {
        let mut d = data;
        if d.len() % 2 == 1 {
            d.push(0);
        }
        // Place the checksum over bytes 0..2.
        d[0] = 0;
        d[1] = 0;
        let c = internet_checksum(&d);
        d[0..2].copy_from_slice(&c.to_be_bytes());
        prop_assert_eq!(internet_checksum(&d), 0);
    }

    /// The RFC 1624 incremental form agrees with full recomputation for
    /// any single 16-bit word change.
    #[test]
    fn incremental_checksum_agrees(words in prop::collection::vec(any::<u16>(), 4..20),
                                   idx in 1usize..4, newv in any::<u16>()) {
        let mut bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        bytes[0] = 0;
        bytes[1] = 0;
        let c0 = internet_checksum(&bytes);
        bytes[0..2].copy_from_slice(&c0.to_be_bytes());

        let off = idx * 2;
        let old = u16::from_be_bytes([bytes[off], bytes[off + 1]]);
        bytes[off..off + 2].copy_from_slice(&newv.to_be_bytes());

        let inc = incremental_update(c0, old, newv);
        bytes[0] = 0;
        bytes[1] = 0;
        let full = internet_checksum(&bytes);
        prop_assert_eq!(inc, full);
    }

    /// `sum` is invariant under 2-byte-aligned concatenation splits.
    #[test]
    fn sum_is_additive(a in prop::collection::vec(any::<u8>(), 0..32),
                       b in prop::collection::vec(any::<u8>(), 0..32)) {
        let mut a = a;
        if a.len() % 2 == 1 {
            a.push(0);
        }
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        prop_assert_eq!(fold(sum(&ab)), fold(sum(&a).wrapping_add(sum(&b))));
    }

    /// Builder output is parseable and consistent for any UDP/TCP flow.
    #[test]
    fn builder_parser_agree(saddr in any::<[u8; 4]>(), daddr in any::<[u8; 4]>(),
                            sport in any::<u16>(), dport in any::<u16>(), tcp in any::<bool>(),
                            extra in 0usize..64) {
        let proto = if tcp { IPPROTO_TCP } else { IPPROTO_UDP };
        let b = PacketBuilder::new().eth([1; 6], [2; 6]).ipv4(saddr, daddr, proto);
        let b = if tcp { b.tcp(sport, dport, 0x10) } else { b.udp(sport, dport) };
        let pkt = b.payload_len(extra).build();
        prop_assert!(pkt.len() >= 64);
        // The IPv4 header checksums to zero.
        prop_assert_eq!(internet_checksum(&pkt[ETH_HLEN..ETH_HLEN + IPV4_HLEN]), 0);
        // The flow parses back exactly.
        let ft = FiveTuple::parse(&pkt).expect("ipv4 l4 packet");
        prop_assert_eq!(ft, FiveTuple { saddr, daddr, sport, dport, proto });
        // Reversal round-trips.
        prop_assert_eq!(ft.reversed().reversed(), ft);
        // The map key embeds ports big-endian.
        let key = ft.to_key();
        prop_assert_eq!(u16::from_be_bytes([key[8], key[9]]), sport);
    }
}
