//! Randomized property tests on the packet substrate: header round trips,
//! checksum laws, and builder/parser agreement.
//!
//! Formerly proptest-based; rewritten as deterministic seeded campaigns so
//! the workspace builds without crates.io access. Each test draws 256
//! random cases from a fixed seed, so failures reproduce exactly.

use ehdl_net::checksum::{fold, incremental_update, internet_checksum, sum};
use ehdl_net::headers::{EthHeader, Ipv4Header, TcpHeader, UdpHeader};
use ehdl_net::{FiveTuple, PacketBuilder, ETH_HLEN, IPPROTO_TCP, IPPROTO_UDP, IPV4_HLEN};
use ehdl_rng::Rng;

const CASES: usize = 256;

fn bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn eth_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xe7e0);
    for _ in 0..CASES {
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        rng.fill_bytes(&mut dst);
        rng.fill_bytes(&mut src);
        let h = EthHeader { dst, src, ethertype: rng.gen_u16() };
        assert_eq!(EthHeader::parse(&h.to_bytes()), Some(h));
    }
}

#[test]
fn ipv4_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x1b40);
    for _ in 0..CASES {
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        rng.fill_bytes(&mut src);
        rng.fill_bytes(&mut dst);
        let h = Ipv4Header {
            src,
            dst,
            proto: rng.gen_u8(),
            ttl: rng.gen_u8(),
            tot_len: rng.gen_u16(),
            checksum: rng.gen_u16(),
        };
        assert_eq!(Ipv4Header::parse(&h.to_bytes()), Some(h));
    }
}

#[test]
fn udp_tcp_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x0d97);
    for _ in 0..CASES {
        let (sport, dport, x) = (rng.gen_u16(), rng.gen_u16(), rng.gen_u16());
        let u = UdpHeader { sport, dport, len: x, checksum: !x };
        assert_eq!(UdpHeader::parse(&u.to_bytes()), Some(u));
        let t = TcpHeader { sport, dport, seq: u32::from(x), ack: 7, flags: 0x12, window: x };
        assert_eq!(TcpHeader::parse(&t.to_bytes()), Some(t));
    }
}

/// Filling in the computed checksum always verifies to zero.
#[test]
fn checksum_self_verifies() {
    let mut rng = Rng::seed_from_u64(0xc5e1);
    for _ in 0..CASES {
        let len = rng.gen_range_u64(2, 63) as usize;
        let mut d = bytes(&mut rng, len);
        if d.len() % 2 == 1 {
            d.push(0);
        }
        // Place the checksum over bytes 0..2.
        d[0] = 0;
        d[1] = 0;
        let c = internet_checksum(&d);
        d[0..2].copy_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&d), 0);
    }
}

/// The RFC 1624 incremental form agrees with full recomputation for any
/// single 16-bit word change.
#[test]
fn incremental_checksum_agrees() {
    let mut rng = Rng::seed_from_u64(0x16c4);
    for _ in 0..CASES {
        let nwords = rng.gen_range_u64(4, 19) as usize;
        let mut bytes: Vec<u8> = (0..nwords).flat_map(|_| rng.gen_u16().to_be_bytes()).collect();
        bytes[0] = 0;
        bytes[1] = 0;
        let c0 = internet_checksum(&bytes);
        bytes[0..2].copy_from_slice(&c0.to_be_bytes());

        let idx = rng.gen_range_u64(1, 3) as usize;
        let newv = rng.gen_u16();
        let off = idx * 2;
        let old = u16::from_be_bytes([bytes[off], bytes[off + 1]]);
        bytes[off..off + 2].copy_from_slice(&newv.to_be_bytes());

        let inc = incremental_update(c0, old, newv);
        bytes[0] = 0;
        bytes[1] = 0;
        let full = internet_checksum(&bytes);
        assert_eq!(inc, full);
    }
}

/// `sum` is invariant under 2-byte-aligned concatenation splits.
#[test]
fn sum_is_additive() {
    let mut rng = Rng::seed_from_u64(0xadd1);
    for _ in 0..CASES {
        let alen = rng.gen_range_u64(0, 31) as usize;
        let mut a = bytes(&mut rng, alen);
        let blen = rng.gen_range_u64(0, 31) as usize;
        let b = bytes(&mut rng, blen);
        if a.len() % 2 == 1 {
            a.push(0);
        }
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        assert_eq!(fold(sum(&ab)), fold(sum(&a).wrapping_add(sum(&b))));
    }
}

/// Builder output is parseable and consistent for any UDP/TCP flow.
#[test]
fn builder_parser_agree() {
    let mut rng = Rng::seed_from_u64(0xb01d);
    for _ in 0..CASES {
        let mut saddr = [0u8; 4];
        let mut daddr = [0u8; 4];
        rng.fill_bytes(&mut saddr);
        rng.fill_bytes(&mut daddr);
        let (sport, dport) = (rng.gen_u16(), rng.gen_u16());
        let tcp = rng.gen_bool();
        let extra = rng.gen_range_u64(0, 63) as usize;

        let proto = if tcp { IPPROTO_TCP } else { IPPROTO_UDP };
        let b = PacketBuilder::new().eth([1; 6], [2; 6]).ipv4(saddr, daddr, proto);
        let b = if tcp { b.tcp(sport, dport, 0x10) } else { b.udp(sport, dport) };
        let pkt = b.payload_len(extra).build();
        assert!(pkt.len() >= 64);
        // The IPv4 header checksums to zero.
        assert_eq!(internet_checksum(&pkt[ETH_HLEN..ETH_HLEN + IPV4_HLEN]), 0);
        // The flow parses back exactly.
        let ft = FiveTuple::parse(&pkt).expect("ipv4 l4 packet");
        assert_eq!(ft, FiveTuple { saddr, daddr, sport, dport, proto });
        // Reversal round-trips.
        assert_eq!(ft.reversed().reversed(), ft);
        // The map key embeds ports big-endian.
        let key = ft.to_key();
        assert_eq!(u16::from_be_bytes([key[8], key[9]]), sport);
    }
}
