//! Shared assembly idioms: the XDP prologue, packet bounds checks and
//! 5-tuple key construction — the code clang emits at the top of every
//! XDP program.

use ehdl_ebpf::asm::{Asm, Label};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::vm::xdp_md;

/// Register that holds `data` (the packet pointer) after [`prologue`].
pub const PKT: u8 = 7;
/// Register that holds `data_end` after [`prologue`].
pub const PKT_END: u8 = 8;
/// Callee-saved scratch register holding the saved context pointer.
pub const CTX: u8 = 6;

/// Emit the standard XDP prologue: save ctx in `r6`, load `data` into `r7`
/// and `data_end` into `r8`.
pub fn prologue(a: &mut Asm) {
    a.mov64_reg(CTX, 1);
    a.load(MemSize::W, PKT, 1, xdp_md::DATA as i16);
    a.load(MemSize::W, PKT_END, 1, xdp_md::DATA_END as i16);
}

/// Emit `if data + need > data_end goto fail` using `r1` as scratch.
pub fn bounds_check(a: &mut Asm, need: i32, fail: Label) {
    a.mov64_reg(1, PKT);
    a.alu64_imm(AluOp::Add, 1, need);
    a.jmp_reg(JmpOp::Jgt, 1, PKT_END, fail);
}

/// Emit a terminal `r0 = action; exit` block bound to `label`.
pub fn exit_with(a: &mut Asm, label: Label, action: i32) {
    a.bind(label);
    a.mov64_imm(0, action);
    a.exit();
}

/// Load the big-endian EtherType at packet offset 12 into `dst`
/// (clobbers `r1`).
pub fn load_ethertype(a: &mut Asm, dst: u8) {
    a.load(MemSize::B, dst, PKT, 12);
    a.load(MemSize::B, 1, PKT, 13);
    a.alu64_imm(AluOp::Lsh, dst, 8);
    a.alu64_reg(AluOp::Or, dst, 1);
}

/// Build the 13-byte 5-tuple key `{saddr, daddr, sport, dport, proto}` on
/// the stack at `fp + base` (base negative), reading from a plain
/// Eth/IPv4/L4 packet. Clobbers `r1`.
///
/// Addresses/ports are stored in network byte order, exactly as the C
/// programs `__builtin_memcpy` them out of the headers.
pub fn build_fivetuple_key(a: &mut Asm, base: i16) {
    // saddr (offset 26) and daddr (offset 30), 4B each, raw order.
    a.load(MemSize::W, 1, PKT, 26);
    a.store_reg(MemSize::W, 10, base, 1);
    a.load(MemSize::W, 1, PKT, 30);
    a.store_reg(MemSize::W, 10, base + 4, 1);
    // sport/dport as one 4-byte chunk (offset 34).
    a.load(MemSize::W, 1, PKT, 34);
    a.store_reg(MemSize::W, 10, base + 8, 1);
    // proto byte (offset 23).
    a.load(MemSize::B, 1, PKT, 23);
    a.store_reg(MemSize::B, 10, base + 12, 1);
}

/// Build the *reversed* 5-tuple key (daddr, saddr, dport, sport, proto) at
/// `fp + base`. Clobbers `r1` and `r2`.
pub fn build_reverse_fivetuple_key(a: &mut Asm, base: i16) {
    a.load(MemSize::W, 1, PKT, 30);
    a.store_reg(MemSize::W, 10, base, 1);
    a.load(MemSize::W, 1, PKT, 26);
    a.store_reg(MemSize::W, 10, base + 4, 1);
    // swap the 16-bit port fields
    a.load(MemSize::H, 1, PKT, 36);
    a.store_reg(MemSize::H, 10, base + 8, 1);
    a.load(MemSize::H, 2, PKT, 34);
    a.store_reg(MemSize::H, 10, base + 10, 2);
    a.load(MemSize::B, 1, PKT, 23);
    a.store_reg(MemSize::B, 10, base + 12, 1);
}

/// Emit an atomic increment of `map[key_imm]` (an array map of u64
/// counters): the Listing-1 `__sync_fetch_and_add(value, 1)` idiom.
/// Clobbers `r1`–`r5` (helper call ABI) plus the stack word at `fp - 4`.
pub fn bump_counter(a: &mut Asm, map_id: u32, key_imm: i32) {
    let skip = a.new_label();
    a.mov64_imm(1, key_imm);
    a.store_reg(MemSize::W, 10, -4, 1);
    a.ld_map_fd(1, map_id);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -4);
    a.call(ehdl_ebpf::helpers::BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
    a.mov64_imm(2, 1);
    a.atomic_add64(0, 0, 2);
    a.bind(skip);
}

/// XDP action immediates.
pub mod action {
    /// `XDP_ABORTED`.
    pub const ABORTED: i32 = 0;
    /// `XDP_DROP`.
    pub const DROP: i32 = 1;
    /// `XDP_PASS`.
    pub const PASS: i32 = 2;
    /// `XDP_TX`.
    pub const TX: i32 = 3;
    /// `XDP_REDIRECT`.
    pub const REDIRECT: i32 = 4;
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::maps::{MapDef, MapKind};
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_ebpf::Program;
    use ehdl_net::{PacketBuilder, IPPROTO_UDP};

    #[test]
    fn prologue_and_bounds_check() {
        let mut a = Asm::new();
        let drop = a.new_label();
        prologue(&mut a);
        bounds_check(&mut a, 14, drop);
        a.mov64_imm(0, action::PASS);
        a.exit();
        exit_with(&mut a, drop, action::DROP);
        let p = Program::from_insns(a.into_insns());
        let mut vm = Vm::new(&p);
        assert_eq!(vm.run(&mut vec![0; 64], 0).unwrap().action, XdpAction::Pass);
        assert_eq!(vm.run(&mut vec![0; 10], 0).unwrap().action, XdpAction::Drop);
    }

    #[test]
    fn ethertype_loads_big_endian() {
        let mut a = Asm::new();
        let drop = a.new_label();
        prologue(&mut a);
        bounds_check(&mut a, 14, drop);
        load_ethertype(&mut a, 0);
        a.exit();
        exit_with(&mut a, drop, action::DROP);
        let p = Program::from_insns(a.into_insns());
        let pkt = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([1, 1, 1, 1], [2, 2, 2, 2], IPPROTO_UDP)
            .udp(1, 2)
            .build();
        let out = Vm::new(&p).run(&mut pkt.clone(), 0).unwrap();
        assert_eq!(out.r0, u64::from(ehdl_net::ETH_P_IP));
    }

    #[test]
    fn fivetuple_key_layout_matches_net_crate() {
        let mut a = Asm::new();
        let drop = a.new_label();
        prologue(&mut a);
        bounds_check(&mut a, 42, drop);
        build_fivetuple_key(&mut a, -16);
        // Return first word of the key for inspection.
        a.load(MemSize::W, 0, 10, -16);
        a.exit();
        exit_with(&mut a, drop, action::DROP);
        let p = Program::from_insns(a.into_insns());
        let pkt = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([10, 1, 2, 3], [4, 5, 6, 7], IPPROTO_UDP)
            .udp(99, 100)
            .build();
        let out = Vm::new(&p).run(&mut pkt.clone(), 0).unwrap();
        assert_eq!(out.r0.to_le_bytes()[..4], [10, 1, 2, 3]);
    }

    #[test]
    fn bump_counter_increments() {
        let mut a = Asm::new();
        prologue(&mut a);
        bump_counter(&mut a, 0, 2);
        a.mov64_imm(0, action::PASS);
        a.exit();
        let p = Program::new(
            "c",
            a.into_insns(),
            vec![MapDef::new(0, "stats", MapKind::Array, 4, 8, 4)],
        );
        let mut vm = Vm::new(&p);
        for _ in 0..3 {
            vm.run(&mut vec![0; 64], 0).unwrap();
        }
        let m = vm.maps().get(0).unwrap();
        assert_eq!(u64::from_le_bytes(m.value(2).try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(m.value(0).try_into().unwrap()), 0);
    }
}
