//! Dynamic source NAT (Table 1: "an application performing dynamic source
//! NAT") — the program SDNet P4 *cannot* express, because the address
//! translation table is allocated and written from the data plane itself.
//!
//! On the first packet of a UDP flow the program allocates a fresh source
//! port from a shared counter (an atomic fetch-and-add on global state) and
//! binds the flow in the connection table (`bpf_map_update_elem` — the
//! data-plane map write). Subsequent packets of the flow hit the binding
//! and get their source address/port rewritten, with an incremental IPv4
//! checksum patch.
//!
//! The lookup→update distance on the connection table is what gives DNAT
//! its large RAW window (Table 3: L = 51): the write happens only on a
//! miss, after the whole port-selection sequence.

use crate::common::{self, action, PKT};
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
use ehdl_ebpf::maps::{MapDef, MapKind, MapStore};
use ehdl_ebpf::opcode::{AluOp, AtomicOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_net::{ETH_P_IP, IPPROTO_UDP};

/// Map id of the connection (binding) table.
pub const CONN_MAP: u32 = 0;
/// Map id of the port allocator (single u64 counter).
pub const PORT_ALLOC_MAP: u32 = 1;
/// Map id of the statistics array.
pub const STATS_MAP: u32 = 2;
/// Statistics key: translated packets.
pub const STAT_TRANSLATED: u32 = 0;
/// Statistics key: new bindings created.
pub const STAT_BOUND: u32 = 1;

/// The NAT public address written into translated packets.
pub const NAT_ADDR: [u8; 4] = [198, 51, 100, 1];
/// First port of the dynamic range.
pub const PORT_BASE: u16 = 20000;
/// Size of the dynamic port range (power of two).
pub const PORT_RANGE: u16 = 16384;

const FWD_KEY: i16 = -32;
const VAL: i16 = -48;

/// Build the DNAT program.
pub fn program() -> Program {
    let mut a = Asm::new();
    let pass = a.new_label();
    let drop = a.new_label();
    let have_binding = a.new_label();
    let rewrite = a.new_label();

    common::prologue(&mut a);
    common::bounds_check(&mut a, 42, drop);
    common::load_ethertype(&mut a, 2);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(ETH_P_IP), pass);
    a.load(MemSize::B, 2, PKT, 23);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(IPPROTO_UDP), pass);

    // Connection-table lookup on the forward 5-tuple.
    common::build_fivetuple_key(&mut a, FWD_KEY);
    a.ld_map_fd(1, CONN_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(FWD_KEY));
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jne, 0, 0, have_binding);

    // Miss: allocate a port with an atomic fetch-and-add on the shared
    // counter (global state — handled by the atomic primitive in hardware).
    a.mov64_imm(1, 0);
    a.store_reg(MemSize::W, 10, -52, 1);
    a.ld_map_fd(1, PORT_ALLOC_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -52);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, drop); // array lookup cannot miss
    a.mov64_imm(2, 1);
    a.atomic(AtomicOp::Add { fetch: true }, MemSize::Dw, 0, 0, 2);
    // r2 now holds the old counter value; derive the port.
    a.alu64_imm(AluOp::And, 2, i32::from(PORT_RANGE - 1));
    a.alu64_imm(AluOp::Add, 2, i32::from(PORT_BASE));

    // Build the binding value {nat_addr(4), nat_port_be(2), pad(2)}.
    a.mov64_imm(1, i32::from_le_bytes(NAT_ADDR));
    a.store_reg(MemSize::W, 10, VAL, 1);
    // Store the port big-endian, as it appears on the wire.
    a.mov64_reg(3, 2);
    a.alu64_imm(AluOp::Rsh, 3, 8);
    a.store_reg(MemSize::B, 10, VAL + 4, 3);
    a.store_reg(MemSize::B, 10, VAL + 5, 2);
    a.mov64_imm(1, 0);
    a.store_reg(MemSize::H, 10, VAL + 6, 1);

    // Bind the flow: the data-plane map write SDNet cannot express.
    a.ld_map_fd(1, CONN_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(FWD_KEY));
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, i32::from(VAL));
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);
    common::bump_counter(&mut a, STATS_MAP, STAT_BOUND as i32);
    // Re-read the binding we just wrote so both paths rewrite identically.
    a.ld_map_fd(1, CONN_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(FWD_KEY));
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, drop);

    a.bind(have_binding);
    a.mov64_reg(9, 0); // binding pointer
    a.jmp(rewrite);

    // Rewrite saddr and sport from the binding, patching the IP checksum
    // incrementally for the two changed address words.
    a.bind(rewrite);
    // old address words (big-endian).
    a.load(MemSize::B, 2, PKT, 26);
    a.load(MemSize::B, 3, PKT, 27);
    a.alu64_imm(AluOp::Lsh, 2, 8);
    a.alu64_reg(AluOp::Or, 2, 3); // old sa_hi
    a.load(MemSize::B, 3, PKT, 28);
    a.load(MemSize::B, 4, PKT, 29);
    a.alu64_imm(AluOp::Lsh, 3, 8);
    a.alu64_reg(AluOp::Or, 3, 4); // old sa_lo
                                  // accumulate ~old words into r5 (start from current checksum).
    a.load(MemSize::B, 4, PKT, 24);
    a.load(MemSize::B, 5, PKT, 25);
    a.alu64_imm(AluOp::Lsh, 4, 8);
    a.alu64_reg(AluOp::Or, 4, 5);
    a.alu64_imm(AluOp::Xor, 4, 0xffff); // ~HC
    a.alu64_imm(AluOp::Xor, 2, 0xffff);
    a.alu64_imm(AluOp::Xor, 3, 0xffff);
    a.alu64_reg(AluOp::Add, 4, 2);
    a.alu64_reg(AluOp::Add, 4, 3);
    // write the new source address (bytes) and add its words.
    a.load(MemSize::W, 1, 9, 0);
    a.store_reg(MemSize::W, PKT, 26, 1);
    a.load(MemSize::B, 2, PKT, 26);
    a.load(MemSize::B, 3, PKT, 27);
    a.alu64_imm(AluOp::Lsh, 2, 8);
    a.alu64_reg(AluOp::Or, 2, 3);
    a.alu64_reg(AluOp::Add, 4, 2);
    a.load(MemSize::B, 2, PKT, 28);
    a.load(MemSize::B, 3, PKT, 29);
    a.alu64_imm(AluOp::Lsh, 2, 8);
    a.alu64_reg(AluOp::Or, 2, 3);
    a.alu64_reg(AluOp::Add, 4, 2);
    // fold twice, complement, store.
    a.mov64_reg(2, 4);
    a.alu64_imm(AluOp::Rsh, 2, 16);
    a.alu64_imm(AluOp::And, 4, 0xffff);
    a.alu64_reg(AluOp::Add, 4, 2);
    a.mov64_reg(2, 4);
    a.alu64_imm(AluOp::Rsh, 2, 16);
    a.alu64_imm(AluOp::And, 4, 0xffff);
    a.alu64_reg(AluOp::Add, 4, 2);
    a.alu64_imm(AluOp::Xor, 4, 0xffff);
    a.mov64_reg(2, 4);
    a.alu64_imm(AluOp::Rsh, 2, 8);
    a.store_reg(MemSize::B, PKT, 24, 2);
    a.store_reg(MemSize::B, PKT, 25, 4);
    // New source port (already big-endian in the binding).
    a.load(MemSize::H, 1, 9, 4);
    a.store_reg(MemSize::H, PKT, 34, 1);
    // Clear the UDP checksum (legal for IPv4) instead of recomputing it.
    a.mov64_imm(1, 0);
    a.store_reg(MemSize::H, PKT, 40, 1);

    common::bump_counter(&mut a, STATS_MAP, STAT_TRANSLATED as i32);
    a.mov64_imm(0, action::TX);
    a.exit();

    common::exit_with(&mut a, pass, action::PASS);
    common::exit_with(&mut a, drop, action::DROP);

    Program::new(
        "dnat",
        a.into_insns(),
        vec![
            MapDef::new(CONN_MAP, "conn", MapKind::Hash, 13, 8, 32768),
            MapDef::new(PORT_ALLOC_MAP, "port_alloc", MapKind::Array, 4, 8, 1),
            MapDef::new(STATS_MAP, "nat_stats", MapKind::Array, 4, 8, 4),
        ],
    )
}

/// Host-side view of `[translated, bound]`.
pub fn read_stats(maps: &MapStore) -> [u64; 2] {
    let m = maps.get(STATS_MAP).expect("stats map exists");
    let read = |i: usize| u64::from_le_bytes(m.value(i).try_into().expect("8-byte counter"));
    [read(0), read(1)]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_net::{checksum, offsets, FiveTuple, ETH_HLEN, IPV4_HLEN};
    use ehdl_traffic::build_flow_packet;

    fn flow(sport: u16) -> FiveTuple {
        FiveTuple {
            saddr: [10, 0, 0, 42],
            daddr: [8, 8, 8, 8],
            sport,
            dport: 53,
            proto: IPPROTO_UDP,
        }
    }

    fn pkt(f: &FiveTuple) -> Vec<u8> {
        build_flow_packet(f, [2; 6], [4; 6], 64)
    }

    #[test]
    fn first_packet_binds_and_translates() {
        let p = program();
        let mut vm = Vm::new(&p);
        let f = flow(5555);
        let mut packet = pkt(&f);
        let out = vm.run(&mut packet, 0).unwrap();
        assert_eq!(out.action, XdpAction::Tx);
        assert_eq!(&packet[offsets::IP_SADDR..offsets::IP_SADDR + 4], &NAT_ADDR);
        let new_port =
            u16::from_be_bytes([packet[offsets::L4_SPORT], packet[offsets::L4_SPORT + 1]]);
        assert_eq!(new_port, PORT_BASE); // first allocation
        assert_eq!(checksum::internet_checksum(&packet[ETH_HLEN..ETH_HLEN + IPV4_HLEN]), 0);
        assert_eq!(read_stats(vm.maps()), [1, 1]);
    }

    #[test]
    fn same_flow_keeps_binding_new_flow_gets_next_port() {
        let p = program();
        let mut vm = Vm::new(&p);
        let f1 = flow(5555);
        let f2 = flow(6666);

        let mut p1 = pkt(&f1);
        vm.run(&mut p1, 0).unwrap();
        let port1 = u16::from_be_bytes([p1[offsets::L4_SPORT], p1[offsets::L4_SPORT + 1]]);

        let mut p1b = pkt(&f1);
        vm.run(&mut p1b, 0).unwrap();
        let port1b = u16::from_be_bytes([p1b[offsets::L4_SPORT], p1b[offsets::L4_SPORT + 1]]);
        assert_eq!(port1, port1b, "same flow must keep its binding");

        let mut p2 = pkt(&f2);
        vm.run(&mut p2, 0).unwrap();
        let port2 = u16::from_be_bytes([p2[offsets::L4_SPORT], p2[offsets::L4_SPORT + 1]]);
        assert_eq!(port2, port1 + 1, "second flow gets the next port");

        assert_eq!(read_stats(vm.maps()), [3, 2]);
    }

    #[test]
    fn destination_fields_untouched() {
        let p = program();
        let mut vm = Vm::new(&p);
        let f = flow(5555);
        let mut packet = pkt(&f);
        vm.run(&mut packet, 0).unwrap();
        assert_eq!(&packet[offsets::IP_DADDR..offsets::IP_DADDR + 4], &f.daddr);
        let dport = u16::from_be_bytes([packet[offsets::L4_DPORT], packet[offsets::L4_DPORT + 1]]);
        assert_eq!(dport, f.dport);
    }

    #[test]
    fn non_udp_passes() {
        let p = program();
        let mut vm = Vm::new(&p);
        let mut tcp = ehdl_net::PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([10, 0, 0, 1], [8, 8, 8, 8], ehdl_net::IPPROTO_TCP)
            .tcp(1, 2, 0)
            .build();
        assert_eq!(vm.run(&mut tcp, 0).unwrap().action, XdpAction::Pass);
    }

    #[test]
    fn port_range_wraps() {
        let p = program();
        let mut vm = Vm::new(&p);
        // Pre-advance the allocator to the end of the range.
        let m = vm.maps_mut().get_mut(PORT_ALLOC_MAP).unwrap();
        m.value_mut(0).copy_from_slice(&(u64::from(PORT_RANGE) - 1).to_le_bytes());
        let mut p1 = pkt(&flow(5555));
        vm.run(&mut p1, 0).unwrap();
        let port = u16::from_be_bytes([p1[offsets::L4_SPORT], p1[offsets::L4_SPORT + 1]]);
        assert_eq!(port, PORT_BASE + PORT_RANGE - 1);
        let mut p2 = pkt(&flow(6666));
        vm.run(&mut p2, 0).unwrap();
        let port2 = u16::from_be_bytes([p2[offsets::L4_SPORT], p2[offsets::L4_SPORT + 1]]);
        assert_eq!(port2, PORT_BASE, "allocator wraps to the range base");
    }
}
