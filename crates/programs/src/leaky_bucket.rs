//! Leaky Bucket rate limiter — the §5.3 flush microbenchmark.
//!
//! Each flow's bucket holds `{tokens, last_refill_ns}`. The program must
//! read both fields, compute the refill from `bpf_ktime_get_ns`, and write
//! both fields back: a multi-word read-modify-write that *cannot* be
//! expressed with a single atomic operation, so the generated hardware has
//! a genuine RAW window and flushes whenever two packets of the same flow
//! are in it simultaneously (Table 2).

use crate::common::{self, action};
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::{BPF_KTIME_GET_NS, BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
use ehdl_ebpf::maps::{MapDef, MapKind, MapStore};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_net::{ETH_P_IP, IPPROTO_UDP};

/// Map id of the per-flow bucket table (value: tokens u64 + last_ns u64).
pub const BUCKETS_MAP: u32 = 0;
/// Map id of the statistics array.
pub const STATS_MAP: u32 = 1;
/// Statistics key: forwarded packets.
pub const STAT_FORWARDED: u32 = 0;
/// Statistics key: rate-limited drops.
pub const STAT_LIMITED: u32 = 1;

/// Bucket capacity in tokens.
pub const BURST: u64 = 16;
/// One token is refilled every `2^REFILL_SHIFT` nanoseconds (~1 µs).
pub const REFILL_SHIFT: u32 = 10;

const KEY: i16 = -32;
const VAL: i16 = -48;

/// Build the leaky-bucket program.
pub fn program() -> Program {
    let mut a = Asm::new();
    let pass = a.new_label();
    let drop = a.new_label();
    let miss = a.new_label();
    let limited = a.new_label();
    let fwd = a.new_label();

    common::prologue(&mut a);
    common::bounds_check(&mut a, 42, drop);
    common::load_ethertype(&mut a, 2);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(ETH_P_IP), pass);
    a.load(MemSize::B, 2, common::PKT, 23);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(IPPROTO_UDP), pass);

    common::build_fivetuple_key(&mut a, KEY);
    a.ld_map_fd(1, BUCKETS_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(KEY));
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, miss);
    a.mov64_reg(9, 0); // bucket pointer

    // now = ktime; refill = (now - last) >> REFILL_SHIFT.
    a.call(BPF_KTIME_GET_NS);
    a.mov64_reg(7, 0); // now (r7 no longer needed as pkt ptr)
    a.load(MemSize::Dw, 2, 9, 0); // tokens
    a.load(MemSize::Dw, 3, 9, 8); // last_ns
    a.mov64_reg(4, 7);
    a.alu64_reg(AluOp::Sub, 4, 3);
    a.alu64_imm(AluOp::Rsh, 4, REFILL_SHIFT as i32);
    a.alu64_reg(AluOp::Add, 2, 4);
    let no_cap = a.new_label();
    a.jmp_imm(JmpOp::Jle, 2, BURST as i32, no_cap);
    a.mov64_imm(2, BURST as i32);
    a.bind(no_cap);
    a.jmp_imm(JmpOp::Jeq, 2, 0, limited);
    a.alu64_imm(AluOp::Sub, 2, 1);
    // Write back both fields: the non-atomizable RAW window.
    a.store_reg(MemSize::Dw, 9, 0, 2);
    a.store_reg(MemSize::Dw, 9, 8, 7);
    a.jmp(fwd);

    // First packet of a flow: init the bucket via map update.
    a.bind(miss);
    a.call(BPF_KTIME_GET_NS);
    a.mov64_imm(1, (BURST - 1) as i32);
    a.store_reg(MemSize::Dw, 10, VAL, 1);
    a.store_reg(MemSize::Dw, 10, VAL + 8, 0);
    a.ld_map_fd(1, BUCKETS_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(KEY));
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, i32::from(VAL));
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);

    a.bind(fwd);
    common::bump_counter(&mut a, STATS_MAP, STAT_FORWARDED as i32);
    a.mov64_imm(0, action::TX);
    a.exit();

    a.bind(limited);
    // Keep last_ns fresh so a silent flow refills from its drop time.
    a.store_reg(MemSize::Dw, 9, 8, 7);
    common::bump_counter(&mut a, STATS_MAP, STAT_LIMITED as i32);
    a.mov64_imm(0, action::DROP);
    a.exit();

    common::exit_with(&mut a, pass, action::PASS);
    common::exit_with(&mut a, drop, action::DROP);

    Program::new(
        "leaky_bucket",
        a.into_insns(),
        vec![
            MapDef::new(BUCKETS_MAP, "buckets", MapKind::Hash, 13, 16, 262144),
            MapDef::new(STATS_MAP, "lb_stats", MapKind::Array, 4, 8, 4),
        ],
    )
}

/// Host-side view of `[forwarded, limited]`.
pub fn read_stats(maps: &MapStore) -> [u64; 2] {
    let m = maps.get(STATS_MAP).expect("stats map exists");
    let read = |i: usize| u64::from_le_bytes(m.value(i).try_into().expect("8-byte counter"));
    [read(0), read(1)]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_net::FiveTuple;
    use ehdl_traffic::build_flow_packet;

    fn flow() -> FiveTuple {
        FiveTuple {
            saddr: [10, 0, 0, 1],
            daddr: [10, 0, 0, 2],
            sport: 1111,
            dport: 2222,
            proto: IPPROTO_UDP,
        }
    }

    #[test]
    fn burst_then_rate_limit() {
        let p = program();
        let mut vm = Vm::new(&p);
        // All packets at t=0: the first opens with BURST-1 tokens, the next
        // BURST-1 spend them, then drops begin.
        vm.set_time_ns(0);
        let mut forwarded = 0;
        let mut dropped = 0;
        for _ in 0..(BURST + 10) {
            let out = vm.run(&mut build_flow_packet(&flow(), [1; 6], [2; 6], 64), 0).unwrap();
            match out.action {
                XdpAction::Tx => forwarded += 1,
                XdpAction::Drop => dropped += 1,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(forwarded, BURST);
        assert_eq!(dropped, 10);
        assert_eq!(read_stats(vm.maps()), [BURST, 10]);
    }

    #[test]
    fn tokens_refill_over_time() {
        let p = program();
        let mut vm = Vm::new(&p);
        vm.set_time_ns(0);
        // Exhaust the bucket.
        for _ in 0..BURST + 2 {
            vm.run(&mut build_flow_packet(&flow(), [1; 6], [2; 6], 64), 0).unwrap();
        }
        // Advance time enough to refill a few tokens.
        vm.set_time_ns(5 << REFILL_SHIFT);
        let out = vm.run(&mut build_flow_packet(&flow(), [1; 6], [2; 6], 64), 0).unwrap();
        assert_eq!(out.action, XdpAction::Tx);
    }

    #[test]
    fn flows_do_not_interfere() {
        let p = program();
        let mut vm = Vm::new(&p);
        vm.set_time_ns(0);
        for _ in 0..BURST + 5 {
            vm.run(&mut build_flow_packet(&flow(), [1; 6], [2; 6], 64), 0).unwrap();
        }
        let other = FiveTuple { sport: 9999, ..flow() };
        let out = vm.run(&mut build_flow_packet(&other, [1; 6], [2; 6], 64), 0).unwrap();
        assert_eq!(out.action, XdpAction::Tx, "fresh flow has its own bucket");
    }

    #[test]
    fn non_udp_passes() {
        let p = program();
        let mut vm = Vm::new(&p);
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(vm.run(&mut arp, 0).unwrap().action, XdpAction::Pass);
    }
}
