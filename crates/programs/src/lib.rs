//! The real-world eBPF/XDP applications used in the eHDL evaluation
//! (Table 1), plus the paper's running example and the Leaky Bucket
//! microbenchmark:
//!
//! | module | paper application | state pattern |
//! |---|---|---|
//! | [`toy_counter`] | Listing 1/2 running example | global counters (atomic) |
//! | [`simple_firewall`] | Simple firewall: bidirectional UDP connectivity | per-flow hash + update |
//! | [`router`] | Linux `xdp_router_ipv4` | LPM routes (host-written) + global counters |
//! | [`tunnel`] | Linux `xdp_tx_iptunnel` | hash endpoints (host-written) + global counters |
//! | [`dnat`] | dynamic source NAT | per-flow hash read/write + atomic port allocator |
//! | [`suricata`] | Suricata IDS fast-path filter | ACL hash + global counters |
//! | [`leaky_bucket`] | §5.3 flush microbenchmark | per-flow read-modify-write (non-atomizable) |
//!
//! Every module exposes `program()` returning the unmodified bytecode the
//! compiler consumes, host-side map setup helpers, and behavioural tests
//! against the reference VM.

#![deny(clippy::unwrap_used)]

pub mod common;
pub mod dnat;
pub mod leaky_bucket;
pub mod router;
pub mod simple_firewall;
pub mod suricata;
pub mod toy_counter;
pub mod tunnel;

use ehdl_ebpf::Program;

/// A named evaluation application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Simple UDP firewall.
    Firewall,
    /// IPv4 router.
    Router,
    /// IP-in-IP TX tunnel.
    Tunnel,
    /// Dynamic source NAT.
    Dnat,
    /// Suricata IDS filter.
    Suricata,
}

impl App {
    /// All five Table-1 applications in the paper's presentation order.
    pub const ALL: [App; 5] = [App::Firewall, App::Router, App::Tunnel, App::Dnat, App::Suricata];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Firewall => "Firewall",
            App::Router => "Router",
            App::Tunnel => "Tunnel",
            App::Dnat => "DNAT",
            App::Suricata => "Suricata",
        }
    }

    /// Build the application's program.
    pub fn program(self) -> Program {
        match self {
            App::Firewall => simple_firewall::program(),
            App::Router => router::program(),
            App::Tunnel => tunnel::program(),
            App::Dnat => dnat::program(),
            App::Suricata => suricata::program(),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
