//! IPv4 router, modelled on the kernel sample `xdp_router_ipv4`
//! (Table 1: "parse pkt headers up to IP, look up in routing table and
//! forward (redirect)").
//!
//! The routing table is an LPM-trie map written by the host control plane
//! (the "host writes maps, data plane reads" pattern of §6); each entry
//! carries the egress ifindex and next-hop/self MAC addresses. The data
//! plane rewrites both MACs, decrements the TTL, patches the IPv4 header
//! checksum incrementally (RFC 1624), counts the forwarded packet in a
//! global statistics array, and redirects.

use crate::common::{self, action, PKT};
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_REDIRECT};
use ehdl_ebpf::maps::{MapDef, MapKind, MapStore, UpdateFlags};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_net::ETH_P_IP;

/// Map id of the LPM routing table.
pub const ROUTES_MAP: u32 = 0;
/// Map id of the statistics array.
pub const STATS_MAP: u32 = 1;
/// Statistics key: forwarded packets.
pub const STAT_FORWARDED: u32 = 0;
/// Statistics key: no-route packets (passed to the host stack).
pub const STAT_NO_ROUTE: u32 = 1;
/// Statistics key: TTL-expired drops.
pub const STAT_TTL_EXPIRED: u32 = 2;

/// Routing-table value layout: ifindex (u32 LE) + next-hop MAC + source MAC.
pub const ROUTE_VALUE_SIZE: u32 = 16;

/// Build the router program.
pub fn program() -> Program {
    let mut a = Asm::new();
    let pass = a.new_label();
    let drop = a.new_label();
    let ttl_exp = a.new_label();
    let no_route = a.new_label();

    common::prologue(&mut a);
    common::bounds_check(&mut a, 34, drop); // Eth + IPv4
    common::load_ethertype(&mut a, 2);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(ETH_P_IP), pass);

    // TTL must remain >= 1 after decrement.
    a.load(MemSize::B, 2, PKT, 22);
    a.jmp_imm(JmpOp::Jle, 2, 1, ttl_exp);

    // LPM key {prefixlen=32, daddr} at fp-8.
    a.mov64_imm(1, 32);
    a.store_reg(MemSize::W, 10, -8, 1);
    a.load(MemSize::W, 1, PKT, 30);
    a.store_reg(MemSize::W, 10, -4, 1);
    a.ld_map_fd(1, ROUTES_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, no_route);
    a.mov64_reg(9, 0); // keep the route entry pointer across calls

    // Rewrite destination MAC from value[4..10].
    a.load(MemSize::W, 1, 9, 4);
    a.store_reg(MemSize::W, PKT, 0, 1);
    a.load(MemSize::H, 1, 9, 8);
    a.store_reg(MemSize::H, PKT, 4, 1);
    // Rewrite source MAC from value[10..16].
    a.load(MemSize::W, 1, 9, 10);
    a.store_reg(MemSize::W, PKT, 6, 1);
    a.load(MemSize::H, 1, 9, 14);
    a.store_reg(MemSize::H, PKT, 10, 1);

    // Decrement TTL and patch the checksum per RFC 1624:
    //   HC' = ~( ~HC + ~m + m' ) over 16-bit big-endian words, where m is
    //   the TTL/protocol word.
    a.load(MemSize::B, 2, PKT, 22); // ttl
    a.load(MemSize::B, 3, PKT, 23); // proto
    a.mov64_reg(4, 2);
    a.alu64_imm(AluOp::Lsh, 4, 8);
    a.alu64_reg(AluOp::Or, 4, 3); // m
    a.alu64_imm(AluOp::Sub, 2, 1); // new ttl
    a.store_reg(MemSize::B, PKT, 22, 2);
    a.alu64_imm(AluOp::Lsh, 2, 8);
    a.alu64_reg(AluOp::Or, 2, 3); // m'
    a.load(MemSize::B, 3, PKT, 24);
    a.load(MemSize::B, 5, PKT, 25);
    a.alu64_imm(AluOp::Lsh, 3, 8);
    a.alu64_reg(AluOp::Or, 3, 5); // HC
    a.alu64_imm(AluOp::Xor, 3, 0xffff); // ~HC
    a.alu64_imm(AluOp::Xor, 4, 0xffff); // ~m
    a.alu64_reg(AluOp::Add, 3, 4);
    a.alu64_reg(AluOp::Add, 3, 2); // acc
                                   // Fold twice.
    a.mov64_reg(4, 3);
    a.alu64_imm(AluOp::Rsh, 4, 16);
    a.alu64_imm(AluOp::And, 3, 0xffff);
    a.alu64_reg(AluOp::Add, 3, 4);
    a.mov64_reg(4, 3);
    a.alu64_imm(AluOp::Rsh, 4, 16);
    a.alu64_imm(AluOp::And, 3, 0xffff);
    a.alu64_reg(AluOp::Add, 3, 4);
    a.alu64_imm(AluOp::Xor, 3, 0xffff); // HC'
                                        // Store big-endian.
    a.mov64_reg(4, 3);
    a.alu64_imm(AluOp::Rsh, 4, 8);
    a.store_reg(MemSize::B, PKT, 24, 4);
    a.store_reg(MemSize::B, PKT, 25, 3);

    // Count and redirect to the route's ifindex.
    common::bump_counter(&mut a, STATS_MAP, STAT_FORWARDED as i32);
    a.load(MemSize::W, 1, 9, 0);
    a.mov64_imm(2, 0);
    a.call(BPF_REDIRECT);
    a.exit();

    a.bind(no_route);
    common::bump_counter(&mut a, STATS_MAP, STAT_NO_ROUTE as i32);
    a.mov64_imm(0, action::PASS);
    a.exit();

    a.bind(ttl_exp);
    common::bump_counter(&mut a, STATS_MAP, STAT_TTL_EXPIRED as i32);
    a.mov64_imm(0, action::DROP);
    a.exit();

    common::exit_with(&mut a, pass, action::PASS);
    common::exit_with(&mut a, drop, action::DROP);

    Program::new(
        "router_ipv4",
        a.into_insns(),
        vec![
            MapDef::new(ROUTES_MAP, "routes", MapKind::LpmTrie, 8, ROUTE_VALUE_SIZE, 1024),
            MapDef::new(STATS_MAP, "rt_stats", MapKind::Array, 4, 8, 4),
        ],
    )
}

/// Host-side control plane: install a route `prefix/plen -> (ifindex,
/// next-hop MAC, source MAC)`.
pub fn install_route(
    maps: &mut MapStore,
    prefix: [u8; 4],
    plen: u32,
    ifindex: u32,
    next_hop_mac: [u8; 6],
    src_mac: [u8; 6],
) {
    let mut key = plen.to_le_bytes().to_vec();
    key.extend_from_slice(&prefix);
    let mut value = ifindex.to_le_bytes().to_vec();
    value.extend_from_slice(&next_hop_mac);
    value.extend_from_slice(&src_mac);
    maps.get_mut(ROUTES_MAP)
        .expect("routes map exists")
        .update(&key, &value, UpdateFlags::Any)
        .expect("route insert");
}

/// Host-side view of `[forwarded, no_route, ttl_expired]`.
pub fn read_stats(maps: &MapStore) -> [u64; 3] {
    let m = maps.get(STATS_MAP).expect("stats map exists");
    let read = |i: usize| u64::from_le_bytes(m.value(i).try_into().expect("8-byte counter"));
    [read(0), read(1), read(2)]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_net::{checksum, offsets, PacketBuilder, ETH_HLEN, IPPROTO_UDP, IPV4_HLEN};

    fn pkt(dst: [u8; 4], ttl: u8) -> Vec<u8> {
        PacketBuilder::new()
            .eth([0x02, 0, 0, 0, 0, 1], [0x02, 0, 0, 0, 0, 2])
            .ipv4([10, 0, 0, 1], dst, IPPROTO_UDP)
            .ttl(ttl)
            .udp(1000, 2000)
            .build()
    }

    #[test]
    fn forwards_with_mac_rewrite_ttl_and_checksum() {
        let p = program();
        let mut vm = Vm::new(&p);
        let nh = [0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff];
        let me = [0x02, 0x11, 0x22, 0x33, 0x44, 0x55];
        install_route(vm.maps_mut(), [192, 168, 7, 0], 24, 3, nh, me);

        let mut packet = pkt([192, 168, 7, 42], 64);
        let out = vm.run(&mut packet, 0).unwrap();
        assert_eq!(out.action, XdpAction::Redirect);
        assert_eq!(out.redirect_ifindex, Some(3));
        assert_eq!(&packet[offsets::ETH_DST..offsets::ETH_DST + 6], &nh);
        assert_eq!(&packet[offsets::ETH_SRC..offsets::ETH_SRC + 6], &me);
        assert_eq!(packet[offsets::IP_TTL], 63);
        // IPv4 header still checksums to zero after the incremental patch.
        assert_eq!(checksum::internet_checksum(&packet[ETH_HLEN..ETH_HLEN + IPV4_HLEN]), 0);
        assert_eq!(read_stats(vm.maps()), [1, 0, 0]);
    }

    #[test]
    fn longest_prefix_wins() {
        let p = program();
        let mut vm = Vm::new(&p);
        install_route(vm.maps_mut(), [0, 0, 0, 0], 0, 1, [1; 6], [9; 6]);
        install_route(vm.maps_mut(), [192, 168, 0, 0], 16, 2, [2; 6], [9; 6]);

        let out = vm.run(&mut pkt([192, 168, 9, 9], 64), 0).unwrap();
        assert_eq!(out.redirect_ifindex, Some(2));
        let out = vm.run(&mut pkt([8, 8, 8, 8], 64), 0).unwrap();
        assert_eq!(out.redirect_ifindex, Some(1));
    }

    #[test]
    fn no_route_passes_to_stack() {
        let p = program();
        let mut vm = Vm::new(&p);
        let out = vm.run(&mut pkt([1, 2, 3, 4], 64), 0).unwrap();
        assert_eq!(out.action, XdpAction::Pass);
        assert_eq!(read_stats(vm.maps()), [0, 1, 0]);
    }

    #[test]
    fn ttl_expiry_drops() {
        let p = program();
        let mut vm = Vm::new(&p);
        install_route(vm.maps_mut(), [0, 0, 0, 0], 0, 1, [1; 6], [9; 6]);
        let out = vm.run(&mut pkt([5, 5, 5, 5], 1), 0).unwrap();
        assert_eq!(out.action, XdpAction::Drop);
        assert_eq!(read_stats(vm.maps()), [0, 0, 1]);
    }

    #[test]
    fn non_ip_passes() {
        let p = program();
        let mut vm = Vm::new(&p);
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(vm.run(&mut arp, 0).unwrap().action, XdpAction::Pass);
    }
}
