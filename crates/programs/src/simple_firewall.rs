//! Simple firewall: "checks the bidirectional connectivity for UDP flows"
//! (Table 1).
//!
//! Policy, as in the classic XDP firewall samples:
//!
//! * packets of an already-established session are forwarded (`XDP_TX`);
//! * a packet whose *reverse* flow has a session entry establishes the
//!   forward direction (the peer answered, so connectivity is
//!   bidirectional) and is forwarded;
//! * otherwise, only packets originating inside the protected prefix
//!   `10.0.0.0/8` may open a new session; everything else is dropped.
//!
//! State: a hash map keyed by the 13-byte 5-tuple; a global statistics
//! array updated with atomic adds.

use crate::common::{self, action, PKT};
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
use ehdl_ebpf::maps::{MapDef, MapKind, MapStore};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_net::{FiveTuple, ETH_P_IP, IPPROTO_UDP};

/// Map id of the session table (key: 13-byte 5-tuple, value: u64 packets).
pub const SESSIONS_MAP: u32 = 0;
/// Map id of the statistics array.
pub const STATS_MAP: u32 = 1;
/// Statistics key: packets allowed.
pub const STAT_ALLOWED: u32 = 0;
/// Statistics key: packets dropped.
pub const STAT_DROPPED: u32 = 1;
/// Statistics key: sessions opened.
pub const STAT_OPENED: u32 = 2;

/// Stack offset of the forward key.
const FWD_KEY: i16 = -16;
/// Stack offset of the reverse key.
const REV_KEY: i16 = -32;
/// Stack offset of the initial session value.
const VAL: i16 = -40;

/// Build the firewall program.
pub fn program() -> Program {
    let mut a = Asm::new();
    let pass = a.new_label();
    let drop = a.new_label();
    let short = a.new_label();
    let allow = a.new_label();
    let open = a.new_label();
    let check_inside = a.new_label();

    common::prologue(&mut a);
    // Need Eth + IPv4 + UDP headers.
    common::bounds_check(&mut a, 42, short);
    common::load_ethertype(&mut a, 2);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(ETH_P_IP), pass);
    a.load(MemSize::B, 2, PKT, 23);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(IPPROTO_UDP), pass);

    // Forward-key lookup.
    common::build_fivetuple_key(&mut a, FWD_KEY);
    a.ld_map_fd(1, SESSIONS_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(FWD_KEY));
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, check_inside);
    // Established: bump the per-session packet count in place.
    a.mov64_imm(2, 1);
    a.atomic_add64(0, 0, 2);
    a.jmp(allow);

    // Miss: does the reverse flow have a session?
    a.bind(check_inside);
    common::build_reverse_fivetuple_key(&mut a, REV_KEY);
    a.ld_map_fd(1, SESSIONS_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(REV_KEY));
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jne, 0, 0, open);
    // Neither direction known: only the inside prefix may open sessions.
    a.load(MemSize::B, 2, PKT, 26);
    a.jmp_imm(JmpOp::Jeq, 2, 10, open);
    common::bump_counter(&mut a, STATS_MAP, STAT_DROPPED as i32);
    a.jmp(drop);

    // Open (or refresh) the forward session.
    a.bind(open);
    a.mov64_imm(1, 1);
    a.store_reg(MemSize::Dw, 10, VAL, 1);
    a.ld_map_fd(1, SESSIONS_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(FWD_KEY));
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, i32::from(VAL));
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);
    common::bump_counter(&mut a, STATS_MAP, STAT_OPENED as i32);

    a.bind(allow);
    common::bump_counter(&mut a, STATS_MAP, STAT_ALLOWED as i32);
    a.mov64_imm(0, action::TX);
    a.exit();

    common::exit_with(&mut a, pass, action::PASS);
    common::exit_with(&mut a, drop, action::DROP);
    common::exit_with(&mut a, short, action::DROP);

    Program::new(
        "simple_firewall",
        a.into_insns(),
        vec![
            MapDef::new(SESSIONS_MAP, "sessions", MapKind::Hash, 13, 8, 32768),
            MapDef::new(STATS_MAP, "fw_stats", MapKind::Array, 4, 8, 4),
        ],
    )
}

/// Host-side helper: pre-install a session for `flow` (e.g. a control-plane
/// allow rule).
pub fn install_session(maps: &mut MapStore, flow: &FiveTuple) {
    maps.get_mut(SESSIONS_MAP)
        .expect("sessions map exists")
        .update(&flow.to_key(), &1u64.to_le_bytes(), Default::default())
        .expect("session insert");
}

/// Host-side view of the statistics counters `[allowed, dropped, opened]`.
pub fn read_stats(maps: &MapStore) -> [u64; 3] {
    let m = maps.get(STATS_MAP).expect("stats map exists");
    let read = |i: usize| u64::from_le_bytes(m.value(i).try_into().expect("8-byte counter"));
    [read(0), read(1), read(2)]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_traffic::build_flow_packet;

    fn flow(inside: bool) -> FiveTuple {
        FiveTuple {
            saddr: if inside { [10, 1, 1, 1] } else { [8, 8, 8, 8] },
            daddr: [192, 168, 0, 5],
            sport: 5555,
            dport: 53,
            proto: IPPROTO_UDP,
        }
    }

    fn pkt(f: &FiveTuple) -> Vec<u8> {
        build_flow_packet(f, [2; 6], [4; 6], 64)
    }

    #[test]
    fn inside_flow_opens_session_then_reverse_allowed() {
        let p = program();
        let mut vm = Vm::new(&p);
        let f = flow(true);

        let out = vm.run(&mut pkt(&f), 0).unwrap();
        assert_eq!(out.action, XdpAction::Tx);

        // The reverse direction now finds the session and is allowed too.
        let out = vm.run(&mut pkt(&f.reversed()), 0).unwrap();
        assert_eq!(out.action, XdpAction::Tx);

        assert_eq!(read_stats(vm.maps()), [2, 0, 2]);
    }

    #[test]
    fn outside_flow_dropped_without_session() {
        let p = program();
        let mut vm = Vm::new(&p);
        let out = vm.run(&mut pkt(&flow(false)), 0).unwrap();
        assert_eq!(out.action, XdpAction::Drop);
        assert_eq!(read_stats(vm.maps()), [0, 1, 0]);
    }

    #[test]
    fn established_packets_counted_per_session() {
        let p = program();
        let mut vm = Vm::new(&p);
        let f = flow(true);
        for _ in 0..4 {
            vm.run(&mut pkt(&f), 0).unwrap();
        }
        let m = vm.maps().get(SESSIONS_MAP).unwrap();
        let slot = m.clone().lookup(&f.to_key()).unwrap().unwrap();
        let count = u64::from_le_bytes(m.value(slot).try_into().unwrap());
        // First packet stores 1, three more atomically add 1 each.
        assert_eq!(count, 4);
    }

    #[test]
    fn preinstalled_session_allows_outside_flow() {
        let p = program();
        let mut vm = Vm::new(&p);
        let f = flow(false);
        install_session(vm.maps_mut(), &f);
        let out = vm.run(&mut pkt(&f), 0).unwrap();
        assert_eq!(out.action, XdpAction::Tx);
    }

    #[test]
    fn non_udp_and_non_ip_pass_through() {
        let p = program();
        let mut vm = Vm::new(&p);
        let mut tcp = ehdl_net::PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([8, 8, 8, 8], [10, 0, 0, 1], ehdl_net::IPPROTO_TCP)
            .tcp(80, 4000, 0x10)
            .build();
        assert_eq!(vm.run(&mut tcp, 0).unwrap().action, XdpAction::Pass);

        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(vm.run(&mut arp, 0).unwrap().action, XdpAction::Pass);
    }
}
