//! Suricata IDS fast-path filter (Table 1).
//!
//! Suricata generates XDP programs that drop flows matched by its bypass
//! ACL as early as possible (paper ref. 41). The generated filter has exactly this
//! shape: parse Ethernet (with optional 802.1Q VLAN tag), classify
//! IPv4/IPv6/other, extract the 5-tuple for TCP/UDP, look the flow up in a
//! hash-map ACL, drop on a hit (counting per-rule hits in place) and pass
//! everything else — keeping aggregate traffic statistics in global state.
//!
//! The VLAN and non-VLAN parse paths are fully unrolled with constant
//! offsets, as clang emits them, which makes this the largest program of
//! the evaluation set (cf. Figure 9c).

use crate::common::{self, action, PKT};
use ehdl_ebpf::asm::{Asm, Label};
use ehdl_ebpf::helpers::BPF_MAP_LOOKUP_ELEM;
use ehdl_ebpf::maps::{MapDef, MapKind, MapStore, UpdateFlags};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_net::{FiveTuple, ETH_P_8021Q, ETH_P_IP, ETH_P_IPV6, IPPROTO_TCP, IPPROTO_UDP};

/// Map id of the ACL (key: 13-byte 5-tuple, value: u64 hit counter).
pub const ACL_MAP: u32 = 0;
/// Map id of the statistics array.
pub const STATS_MAP: u32 = 1;
/// Statistics key: packets passed to Suricata userspace.
pub const STAT_ALLOWED: u32 = 0;
/// Statistics key: packets dropped by the ACL.
pub const STAT_DROPPED: u32 = 1;
/// Statistics key: IPv6 packets.
pub const STAT_IPV6: u32 = 2;
/// Statistics key: non-IP packets.
pub const STAT_NON_IP: u32 = 3;
/// Statistics key: IPv4 packets that are neither TCP nor UDP.
pub const STAT_NON_L4: u32 = 4;

const KEY: i16 = -32;

/// Emit the IPv4 handler for an L3 header starting at constant `base`.
fn ipv4_path(a: &mut Asm, base: i16, pass: Label, drop_acl: Label, non_l4: Label, short: Label) {
    common::bounds_check(a, i32::from(base) + 28, short); // IPv4 + 8 L4 bytes
    a.load(MemSize::B, 2, PKT, base + 9);
    let is_l4 = a.new_label();
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(IPPROTO_UDP), is_l4);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(IPPROTO_TCP), non_l4);
    a.bind(is_l4);
    // Build the 5-tuple key at the path's constant offsets.
    a.load(MemSize::W, 1, PKT, base + 12);
    a.store_reg(MemSize::W, 10, KEY, 1);
    a.load(MemSize::W, 1, PKT, base + 16);
    a.store_reg(MemSize::W, 10, KEY + 4, 1);
    a.load(MemSize::W, 1, PKT, base + 20);
    a.store_reg(MemSize::W, 10, KEY + 8, 1);
    a.store_reg(MemSize::B, 10, KEY + 12, 2);
    a.ld_map_fd(1, ACL_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, i32::from(KEY));
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, pass);
    // ACL hit: count it on the rule and drop.
    a.mov64_imm(2, 1);
    a.atomic_add64(0, 0, 2);
    a.jmp(drop_acl);
}

/// Build the Suricata filter program.
pub fn program() -> Program {
    let mut a = Asm::new();
    let pass = a.new_label();
    let drop_acl = a.new_label();
    let non_l4 = a.new_label();
    let ipv6 = a.new_label();
    let non_ip = a.new_label();
    let short = a.new_label();
    let vlan = a.new_label();
    let v4_plain = a.new_label();
    let v4_vlan = a.new_label();
    let v6_check_vlan = a.new_label();

    common::prologue(&mut a);
    common::bounds_check(&mut a, 14, short);
    common::load_ethertype(&mut a, 2);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_8021Q), vlan);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_IP), v4_plain);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_IPV6), ipv6);
    a.jmp(non_ip);

    // Untagged IPv4: L3 at offset 14.
    a.bind(v4_plain);
    ipv4_path(&mut a, 14, pass, drop_acl, non_l4, short);

    // 802.1Q tagged: the inner EtherType sits at offset 16.
    a.bind(vlan);
    common::bounds_check(&mut a, 18, short);
    a.load(MemSize::B, 2, PKT, 16);
    a.load(MemSize::B, 1, PKT, 17);
    a.alu64_imm(AluOp::Lsh, 2, 8);
    a.alu64_reg(AluOp::Or, 2, 1);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_IP), v4_vlan);
    a.jmp(v6_check_vlan);
    a.bind(v4_vlan);
    ipv4_path(&mut a, 18, pass, drop_acl, non_l4, short);
    a.bind(v6_check_vlan);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_IPV6), ipv6);
    a.jmp(non_ip);

    a.bind(pass);
    common::bump_counter(&mut a, STATS_MAP, STAT_ALLOWED as i32);
    a.mov64_imm(0, action::PASS);
    a.exit();

    a.bind(drop_acl);
    common::bump_counter(&mut a, STATS_MAP, STAT_DROPPED as i32);
    a.mov64_imm(0, action::DROP);
    a.exit();

    a.bind(ipv6);
    common::bump_counter(&mut a, STATS_MAP, STAT_IPV6 as i32);
    a.mov64_imm(0, action::PASS);
    a.exit();

    a.bind(non_ip);
    common::bump_counter(&mut a, STATS_MAP, STAT_NON_IP as i32);
    a.mov64_imm(0, action::PASS);
    a.exit();

    a.bind(non_l4);
    common::bump_counter(&mut a, STATS_MAP, STAT_NON_L4 as i32);
    a.mov64_imm(0, action::PASS);
    a.exit();

    common::exit_with(&mut a, short, action::PASS);

    Program::new(
        "suricata_filter",
        a.into_insns(),
        vec![
            MapDef::new(ACL_MAP, "acl", MapKind::Hash, 13, 8, 32768),
            MapDef::new(STATS_MAP, "ids_stats", MapKind::Array, 4, 8, 8),
        ],
    )
}

/// Host-side: install a drop rule for `flow` (Suricata's bypass path).
pub fn install_rule(maps: &mut MapStore, flow: &FiveTuple) {
    maps.get_mut(ACL_MAP)
        .expect("acl map exists")
        .update(&flow.to_key(), &0u64.to_le_bytes(), UpdateFlags::Any)
        .expect("rule insert");
}

/// Host-side: read the hit counter of a rule, if installed.
pub fn rule_hits(maps: &MapStore, flow: &FiveTuple) -> Option<u64> {
    let m = maps.get(ACL_MAP)?;
    let slot = m.clone().lookup(&flow.to_key()).ok().flatten()?;
    Some(u64::from_le_bytes(m.value(slot).try_into().expect("8-byte counter")))
}

/// Host-side view of `[allowed, dropped, ipv6, non_ip, non_l4]`.
pub fn read_stats(maps: &MapStore) -> [u64; 5] {
    let m = maps.get(STATS_MAP).expect("stats map exists");
    let read = |i: usize| u64::from_le_bytes(m.value(i).try_into().expect("8-byte counter"));
    [read(0), read(1), read(2), read(3), read(4)]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_net::PacketBuilder;
    use ehdl_traffic::build_flow_packet;

    fn flow() -> FiveTuple {
        FiveTuple {
            saddr: [10, 0, 0, 1],
            daddr: [10, 0, 0, 2],
            sport: 7777,
            dport: 443,
            proto: IPPROTO_TCP,
        }
    }

    #[test]
    fn acl_hit_drops_and_counts() {
        let p = program();
        let mut vm = Vm::new(&p);
        install_rule(vm.maps_mut(), &flow());
        for _ in 0..3 {
            let out = vm.run(&mut build_flow_packet(&flow(), [1; 6], [2; 6], 64), 0).unwrap();
            assert_eq!(out.action, XdpAction::Drop);
        }
        assert_eq!(rule_hits(vm.maps(), &flow()), Some(3));
        assert_eq!(read_stats(vm.maps()), [0, 3, 0, 0, 0]);
    }

    #[test]
    fn unmatched_flow_passes() {
        let p = program();
        let mut vm = Vm::new(&p);
        let out = vm.run(&mut build_flow_packet(&flow(), [1; 6], [2; 6], 64), 0).unwrap();
        assert_eq!(out.action, XdpAction::Pass);
        assert_eq!(read_stats(vm.maps()), [1, 0, 0, 0, 0]);
    }

    #[test]
    fn vlan_tagged_flow_matches_same_rule() {
        let p = program();
        let mut vm = Vm::new(&p);
        let f = flow();
        install_rule(vm.maps_mut(), &f);
        let mut pkt = PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .vlan(42)
            .ipv4(f.saddr, f.daddr, f.proto)
            .tcp(f.sport, f.dport, 0x10)
            .build();
        let out = vm.run(&mut pkt, 0).unwrap();
        assert_eq!(out.action, XdpAction::Drop);
    }

    #[test]
    fn classification_counters() {
        let p = program();
        let mut vm = Vm::new(&p);
        // IPv6
        let mut v6 = PacketBuilder::new().eth([1; 6], [2; 6]).ipv6([1; 16], [2; 16], 6).build();
        assert_eq!(vm.run(&mut v6, 0).unwrap().action, XdpAction::Pass);
        // VLAN-tagged IPv6
        let mut v6v =
            PacketBuilder::new().eth([1; 6], [2; 6]).vlan(5).ipv6([1; 16], [2; 16], 6).build();
        assert_eq!(vm.run(&mut v6v, 0).unwrap().action, XdpAction::Pass);
        // ARP
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(vm.run(&mut arp, 0).unwrap().action, XdpAction::Pass);
        // ICMP (IPv4, not TCP/UDP)
        let mut icmp =
            PacketBuilder::new().eth([1; 6], [2; 6]).ipv4([1, 1, 1, 1], [2, 2, 2, 2], 1).build();
        assert_eq!(vm.run(&mut icmp, 0).unwrap().action, XdpAction::Pass);

        assert_eq!(read_stats(vm.maps()), [0, 0, 2, 1, 1]);
    }

    #[test]
    fn program_is_the_largest_app() {
        let n = program().insn_count();
        assert!(n > 100, "suricata filter should be large, got {n} insns");
    }
}
