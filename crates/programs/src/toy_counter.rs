//! The paper's running example (Listing 1): count received packets by
//! EtherType, then `XDP_TX` everything.
//!
//! ```c
//! int example(struct xdp_md *ctx) {
//!     ...
//!     if ((data + sizeof(*eth)) > data_end) return XDP_DROP;
//!     if (eth->h_proto == ETH_P_IP)        key = 1;
//!     else if (eth->h_proto == ETH_P_IPV6) key = 2;
//!     else if (eth->h_proto == ETH_P_ARP)  key = 3;
//!     value = bpf_map_lookup_elem(&stats, &key);
//!     if (value) __sync_fetch_and_add(value, 1);
//!     return XDP_TX;
//! }
//! ```
//!
//! The generated pipeline for this program is Figure 8 in the paper:
//! 20 stages, ILP ≤ 2, heavily pruned state.

use crate::common::{self, action};
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::BPF_MAP_LOOKUP_ELEM;
use ehdl_ebpf::maps::{MapDef, MapKind};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_net::{ETH_P_ARP, ETH_P_IP, ETH_P_IPV6};

/// Map id of the `stats` array (key: u32 class, value: u64 count).
pub const STATS_MAP: u32 = 0;
/// Statistics key for "other" EtherTypes.
pub const KEY_OTHER: u32 = 0;
/// Statistics key for IPv4.
pub const KEY_IP: u32 = 1;
/// Statistics key for IPv6.
pub const KEY_IPV6: u32 = 2;
/// Statistics key for ARP.
pub const KEY_ARP: u32 = 3;

/// Build the program, mirroring the Listing 2 bytecode structure.
pub fn program() -> Program {
    let mut a = Asm::new();
    let drop = a.new_label();
    let is_v6 = a.new_label();
    let is_arp = a.new_label();
    let store_key = a.new_label();
    let after_add = a.new_label();

    // 0-1: r2 = data_end; r1 = data   (kept in r8/r7 by our prologue)
    common::prologue(&mut a);
    // 2-3: key = 0 on the stack.
    a.mov64_imm(3, KEY_OTHER as i32);
    a.store_reg(MemSize::W, 10, -4, 3);
    // bounds check for the Ethernet header.
    common::bounds_check(&mut a, 14, drop);
    // 8-11: load h_proto (big-endian).
    common::load_ethertype(&mut a, 2);
    // classification chain.
    a.mov64_imm(1, KEY_IP as i32);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_IP), store_key);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_IPV6), is_v6);
    a.jmp_imm(JmpOp::Jeq, 2, i32::from(ETH_P_ARP), is_arp);
    a.jmp(after_add); // unknown type: key stays 0, skip the store
    a.bind(is_v6);
    a.mov64_imm(1, KEY_IPV6 as i32);
    a.jmp(store_key);
    a.bind(is_arp);
    a.mov64_imm(1, KEY_ARP as i32);
    a.bind(store_key);
    a.store_reg(MemSize::W, 10, -4, 1);
    a.bind(after_add);
    // 21-25: lookup
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -4);
    a.ld_map_fd(1, STATS_MAP);
    a.call(BPF_MAP_LOOKUP_ELEM);
    // 26-30: if (value) lock *value += 1; return XDP_TX
    let out = a.new_label();
    a.mov64_reg(1, 0);
    a.mov64_imm(0, action::TX);
    a.jmp_imm(JmpOp::Jeq, 1, 0, out);
    a.mov64_imm(2, 1);
    a.atomic_add64(1, 0, 2);
    a.bind(out);
    a.exit();
    common::exit_with(&mut a, drop, action::DROP);

    Program::new(
        "toy_counter",
        a.into_insns(),
        vec![MapDef::new(STATS_MAP, "stats", MapKind::Array, 4, 8, 4)],
    )
}

/// Read the four counters from a map store (host-side view).
pub fn read_counters(maps: &ehdl_ebpf::maps::MapStore) -> [u64; 4] {
    let m = maps.get(STATS_MAP).expect("stats map exists");
    let mut out = [0u64; 4];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = u64::from_le_bytes(m.value(i).try_into().expect("8-byte counter"));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_net::{PacketBuilder, IPPROTO_UDP};

    fn ip_packet() -> Vec<u8> {
        PacketBuilder::new()
            .eth([1; 6], [2; 6])
            .ipv4([10, 0, 0, 1], [10, 0, 0, 2], IPPROTO_UDP)
            .udp(1, 2)
            .build()
    }

    #[test]
    fn counts_by_ethertype() {
        let p = program();
        let mut vm = Vm::new(&p);
        for _ in 0..3 {
            let out = vm.run(&mut ip_packet(), 0).unwrap();
            assert_eq!(out.action, XdpAction::Tx);
        }
        let mut v6 = PacketBuilder::new().eth([1; 6], [2; 6]).ipv6([1; 16], [2; 16], 17).build();
        vm.run(&mut v6, 0).unwrap();
        // Unknown ethertype.
        let mut other = vec![0u8; 64];
        other[12] = 0x88;
        other[13] = 0xb5;
        vm.run(&mut other, 0).unwrap();

        let counters = read_counters(vm.maps());
        assert_eq!(counters, [1, 3, 1, 0]);
    }

    #[test]
    fn short_packet_dropped() {
        let p = program();
        let mut vm = Vm::new(&p);
        let out = vm.run(&mut vec![0; 8], 0).unwrap();
        assert_eq!(out.action, XdpAction::Drop);
    }

    #[test]
    fn packet_is_not_modified() {
        let p = program();
        let mut vm = Vm::new(&p);
        let orig = ip_packet();
        let mut pkt = orig.clone();
        vm.run(&mut pkt, 0).unwrap();
        assert_eq!(pkt, orig);
    }

    #[test]
    fn instruction_count_in_listing2_range() {
        // Listing 2 has ~30 slots; ours should be the same order of size.
        let p = program();
        assert!((20..=40).contains(&p.insn_count()), "insn count {}", p.insn_count());
    }
}
