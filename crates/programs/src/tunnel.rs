//! IP-in-IP TX tunnel, modelled on the kernel sample `xdp_tx_iptunnel`
//! (Table 1: "parse pkt up to L4, encapsulate and XDP_TX").
//!
//! A hash map written by the host control plane assigns tunnel endpoints to
//! inner destination addresses. For matching packets, the program grows the
//! packet head by 20 bytes with `bpf_xdp_adjust_head`, writes a fresh
//! Ethernet header and an outer IPv4 (protocol 4, IPIP) header — computing
//! the outer header checksum in the data plane — bumps a global statistics
//! counter, and transmits with `XDP_TX`.

use crate::common::{self, action, CTX, PKT, PKT_END};
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_XDP_ADJUST_HEAD};
use ehdl_ebpf::maps::{MapDef, MapKind, MapStore, UpdateFlags};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::vm::xdp_md;
use ehdl_ebpf::Program;
use ehdl_net::ETH_P_IP;

/// Map id of the tunnel endpoint table (key: inner daddr, value: 20 bytes).
pub const ENDPOINTS_MAP: u32 = 0;
/// Map id of the statistics array.
pub const STATS_MAP: u32 = 1;
/// Statistics key: encapsulated packets.
pub const STAT_ENCAPPED: u32 = 0;
/// Statistics key: passed packets (no endpoint configured).
pub const STAT_PASSED: u32 = 1;

/// Endpoint value layout: outer saddr(4) + outer daddr(4) + dmac(6) + smac(6).
pub const ENDPOINT_VALUE_SIZE: u32 = 20;

/// IPPROTO_IPIP.
const PROTO_IPIP: i32 = 4;

/// Build the tunnel program.
pub fn program() -> Program {
    let mut a = Asm::new();
    let pass = a.new_label();
    let drop = a.new_label();
    let no_ep = a.new_label();

    common::prologue(&mut a);
    common::bounds_check(&mut a, 34, drop);
    common::load_ethertype(&mut a, 2);
    a.jmp_imm(JmpOp::Jne, 2, i32::from(ETH_P_IP), pass);

    // Endpoint lookup keyed by inner destination address.
    a.load(MemSize::W, 1, PKT, 30);
    a.store_reg(MemSize::W, 10, -4, 1);
    a.ld_map_fd(1, ENDPOINTS_MAP);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -4);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, no_ep);
    a.mov64_reg(9, 0); // endpoint entry pointer

    // Grow the head by 20 bytes for the outer IPv4 header.
    a.mov64_reg(1, CTX);
    a.mov64_imm(2, -20);
    a.call(BPF_XDP_ADJUST_HEAD);
    a.jmp_imm(JmpOp::Jne, 0, 0, drop);
    // Pointers are invalidated: reload and re-check.
    a.load(MemSize::W, PKT, CTX, xdp_md::DATA as i16);
    a.load(MemSize::W, PKT_END, CTX, xdp_md::DATA_END as i16);
    common::bounds_check(&mut a, 54, drop); // new eth + outer ip + inner ip

    // New Ethernet header: dmac = value[8..14], smac = value[14..20].
    a.load(MemSize::W, 1, 9, 8);
    a.store_reg(MemSize::W, PKT, 0, 1);
    a.load(MemSize::H, 1, 9, 12);
    a.store_reg(MemSize::H, PKT, 4, 1);
    a.load(MemSize::W, 1, 9, 14);
    a.store_reg(MemSize::W, PKT, 6, 1);
    a.load(MemSize::H, 1, 9, 18);
    a.store_reg(MemSize::H, PKT, 10, 1);
    a.mov64_imm(1, 0x08);
    a.store_reg(MemSize::B, PKT, 12, 1);
    a.mov64_imm(1, 0x00);
    a.store_reg(MemSize::B, PKT, 13, 1);

    // Outer IPv4 header at offset 14. Inner header now sits at offset 34,
    // so the inner total length is at bytes 36..38 (big-endian).
    a.load(MemSize::B, 2, PKT, 36);
    a.load(MemSize::B, 3, PKT, 37);
    a.alu64_imm(AluOp::Lsh, 2, 8);
    a.alu64_reg(AluOp::Or, 2, 3);
    a.alu64_imm(AluOp::Add, 2, 20); // outer total length
    a.mov64_imm(1, 0x45);
    a.store_reg(MemSize::B, PKT, 14, 1);
    a.mov64_imm(1, 0);
    a.store_reg(MemSize::B, PKT, 15, 1);
    a.mov64_reg(3, 2);
    a.alu64_imm(AluOp::Rsh, 3, 8);
    a.store_reg(MemSize::B, PKT, 16, 3);
    a.store_reg(MemSize::B, PKT, 17, 2);
    a.mov64_imm(1, 0);
    a.store_reg(MemSize::H, PKT, 18, 1); // id
    a.store_reg(MemSize::H, PKT, 20, 1); // frag
    a.mov64_imm(1, 64);
    a.store_reg(MemSize::B, PKT, 22, 1); // ttl
    a.mov64_imm(1, PROTO_IPIP);
    a.store_reg(MemSize::B, PKT, 23, 1);
    // Outer addresses from value[0..8].
    a.load(MemSize::W, 1, 9, 0);
    a.store_reg(MemSize::W, PKT, 26, 1);
    a.load(MemSize::W, 1, 9, 4);
    a.store_reg(MemSize::W, PKT, 30, 1);

    // Header checksum: sum the big-endian words
    //   0x4500, tot_len, 0, 0, (64<<8 | 4), 0, sa_hi, sa_lo, da_hi, da_lo.
    // r2 already holds tot_len.
    a.alu64_imm(AluOp::Add, 2, 0x4500);
    a.alu64_imm(AluOp::Add, 2, (64 << 8) | PROTO_IPIP);
    // Sum the four address words straight from the packet we just wrote.
    for off in [26i16, 28, 30, 32] {
        a.load(MemSize::B, 3, PKT, off);
        a.load(MemSize::B, 4, PKT, off + 1);
        a.alu64_imm(AluOp::Lsh, 3, 8);
        a.alu64_reg(AluOp::Or, 3, 4);
        a.alu64_reg(AluOp::Add, 2, 3);
    }
    // Fold twice and complement.
    a.mov64_reg(3, 2);
    a.alu64_imm(AluOp::Rsh, 3, 16);
    a.alu64_imm(AluOp::And, 2, 0xffff);
    a.alu64_reg(AluOp::Add, 2, 3);
    a.mov64_reg(3, 2);
    a.alu64_imm(AluOp::Rsh, 3, 16);
    a.alu64_imm(AluOp::And, 2, 0xffff);
    a.alu64_reg(AluOp::Add, 2, 3);
    a.alu64_imm(AluOp::Xor, 2, 0xffff);
    a.mov64_reg(3, 2);
    a.alu64_imm(AluOp::Rsh, 3, 8);
    a.store_reg(MemSize::B, PKT, 24, 3);
    a.store_reg(MemSize::B, PKT, 25, 2);

    common::bump_counter(&mut a, STATS_MAP, STAT_ENCAPPED as i32);
    a.mov64_imm(0, action::TX);
    a.exit();

    a.bind(no_ep);
    common::bump_counter(&mut a, STATS_MAP, STAT_PASSED as i32);
    a.mov64_imm(0, action::PASS);
    a.exit();

    common::exit_with(&mut a, pass, action::PASS);
    common::exit_with(&mut a, drop, action::DROP);

    Program::new(
        "tx_iptunnel",
        a.into_insns(),
        vec![
            MapDef::new(ENDPOINTS_MAP, "endpoints", MapKind::Hash, 4, ENDPOINT_VALUE_SIZE, 256),
            MapDef::new(STATS_MAP, "tun_stats", MapKind::Array, 4, 8, 4),
        ],
    )
}

/// Host-side control plane: map inner destination `inner_daddr` to a tunnel
/// endpoint.
pub fn install_endpoint(
    maps: &mut MapStore,
    inner_daddr: [u8; 4],
    outer_saddr: [u8; 4],
    outer_daddr: [u8; 4],
    dmac: [u8; 6],
    smac: [u8; 6],
) {
    let mut value = Vec::with_capacity(ENDPOINT_VALUE_SIZE as usize);
    value.extend_from_slice(&outer_saddr);
    value.extend_from_slice(&outer_daddr);
    value.extend_from_slice(&dmac);
    value.extend_from_slice(&smac);
    maps.get_mut(ENDPOINTS_MAP)
        .expect("endpoints map exists")
        .update(&inner_daddr, &value, UpdateFlags::Any)
        .expect("endpoint insert");
}

/// Host-side view of `[encapped, passed]`.
pub fn read_stats(maps: &MapStore) -> [u64; 2] {
    let m = maps.get(STATS_MAP).expect("stats map exists");
    let read = |i: usize| u64::from_le_bytes(m.value(i).try_into().expect("8-byte counter"));
    [read(0), read(1)]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ehdl_ebpf::vm::{Vm, XdpAction};
    use ehdl_net::{checksum, PacketBuilder, ETH_HLEN, IPPROTO_UDP, IPV4_HLEN};

    fn pkt(dst: [u8; 4]) -> Vec<u8> {
        PacketBuilder::new()
            .eth([0x02, 0, 0, 0, 0, 1], [0x02, 0, 0, 0, 0, 2])
            .ipv4([10, 0, 0, 1], dst, IPPROTO_UDP)
            .udp(1000, 2000)
            .payload_len(10)
            .build()
    }

    #[test]
    fn encapsulates_matching_packet() {
        let p = program();
        let mut vm = Vm::new(&p);
        install_endpoint(
            vm.maps_mut(),
            [192, 168, 7, 42],
            [172, 16, 0, 1],
            [172, 16, 0, 2],
            [0xaa; 6],
            [0xbb; 6],
        );
        let mut packet = pkt([192, 168, 7, 42]);
        let inner_len = packet.len();
        let out = vm.run(&mut packet, 0).unwrap();
        assert_eq!(out.action, XdpAction::Tx);
        assert_eq!(packet.len(), inner_len + 20);
        // Outer headers.
        assert_eq!(&packet[0..6], &[0xaa; 6]);
        assert_eq!(&packet[6..12], &[0xbb; 6]);
        assert_eq!(u16::from_be_bytes([packet[12], packet[13]]), ETH_P_IP);
        assert_eq!(packet[14], 0x45);
        assert_eq!(packet[23], 4); // IPIP
        assert_eq!(&packet[26..30], &[172, 16, 0, 1]);
        assert_eq!(&packet[30..34], &[172, 16, 0, 2]);
        // The outer header checksums to zero.
        assert_eq!(checksum::internet_checksum(&packet[ETH_HLEN..ETH_HLEN + IPV4_HLEN]), 0);
        // Inner packet intact after the outer headers.
        assert_eq!(packet[34], 0x45);
        assert_eq!(&packet[46..50], &[10, 0, 0, 1]);
        assert_eq!(read_stats(vm.maps()), [1, 0]);
    }

    #[test]
    fn outer_total_length_covers_inner() {
        let p = program();
        let mut vm = Vm::new(&p);
        install_endpoint(vm.maps_mut(), [1, 1, 1, 1], [2, 2, 2, 2], [3, 3, 3, 3], [1; 6], [2; 6]);
        let mut packet = pkt([1, 1, 1, 1]);
        vm.run(&mut packet, 0).unwrap();
        let outer_len = u16::from_be_bytes([packet[16], packet[17]]);
        let inner_len = u16::from_be_bytes([packet[36], packet[37]]);
        assert_eq!(outer_len, inner_len + 20);
    }

    #[test]
    fn no_endpoint_passes() {
        let p = program();
        let mut vm = Vm::new(&p);
        let mut packet = pkt([9, 9, 9, 9]);
        let before = packet.clone();
        let out = vm.run(&mut packet, 0).unwrap();
        assert_eq!(out.action, XdpAction::Pass);
        assert_eq!(packet, before);
        assert_eq!(read_stats(vm.maps()), [0, 1]);
    }

    #[test]
    fn non_ip_passes_unmodified() {
        let p = program();
        let mut vm = Vm::new(&p);
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(vm.run(&mut arp, 0).unwrap().action, XdpAction::Pass);
    }
}
