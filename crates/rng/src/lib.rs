//! A tiny deterministic PRNG for workload synthesis and randomized tests.
//!
//! The container this repository builds in has no access to crates.io, so
//! the `rand` crate (and proptest/criterion, which pull it in) cannot be
//! fetched. Everything here needs only *seedable, deterministic, decently
//! distributed* numbers — not cryptographic ones — so a xoshiro256\*\*
//! generator seeded through splitmix64 covers every use: flow populations,
//! Zipf samplers, packet-size mixes, and the randomized test campaigns
//! that replaced the proptest suites.
//!
//! ```
//! use ehdl_rng::Rng;
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![deny(clippy::unwrap_used)]

/// Seedable xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Expand a 64-bit seed into the full generator state (splitmix64, the
    /// reference seeding procedure for the xoshiro family).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform byte.
    pub fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform `u16`.
    pub fn gen_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// A uniform `i32`.
    pub fn gen_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// A uniform bool.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Debiased by rejection.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Rejection sampling over the largest multiple of `n`.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)` (exclusive), matching the common
    /// half-open idiom of index sampling.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty index range");
        self.gen_range_u64(0, bound as u64 - 1) as usize
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo.wrapping_add(self.gen_range_u64(0, hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Fill a byte slice with uniform bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let i = r.gen_index(7);
            assert!(i < 7);
            let s = r.gen_range_i64(-5, 5);
            assert!((-5..=5).contains(&s));
        }
        assert_eq!(r.gen_range_u64(3, 3), 3);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::seed_from_u64(2);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn bytes_fill_exactly() {
        let mut r = Rng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn range_modulo_is_unbiased_enough() {
        // Coarse chi-square-ish sanity: 8 buckets over 80k draws.
        let mut r = Rng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_index(8)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
