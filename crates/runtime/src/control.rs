//! The [`Runtime`]: one loaded pipeline plus its host control channel,
//! and the drain-and-swap reload path.

use crate::retry::{ReliableCtrl, RetryPolicy};
use crate::telemetry::{MapTelemetry, RuntimeStats, StageTelemetry};
use ehdl_core::shardcheck::ShardError;
use ehdl_core::PipelineDesign;
use ehdl_ebpf::maps::{MapDef, MapStore, UpdateFlags};
use ehdl_hwsim::sim::CLOCK_NS;
use ehdl_hwsim::{
    CtrlError, CtrlLossConfig, CtrlOptions, HostCompletion, HostOp, PipelineSim, SimOptions,
    SimOutcome,
};
use ehdl_traffic::{ControlOp, ControlOpKind, ScheduleItem};

/// The new-design map that receives `old`'s state across a swap: the
/// keyspec-compatible (same name + shape) map, preferring an id match
/// when several qualify so two same-shaped maps cannot cross-bind. Both
/// the placement guard and the state-migration loop pair maps through
/// this one function, so what the guard checks is exactly what migrates.
fn migration_target<'a>(old: &MapDef, new_maps: &'a [MapDef]) -> Option<&'a MapDef> {
    let mut compat = new_maps.iter().filter(|n| old.compatible_with(n));
    let first = compat.next()?;
    if first.id == old.id {
        return Some(first);
    }
    Some(compat.find(|n| n.id == old.id).unwrap_or(first))
}

/// Fixed partial-reconfiguration overhead modeled for a program swap, in
/// pipeline cycles (bitstream load setup, clock-domain handshakes).
pub const RECONFIG_BASE_CYCLES: u64 = 2048;

/// Additional modeled reconfiguration cost per pipeline stage, in cycles.
pub const RECONFIG_CYCLES_PER_STAGE: u64 = 256;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// Simulator options for the wrapped pipeline.
    pub sim: SimOptions,
    /// Control-channel options (latency, queue depth).
    pub ctrl: CtrlOptions,
    /// Seeded loss model for the control channel. When lossy, the
    /// runtime routes submissions through the reliable (sequence-
    /// numbered, retried, deduplicated) frame protocol automatically.
    pub loss: CtrlLossConfig,
    /// Timeout/backoff parameters for reliable submission.
    pub retry: RetryPolicy,
    /// Fixed reconfiguration cost charged by [`Runtime::reload`].
    pub reconfig_base_cycles: u64,
    /// Per-stage reconfiguration cost charged by [`Runtime::reload`].
    pub reconfig_cycles_per_stage: u64,
    /// Deployment scale reloads are validated against: when above 1, a
    /// new design whose [`ShardPlan`](ehdl_core::ShardPlan) is unsound
    /// at this replica count — or that moves a surviving map across the
    /// private/shared placement boundary, which no live migration can
    /// express — is rejected before the drain handshake starts.
    pub replicas: usize,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            sim: SimOptions::default(),
            ctrl: CtrlOptions::default(),
            loss: CtrlLossConfig::lossless(),
            retry: RetryPolicy::default(),
            reconfig_base_cycles: RECONFIG_BASE_CYCLES,
            reconfig_cycles_per_stage: RECONFIG_CYCLES_PER_STAGE,
            replicas: 1,
        }
    }
}

/// Outcome of one [`Runtime::run_schedule`] drive.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Packets offered to the pipeline.
    pub packets: u64,
    /// Packets lost to RX overflow during the drive.
    pub lost: u64,
    /// Host ops accepted by the channel.
    pub ops_submitted: u64,
    /// Host ops the channel refused, with the submission error.
    pub ops_rejected: Vec<CtrlError>,
    /// Completed packet outcomes, in arrival order.
    pub outcomes: Vec<SimOutcome>,
    /// Retired host ops, in submission order.
    pub completions: Vec<HostCompletion>,
}

/// Measured result of a drain-and-swap program reload.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapReport {
    /// Cycle at which ingress was quiesced (the old pipeline's clock).
    pub quiesce_cycle: u64,
    /// Cycles spent draining in-flight packets and pending host ops.
    pub drain_cycles: u64,
    /// Modeled reconfiguration cost for the new design.
    pub config_cycles: u64,
    /// Total ingress downtime: drain + reconfiguration.
    pub downtime_cycles: u64,
    /// Downtime in nanoseconds at the 250 MHz pipeline clock.
    pub downtime_ns: f64,
    /// New-design map ids that received migrated state.
    pub migrated_maps: Vec<u32>,
    /// Old-design map ids with no keyspec-compatible successor (state
    /// discarded).
    pub dropped_maps: Vec<u32>,
    /// Entries copied into the new maps.
    pub migrated_entries: u64,
    /// Entries lost because the successor map was smaller or rejected
    /// them.
    pub dropped_entries: u64,
}

/// One loaded pipeline with its host control channel.
///
/// The runtime owns the simulator: packets go in through
/// [`Runtime::enqueue`] (or a whole interleaved schedule through
/// [`Runtime::run_schedule`]), host ops through [`Runtime::submit`], and
/// everything the pipeline retires accumulates until drained.
#[derive(Debug)]
pub struct Runtime {
    sim: PipelineSim,
    design: PipelineDesign,
    options: RuntimeOptions,
    /// Reliable frame-protocol layer, present when the channel is lossy.
    reliable: Option<ReliableCtrl>,
    /// Cycles burned by previous designs (before each swap).
    retired_cycles: u64,
    /// Work retired before a swap but not yet drained by the caller.
    carried_outcomes: Vec<SimOutcome>,
    carried_completions: Vec<HostCompletion>,
    swaps: Vec<SwapReport>,
}

impl Runtime {
    /// Load `design` and bring up its control channel.
    pub fn new(design: &PipelineDesign, options: RuntimeOptions) -> Runtime {
        let mut sim = PipelineSim::with_options(design, options.sim);
        sim.attach_ctrl(options.ctrl);
        let _ = sim.attach_ctrl_loss(options.loss);
        let reliable = options.loss.is_lossy().then(|| ReliableCtrl::new(options.retry));
        Runtime {
            sim,
            design: design.clone(),
            options,
            reliable,
            retired_cycles: 0,
            carried_outcomes: Vec::new(),
            carried_completions: Vec::new(),
            swaps: Vec::new(),
        }
    }

    /// The currently loaded design.
    pub fn design(&self) -> &PipelineDesign {
        &self.design
    }

    /// The wrapped simulator (escape hatch for tests and benches).
    pub fn sim_mut(&mut self) -> &mut PipelineSim {
        &mut self.sim
    }

    /// Live map state (host-side read access outside the modeled channel;
    /// use [`Runtime::submit`] for access that contends with traffic).
    pub fn maps(&self) -> &MapStore {
        self.sim.maps()
    }

    /// Direct map mutation for initial provisioning, before traffic.
    pub fn maps_mut(&mut self) -> &mut MapStore {
        self.sim.maps_mut()
    }

    /// Offer one packet to the pipeline's RX queue.
    pub fn enqueue(&mut self, packet: Vec<u8>) -> bool {
        self.sim.enqueue(packet)
    }

    /// Submit a host op over the control channel. On a lossy channel
    /// the op takes the reliable frame protocol (sequence-numbered,
    /// retried on timeout, deduplicated by the device); on a lossless
    /// one it takes the direct mailbox path.
    pub fn submit(&mut self, op: HostOp) -> Result<u64, CtrlError> {
        match &mut self.reliable {
            Some(r) => r.submit(&mut self.sim, &op),
            None => self.sim.submit_host_op(op),
        }
    }

    /// Counters of the reliable submission layer (`None` on a lossless
    /// channel, which bypasses it).
    pub fn reliable_stats(&self) -> Option<&crate::retry::ReliableStats> {
        self.reliable.as_ref().map(ReliableCtrl::stats)
    }

    /// Submit a generated [`ControlOp`] (from
    /// [`ehdl_traffic::ctrlgen::ControlOpGen`]).
    pub fn submit_control(&mut self, op: &ControlOp) -> Result<u64, CtrlError> {
        self.submit(to_host_op(op))
    }

    /// Advance one pipeline clock cycle (and pump the reliable layer's
    /// timeout/retry machinery when the channel is lossy).
    pub fn step(&mut self) {
        self.sim.step();
        if let Some(r) = &mut self.reliable {
            r.pump(&mut self.sim);
        }
    }

    /// Run until the pipeline and control channel are empty and every
    /// reliable op has resolved (or been abandoned).
    pub fn settle(&mut self) {
        match &mut self.reliable {
            Some(r) => {
                r.drive(&mut self.sim, 50_000_000);
            }
            None => self.sim.settle(50_000_000),
        }
    }

    /// Drain completed packet outcomes (including any retired just
    /// before a swap).
    pub fn drain(&mut self) -> Vec<SimOutcome> {
        let mut outs = std::mem::take(&mut self.carried_outcomes);
        outs.extend(self.sim.drain());
        outs
    }

    /// Drain retired host ops (including any retired just before a swap).
    /// On a lossy channel, resolved reliable completions come back in
    /// sequence order with duplicates already suppressed.
    pub fn completions(&mut self) -> Vec<HostCompletion> {
        let mut comps = std::mem::take(&mut self.carried_completions);
        match &mut self.reliable {
            Some(r) => {
                r.pump(&mut self.sim);
                comps.extend(r.take_passthrough());
                comps.extend(r.take_resolved().into_iter().map(|(_, c)| c));
            }
            None => comps.extend(self.sim.host_completions()),
        }
        comps
    }

    /// Drive an interleaved packet/op schedule end to end: each op is
    /// submitted at its position of the arrival order (barrier-ordered
    /// after the packets preceding it), packets stream back-to-back, and
    /// the pipeline settles before the report is assembled.
    pub fn run_schedule(&mut self, schedule: &[ScheduleItem]) -> ScheduleReport {
        let lost_before = self.sim.counters().rx_dropped;
        let mut packets = 0u64;
        let mut ops_submitted = 0u64;
        let mut ops_rejected = Vec::new();
        for item in schedule {
            match item {
                ScheduleItem::Packet(p) => {
                    packets += 1;
                    let mut attempts = 0u32;
                    while !self.sim.enqueue(p.clone()) {
                        // RX full: let the pipeline make progress. The
                        // refused attempt counted a drop; the retry keeps
                        // the schedule lossless so op barriers stay
                        // aligned with the arrival order.
                        self.sim.step();
                        attempts += 1;
                        if attempts > 10_000 {
                            break; // wedged pipeline; surface via `lost`
                        }
                    }
                }
                ScheduleItem::Op(op) => match self.submit_control(op) {
                    Ok(_) => ops_submitted += 1,
                    Err(e) => ops_rejected.push(e),
                },
            }
        }
        self.settle();
        ScheduleReport {
            packets,
            lost: self.sim.counters().rx_dropped - lost_before,
            ops_submitted,
            ops_rejected,
            outcomes: self.drain(),
            completions: self.completions(),
        }
    }

    /// Pipeline cycles across the runtime's whole life, including
    /// designs retired by previous swaps.
    pub fn total_cycles(&self) -> u64 {
        self.retired_cycles.saturating_add(self.sim.cycle())
    }

    /// Completed reload reports, oldest first.
    pub fn swap_history(&self) -> &[SwapReport] {
        &self.swaps
    }

    /// Host ops in flight right now: queued or in transit on the ctrl
    /// channel, plus (on a lossy channel) reliable ops still awaiting
    /// resolution. The serving reactor's admission control keeps this
    /// below [`Runtime::ctrl_queue_depth`] instead of discovering
    /// `QueueFull` the hard way.
    pub fn ops_in_flight(&self) -> usize {
        self.sim.host_ops_pending() + self.reliable.as_ref().map_or(0, ReliableCtrl::outstanding)
    }

    /// Configured ctrl mailbox depth (the hard ceiling behind
    /// [`Runtime::ops_in_flight`]-based admission).
    pub fn ctrl_queue_depth(&self) -> usize {
        self.options.ctrl.queue_depth
    }

    /// Snapshot the runtime's telemetry.
    pub fn stats(&self) -> RuntimeStats {
        let cycle = self.sim.cycle();
        let stages = self
            .sim
            .stage_occupancy()
            .iter()
            .enumerate()
            .map(|(stage, &occupied_cycles)| StageTelemetry {
                stage,
                occupied_cycles,
                utilization: if cycle == 0 { 0.0 } else { occupied_cycles as f64 / cycle as f64 },
            })
            .collect();
        let lookups = self.sim.map_lookups();
        let hits = self.sim.map_hits();
        let maps = self
            .design
            .maps
            .iter()
            .enumerate()
            .map(|(i, def)| MapTelemetry {
                id: def.id,
                name: def.name.clone(),
                lookups: lookups.get(i).copied().unwrap_or(0),
                hits: hits.get(i).copied().unwrap_or(0),
                entries: self.sim.maps().get(def.id).map_or(0, |m| m.len()),
                capacity: def.max_entries as usize,
            })
            .collect();
        let counters = *self.sim.counters();
        let seconds = (cycle as f64 * CLOCK_NS / 1e9).max(1e-12);
        RuntimeStats {
            program: self.design.name.clone(),
            epoch: self.swaps.len() as u64,
            cycle,
            total_cycles: self.total_cycles(),
            counters,
            ctrl: self.sim.ctrl_stats().unwrap_or_default(),
            stages,
            maps,
            throughput_pps: counters.completed as f64 / seconds,
            steering: None,
            reliability: self.reliable.as_ref().map(|r| r.stats().snapshot()),
            slo: None,
        }
    }

    /// Whether the pipeline, control channel, and reliable layer are all
    /// quiet — the reload handshake's precondition.
    fn quiesced(&self) -> bool {
        self.sim.is_idle() && self.reliable.as_ref().is_none_or(|r| r.outstanding() == 0)
    }

    /// Drain-and-swap reload with an unbounded drain; see
    /// [`Runtime::try_reload`] for the bounded, roll-back-capable form.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline cannot quiesce within 50M cycles — a
    /// wedged-hardware bug, not a workload property.
    pub fn reload(&mut self, new_design: &PipelineDesign) -> SwapReport {
        match self.try_reload(new_design, 50_000_000) {
            Ok(report) => report,
            Err(e) => panic!("reload drain did not quiesce: {e}"),
        }
    }

    /// Drain-and-swap reload: quiesce ingress (the caller stops offering
    /// packets), drain every in-flight packet, buffered write, queued
    /// host op and outstanding reliable op — bounded by
    /// `drain_budget_cycles` — then migrate all keyspec-compatible map
    /// state into `new_design` and switch over. Returns the measured
    /// downtime.
    ///
    /// Any packet outcomes or host completions still undrained carry over
    /// to the new epoch's [`Runtime::drain`] / [`Runtime::completions`]
    /// unchanged — a swap never loses retired work.
    ///
    /// # Errors
    ///
    /// [`SwapError::DrainTimeout`] when the handshake does not quiesce
    /// within the budget. The reload **rolls back cleanly**: the abort
    /// happens before any state is migrated or the design switched, so
    /// the old pipeline keeps serving with all in-flight work intact,
    /// and the attempt is not recorded in [`Runtime::swap_history`].
    pub fn try_reload(
        &mut self,
        new_design: &PipelineDesign,
        drain_budget_cycles: u64,
    ) -> Result<SwapReport, SwapError> {
        // Sharding guard, before any state is touched: at scale, the
        // fleet runs every replica from the same image, so a design that
        // cannot shard soundly (or whose surviving maps change placement
        // under live traffic) must never start the drain.
        if self.options.replicas > 1 {
            if let Err(errs) = new_design.shard.require_sound(self.options.replicas) {
                return Err(SwapError::ShardUnsound {
                    replicas: self.options.replicas,
                    errors: errs.len(),
                    first: errs[0],
                });
            }
            if self.design.shard.analyzed {
                for old_def in &self.design.maps {
                    let Some(new_def) = migration_target(old_def, &new_design.maps) else {
                        continue;
                    };
                    let (Some(old_plan), Some(new_plan)) =
                        (self.design.shard.map(old_def.id), new_design.shard.map(new_def.id))
                    else {
                        continue;
                    };
                    if old_plan.placement != new_plan.placement {
                        return Err(SwapError::ShardPlacementChanged { map: new_def.id });
                    }
                }
            }
        }
        let quiesce_cycle = self.sim.cycle();
        // Drain: no new arrivals; everything in flight retires.
        let mut waited = 0u64;
        while !self.quiesced() {
            if waited >= drain_budget_cycles {
                let c = self.sim.counters();
                return Err(SwapError::DrainTimeout {
                    waited_cycles: waited,
                    in_flight: c.injected.saturating_sub(c.completed),
                    host_ops_pending: self.sim.host_ops_pending()
                        + self.reliable.as_ref().map_or(0, ReliableCtrl::outstanding),
                });
            }
            self.step();
            waited += 1;
        }
        let drain_cycles = self.sim.cycle() - quiesce_cycle;
        self.carried_outcomes.extend(self.sim.drain());
        let comps = self.completions();
        self.carried_completions.extend(comps);

        let mut new_sim = PipelineSim::with_options(new_design, self.options.sim);
        new_sim.attach_ctrl(self.options.ctrl);
        let _ = new_sim.attach_ctrl_loss(self.options.loss);

        // Migrate by keyspec: a map survives the swap when the new design
        // declares one with the same name and shape (capacity may change;
        // overflow entries are dropped and counted). A map the stores
        // cannot produce (a design/store mismatch) is dropped and
        // counted, never panicked over.
        let mut migrated_maps = Vec::new();
        let mut dropped_maps = Vec::new();
        let mut migrated_entries = 0u64;
        let mut dropped_entries = 0u64;
        for old_def in &self.design.maps {
            let Some(new_def) = migration_target(old_def, &new_design.maps) else {
                dropped_maps.push(old_def.id);
                continue;
            };
            let Some(old_map) = self.sim.maps().get(old_def.id) else {
                dropped_maps.push(old_def.id);
                continue;
            };
            let entries: Vec<(Vec<u8>, Vec<u8>)> =
                old_map.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
            let Some(new_map) = new_sim.maps_mut().get_mut(new_def.id) else {
                dropped_maps.push(old_def.id);
                continue;
            };
            for (k, v) in entries {
                match new_map.update(&k, &v, UpdateFlags::Any) {
                    Ok(_) => migrated_entries += 1,
                    Err(_) => dropped_entries += 1,
                }
            }
            migrated_maps.push(new_def.id);
        }

        // Model the reconfiguration time on the new pipeline's clock so
        // the downtime is observable in its cycle counter too.
        let config_cycles = self.options.reconfig_base_cycles.saturating_add(
            self.options.reconfig_cycles_per_stage.saturating_mul(new_design.stage_count() as u64),
        );
        for _ in 0..config_cycles {
            new_sim.step();
        }

        self.retired_cycles = self.retired_cycles.saturating_add(self.sim.cycle());
        self.sim = new_sim;
        self.design = new_design.clone();

        let downtime_cycles = drain_cycles + config_cycles;
        let report = SwapReport {
            quiesce_cycle,
            drain_cycles,
            config_cycles,
            downtime_cycles,
            downtime_ns: downtime_cycles as f64 * CLOCK_NS,
            migrated_maps,
            dropped_maps,
            migrated_entries,
            dropped_entries,
        };
        self.swaps.push(report.clone());
        Ok(report)
    }
}

/// Why a reload attempt was aborted (the old design keeps serving).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// The drain handshake did not quiesce within its cycle budget.
    DrainTimeout {
        /// Cycles spent waiting before giving up.
        waited_cycles: u64,
        /// Packets injected but not yet retired at abort time.
        in_flight: u64,
        /// Host ops still queued, delayed, or awaiting reliable
        /// resolution at abort time.
        host_ops_pending: usize,
    },
    /// The new design's shard plan is unsound at the runtime's
    /// deployment scale ([`RuntimeOptions::replicas`]).
    ShardUnsound {
        /// Replica count the reload was validated against.
        replicas: usize,
        /// Total violations the static pass reported.
        errors: usize,
        /// The first violation, with its map and instruction anchors.
        first: ShardError,
    },
    /// A map surviving the swap would cross the private/shared placement
    /// boundary, which a live fleet cannot migrate consistently.
    ShardPlacementChanged {
        /// Offending map id in the new design.
        map: u32,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::DrainTimeout { waited_cycles, in_flight, host_ops_pending } => write!(
                f,
                "drain timed out after {waited_cycles} cycles \
                 ({in_flight} packets in flight, {host_ops_pending} host ops pending)"
            ),
            SwapError::ShardUnsound { replicas, errors, first } => write!(
                f,
                "new design is unsound at {replicas} replicas \
                 ({errors} violation(s); first: {first})"
            ),
            SwapError::ShardPlacementChanged { map } => {
                write!(f, "map {map} changes private/shared placement across the reload")
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// Lower a generated [`ControlOp`] to the simulator's host-op type.
pub fn to_host_op(op: &ControlOp) -> HostOp {
    match op.kind {
        ControlOpKind::Lookup => HostOp::Lookup { map: op.map, key: op.key.clone() },
        ControlOpKind::Update => HostOp::Update {
            map: op.map,
            key: op.key.clone(),
            value: op.value.clone(),
            flags: UpdateFlags::Any,
        },
        ControlOpKind::Delete => HostOp::Delete { map: op.map, key: op.key.clone() },
        ControlOpKind::Dump => HostOp::Dump { map: op.map },
    }
}
