//! Host control plane for eHDL NICs.
//!
//! The paper's prototype is driven from the host like any XDP deployment:
//! the control plane installs rules, reads counters, and replaces the
//! loaded program — all while packets stream through the generated
//! pipeline at line rate. This crate models that host side on top of the
//! cycle-level simulator:
//!
//! * [`Runtime`] — owns a pipeline, its PCIe/AXI-Lite control channel,
//!   and the arrival schedule; drives interleaved packet/op workloads
//!   from [`ehdl_traffic::ctrlgen`];
//! * [`RuntimeStats`] / [`PeriodicExporter`] — telemetry snapshots
//!   (per-stage occupancy, flush/fault counters, map hit rates, host-op
//!   latency) serialized to JSON without any external dependency;
//! * [`Runtime::reload`] — drain-and-swap program replacement: quiesce
//!   ingress, drain the pipeline, migrate every keyspec-compatible map,
//!   switch to the new design, and report the measured downtime in
//!   cycles.
//!
//! Live map access is *barrier-ordered* (see [`ehdl_hwsim::ctrl`]): an op
//! behaves exactly as if it executed between two specific packets of a
//! sequential run, which the differential tests enforce against the
//! reference interpreter even when host writes land inside open RAW
//! hazard windows.

#![deny(clippy::unwrap_used)]

mod control;
mod retry;
mod telemetry;

pub use control::{
    to_host_op, Runtime, RuntimeOptions, ScheduleReport, SwapError, SwapReport,
    RECONFIG_BASE_CYCLES, RECONFIG_CYCLES_PER_STAGE,
};
pub use retry::{ReliableCtrl, ReliableSnapshot, ReliableStats, RetryPolicy, RELIABLE_SEQ_BASE};
pub use telemetry::{
    json_escape, validate_json, CsrSnapshot, MapTelemetry, PeriodicExporter, RuntimeStats,
    SloSnapshot, StageTelemetry,
};
