//! Reliable host-op submission over a lossy control channel.
//!
//! The hardware mailbox is a posted-write path: a frame accepted at the
//! PCIe doorbell may still be dropped, duplicated, corrupted, or delayed
//! before the device applies it — and the completion ride back is just
//! as unreliable ([`ehdl_hwsim::CtrlLossConfig`]). This module is the
//! driver-side recovery protocol that turns that channel into
//! exactly-once semantics:
//!
//! * every op is wrapped in a sequence-numbered frame
//!   ([`ehdl_hwsim::encode_frame`]); the device deduplicates on the
//!   sequence number and answers retransmissions from its applied-op
//!   cache, so a resubmitted op is *idempotent*;
//! * each outstanding op carries a per-attempt deadline; a missed
//!   deadline resubmits the identical frame with bounded exponential
//!   backoff;
//! * duplicate completions (the device answered both the original and a
//!   retransmission) are suppressed by sequence number — the first
//!   resolution wins and later copies are counted, not delivered;
//! * ops are applied *in submission order*: the channel can delay or
//!   reorder frames, so the layer keeps at most one frame on the wire
//!   and parks later ops in a FIFO until the head resolves. A retried
//!   `Delete` can therefore never leapfrog the `Update` submitted after
//!   it — retried op sequences are reference-identical to a lossless
//!   channel.

use ehdl_hwsim::{encode_frame, CtrlError, HostCompletion, HostOp, Log2Histogram, PipelineSim};
use std::collections::{BTreeMap, VecDeque};

/// Sequence numbers for reliable frames start far above the backdoor
/// op-id range, so the two completion streams can never collide.
pub const RELIABLE_SEQ_BASE: u64 = 1 << 32;

/// Timeout and backoff parameters for reliable submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Cycles to wait for a completion before the first retransmission.
    pub timeout_cycles: u64,
    /// Backoff multiplier applied to the deadline after each attempt.
    pub backoff_factor: u64,
    /// Ceiling on the per-attempt deadline, in cycles.
    pub max_backoff_cycles: u64,
    /// Attempts (including the first) before the op is abandoned.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            timeout_cycles: 512,
            backoff_factor: 2,
            max_backoff_cycles: 8192,
            max_attempts: 16,
        }
    }
}

/// Counters for the reliable layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliableStats {
    /// Ops handed to the layer.
    pub ops: u64,
    /// Ops that resolved with a completion.
    pub completed: u64,
    /// Frame retransmissions after a missed deadline.
    pub retries: u64,
    /// Retransmissions the mailbox refused (queue full); the op stays
    /// outstanding and backs off.
    pub resubmit_rejected: u64,
    /// Completions discarded because their op had already resolved.
    pub dup_completions_suppressed: u64,
    /// Ops abandoned after `max_attempts`.
    pub gave_up: u64,
    /// Submit-to-resolve latency distribution, in cycles. A fixed-size
    /// log2-bucket histogram: long-haul serving campaigns complete
    /// millions of ops, so the per-sample `Vec` this used to be grew
    /// without bound and re-sorted on every telemetry snapshot.
    latencies: Log2Histogram,
}

impl ReliableStats {
    /// p99 of submit-to-resolve latency (0 with no completions; bucket
    /// upper edge, within 12.5% of the exact order statistic).
    pub fn p99_latency_cycles(&self) -> u64 {
        self.latencies.percentile(0.99)
    }

    /// The full submit-to-resolve latency histogram.
    pub fn latency_histogram(&self) -> &Log2Histogram {
        &self.latencies
    }

    /// Fixed-size projection for telemetry snapshots.
    pub fn snapshot(&self) -> ReliableSnapshot {
        ReliableSnapshot {
            ops: self.ops,
            completed: self.completed,
            retries: self.retries,
            dup_completions_suppressed: self.dup_completions_suppressed,
            gave_up: self.gave_up,
            p99_latency_cycles: self.p99_latency_cycles(),
        }
    }
}

/// Copyable summary of [`ReliableStats`] for [`crate::RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableSnapshot {
    /// Ops handed to the layer.
    pub ops: u64,
    /// Ops that resolved with a completion.
    pub completed: u64,
    /// Frame retransmissions.
    pub retries: u64,
    /// Duplicate completions suppressed.
    pub dup_completions_suppressed: u64,
    /// Ops abandoned after exhausting attempts.
    pub gave_up: u64,
    /// p99 submit-to-resolve latency in cycles.
    pub p99_latency_cycles: u64,
}

/// One op awaiting its completion.
#[derive(Debug)]
struct Outstanding {
    seq: u64,
    frame: Vec<u8>,
    first_submit: u64,
    attempts: u32,
    backoff: u64,
    deadline: u64,
}

/// Driver-side exactly-once submission state machine.
#[derive(Debug)]
pub struct ReliableCtrl {
    policy: RetryPolicy,
    next_seq: u64,
    /// The op currently on the wire (at most one, for in-order apply).
    outstanding: Option<Outstanding>,
    /// Ops waiting behind the head of line, in submission order.
    pending: VecDeque<Outstanding>,
    resolved: BTreeMap<u64, HostCompletion>,
    passthrough: Vec<HostCompletion>,
    stats: ReliableStats,
}

impl ReliableCtrl {
    /// A fresh state machine under `policy`.
    pub fn new(policy: RetryPolicy) -> ReliableCtrl {
        ReliableCtrl {
            policy,
            next_seq: RELIABLE_SEQ_BASE,
            outstanding: None,
            pending: VecDeque::new(),
            resolved: BTreeMap::new(),
            passthrough: Vec::new(),
            stats: ReliableStats::default(),
        }
    }

    /// Submit `op` reliably, returning its sequence number. A full
    /// mailbox is not an error here — the op stays outstanding and
    /// [`ReliableCtrl::pump`] retries it; nor is a busy head-of-line op
    /// — the op queues behind it. Only structural failures (no channel,
    /// unknown map, bad frame) surface immediately.
    ///
    /// # Errors
    ///
    /// [`CtrlError::NotAttached`], [`CtrlError::NoSuchMap`], or
    /// [`CtrlError::BadFrame`] from driver-side validation.
    pub fn submit(&mut self, sim: &mut PipelineSim, op: &HostOp) -> Result<u64, CtrlError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = encode_frame(seq, op);
        let cycle = sim.cycle();
        self.stats.ops += 1;
        let mut o = Outstanding {
            seq,
            frame,
            first_submit: cycle,
            attempts: 0,
            backoff: self.policy.timeout_cycles,
            deadline: cycle,
        };
        if self.outstanding.is_none() {
            self.transmit(sim, &mut o)?;
            self.outstanding = Some(o);
        } else {
            self.pending.push_back(o);
        }
        Ok(seq)
    }

    /// Put `o`'s frame on the wire: on acceptance arm the timeout, on a
    /// full mailbox leave the deadline at `now` so the next pump retries.
    fn transmit(&mut self, sim: &mut PipelineSim, o: &mut Outstanding) -> Result<(), CtrlError> {
        let cycle = sim.cycle();
        o.attempts += 1;
        match sim.submit_host_frame(&o.frame) {
            Ok(_) => {
                if o.attempts > 1 {
                    self.stats.retries += 1;
                }
                o.deadline = cycle + o.backoff;
                Ok(())
            }
            Err(CtrlError::QueueFull { .. }) => {
                if o.attempts > 1 {
                    self.stats.resubmit_rejected += 1;
                }
                o.deadline = cycle;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Collect completions, retransmit the head-of-line op if it missed
    /// its deadline, and promote the next queued op once the head
    /// resolves. Call once per simulation step (or per batch of steps)
    /// while ops are outstanding.
    pub fn pump(&mut self, sim: &mut PipelineSim) {
        let cycle = sim.cycle();
        for c in sim.host_completions() {
            if let Some(o) = self.outstanding.take_if(|o| o.seq == c.id) {
                self.stats.completed += 1;
                self.stats.latencies.record(cycle.saturating_sub(o.first_submit));
                self.resolved.insert(o.seq, c);
            } else if self.resolved.contains_key(&c.id) {
                self.stats.dup_completions_suppressed += 1;
            } else {
                // Not ours (a backdoor op's completion) — hand it back.
                self.passthrough.push(c);
            }
        }
        // Retransmit a head-of-line op past its deadline (with backoff),
        // or abandon it after max_attempts.
        if let Some(mut o) = self.outstanding.take() {
            if cycle < o.deadline {
                self.outstanding = Some(o);
            } else if o.attempts >= self.policy.max_attempts {
                self.stats.gave_up += 1;
            } else {
                o.backoff = (o.backoff.saturating_mul(self.policy.backoff_factor))
                    .min(self.policy.max_backoff_cycles)
                    .max(1);
                if self.transmit(sim, &mut o).is_ok() {
                    self.outstanding = Some(o);
                } else {
                    self.stats.gave_up += 1;
                }
            }
        }
        // Promote the next queued op once the wire is free.
        while self.outstanding.is_none() {
            let Some(mut o) = self.pending.pop_front() else { break };
            if self.transmit(sim, &mut o).is_ok() {
                self.outstanding = Some(o);
            } else {
                self.stats.gave_up += 1;
            }
        }
    }

    /// Step the simulator until every outstanding op resolves (or is
    /// abandoned) and the pipeline is idle, bounded by `budget` cycles.
    /// Returns whether everything settled.
    pub fn drive(&mut self, sim: &mut PipelineSim, budget: u64) -> bool {
        for _ in 0..budget {
            self.pump(sim);
            if self.outstanding() == 0 && sim.is_idle() {
                return true;
            }
            sim.step();
        }
        self.pump(sim);
        self.outstanding() == 0 && sim.is_idle()
    }

    /// Ops still awaiting completion (on the wire or queued behind it).
    pub fn outstanding(&self) -> usize {
        usize::from(self.outstanding.is_some()) + self.pending.len()
    }

    /// Take every resolved completion, ordered by sequence number.
    pub fn take_resolved(&mut self) -> Vec<(u64, HostCompletion)> {
        std::mem::take(&mut self.resolved).into_iter().collect()
    }

    /// Take completions that did not belong to this layer (backdoor
    /// submissions sharing the channel).
    pub fn take_passthrough(&mut self) -> Vec<HostCompletion> {
        std::mem::take(&mut self.passthrough)
    }

    /// The layer's counters.
    pub fn stats(&self) -> &ReliableStats {
        &self.stats
    }
}
