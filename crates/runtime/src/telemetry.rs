//! Telemetry: structured snapshots of a running pipeline and a periodic
//! JSON exporter (hand-written serialization — the tree carries no serde).

use crate::retry::ReliableSnapshot;
use ehdl_hwsim::{CtrlStats, SimCounters, SteeringStats};

/// Per-stage occupancy telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTelemetry {
    /// Stage index in flow order.
    pub stage: usize,
    /// Cycles the stage held a packet.
    pub occupied_cycles: u64,
    /// `occupied_cycles / total cycles` (0 when the clock has not run).
    pub utilization: f64,
}

/// Per-map access telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct MapTelemetry {
    /// Map id.
    pub id: u32,
    /// Map name.
    pub name: String,
    /// Datapath lookups issued.
    pub lookups: u64,
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl MapTelemetry {
    /// Hit fraction (0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One full telemetry snapshot of a [`crate::Runtime`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Name of the loaded program.
    pub program: String,
    /// Reload epoch (number of completed swaps).
    pub epoch: u64,
    /// Cycles on the current design's clock.
    pub cycle: u64,
    /// Cycles across all designs ever loaded.
    pub total_cycles: u64,
    /// Datapath event counters.
    pub counters: SimCounters,
    /// Control-channel counters.
    pub ctrl: CtrlStats,
    /// Per-stage occupancy.
    pub stages: Vec<StageTelemetry>,
    /// Per-map access statistics.
    pub maps: Vec<MapTelemetry>,
    /// Achieved throughput in packets per second of simulated time.
    pub throughput_pps: f64,
    /// Multi-pipeline steering statistics (`None` when the runtime
    /// drives a single pipeline).
    pub steering: Option<SteeringStats>,
    /// Reliable-submission statistics (`None` on a lossless channel,
    /// which bypasses the retry layer).
    pub reliability: Option<ReliableSnapshot>,
    /// Serving-level SLO accounting (`None` outside a serving reactor).
    pub slo: Option<SloSnapshot>,
}

/// Serving-level SLO figures, filled in by `ehdl-serve`'s reactor: the
/// request-grained view (how many packets/ops were served, how fast, and
/// what fraction of the error budget the failures burned) that rides
/// along with the device-grained counters above.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSnapshot {
    /// Requests offered (packets + accepted ops).
    pub offered: u64,
    /// Requests served successfully.
    pub served: u64,
    /// Requests that failed (lost packets, errored/abandoned ops).
    pub failed: u64,
    /// Ops refused at admission (`ServeError::Overloaded`); backpressure,
    /// not failure — counted separately from the SLI.
    pub shed: u64,
    /// `served / offered` (1.0 with nothing offered).
    pub availability: f64,
    /// Cycles the datapath was unavailable (reload swaps, watchdog
    /// recovery windows).
    pub downtime_cycles: u64,
    /// Fraction of the error budget consumed (1.0 = budget exhausted;
    /// may exceed 1.0).
    pub error_budget_consumed: f64,
    /// Observed failure rate over the *unavailability* budget: 1.0 means
    /// failures arrive exactly at the sustainable rate.
    pub burn_rate: f64,
    /// p50 packet latency in cycles.
    pub pkt_p50_cycles: u64,
    /// p99 packet latency in cycles.
    pub pkt_p99_cycles: u64,
    /// p999 packet latency in cycles.
    pub pkt_p999_cycles: u64,
    /// p50 op latency (client submit to ack) in cycles.
    pub op_p50_cycles: u64,
    /// p99 op latency in cycles.
    pub op_p99_cycles: u64,
    /// p999 op latency in cycles.
    pub op_p999_cycles: u64,
}

/// Escape `s` for embedding in a JSON string literal (quotes, backslashes
/// and control characters — program and map names come from ELF section
/// strings, which the exporter must not trust to be JSON-clean).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RuntimeStats {
    /// Serialize the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"program\": \"{}\",\n", json_escape(&self.program)));
        s.push_str(&format!("  \"epoch\": {},\n", self.epoch));
        s.push_str(&format!("  \"cycle\": {},\n", self.cycle));
        s.push_str(&format!("  \"total_cycles\": {},\n", self.total_cycles));
        s.push_str(&format!("  \"throughput_pps\": {:.1},\n", self.throughput_pps));
        let c = &self.counters;
        s.push_str(&format!(
            "  \"counters\": {{\"injected\": {}, \"completed\": {}, \"rx_dropped\": {}, \
             \"flushes\": {}, \"flush_replays\": {}, \"bounds_faults\": {}, \
             \"fault_replays\": {}, \"watchdog_resets\": {}, \"host_ops\": {}, \
             \"host_op_flushes\": {}, \"mem_stall_cycles\": {}}},\n",
            c.injected,
            c.completed,
            c.rx_dropped,
            c.flushes,
            c.flush_replays,
            c.bounds_faults,
            c.fault_replays,
            c.watchdog_resets,
            c.host_ops,
            c.host_op_flushes,
            c.mem_stall_cycles,
        ));
        let k = &self.ctrl;
        s.push_str(&format!(
            "  \"ctrl\": {{\"submitted\": {}, \"completed\": {}, \"failed\": {}, \
             \"rejected\": {}, \"flushes\": {}, \"flushed_readers\": {}, \
             \"mean_latency_cycles\": {:.2}, \"max_latency_cycles\": {}}},\n",
            k.submitted,
            k.completed,
            k.failed,
            k.rejected,
            k.flushes,
            k.flushed_readers,
            k.mean_latency_cycles(),
            k.latency_cycles_max,
        ));
        if let Some(r) = &self.reliability {
            s.push_str(&format!(
                "  \"reliability\": {{\"ops\": {}, \"completed\": {}, \"retries\": {}, \
                 \"dup_completions_suppressed\": {}, \"gave_up\": {}, \
                 \"p99_latency_cycles\": {}}},\n",
                r.ops,
                r.completed,
                r.retries,
                r.dup_completions_suppressed,
                r.gave_up,
                r.p99_latency_cycles,
            ));
        }
        if let Some(o) = &self.slo {
            s.push_str(&format!(
                "  \"slo\": {{\"offered\": {}, \"served\": {}, \"failed\": {}, \
                 \"shed\": {}, \"availability\": {:.6}, \"downtime_cycles\": {}, \
                 \"error_budget_consumed\": {:.4}, \"burn_rate\": {:.4}, \
                 \"pkt_latency_cycles\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}}, \
                 \"op_latency_cycles\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}}}},\n",
                o.offered,
                o.served,
                o.failed,
                o.shed,
                o.availability,
                o.downtime_cycles,
                o.error_budget_consumed,
                o.burn_rate,
                o.pkt_p50_cycles,
                o.pkt_p99_cycles,
                o.pkt_p999_cycles,
                o.op_p50_cycles,
                o.op_p99_cycles,
                o.op_p999_cycles,
            ));
        }
        if let Some(st) = &self.steering {
            s.push_str(&format!(
                "  \"steering\": {{\"imbalance\": {:.4}, \"pipelines\": [",
                st.imbalance
            ));
            for i in 0..st.steered.len() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"steered\": {}, \"dropped\": {}, \"pkts_per_cycle\": {:.4}}}",
                    st.steered[i],
                    st.dropped.get(i).copied().unwrap_or(0),
                    st.pkts_per_cycle.get(i).copied().unwrap_or(0.0),
                ));
            }
            s.push_str("]},\n");
        }
        s.push_str("  \"stages\": [");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"stage\": {}, \"occupied_cycles\": {}, \"utilization\": {:.4}}}",
                st.stage, st.occupied_cycles, st.utilization
            ));
        }
        s.push_str("],\n");
        s.push_str("  \"maps\": [");
        for (i, m) in self.maps.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"id\": {}, \"name\": \"{}\", \"lookups\": {}, \"hits\": {}, \
                 \"hit_rate\": {:.4}, \"entries\": {}, \"capacity\": {}}}",
                m.id,
                json_escape(&m.name),
                m.lookups,
                m.hits,
                m.hit_rate(),
                m.entries,
                m.capacity
            ));
        }
        s.push_str("]\n}\n");
        s
    }
}

/// The 32-bit CSR file a host driver would actually read over AXI-Lite:
/// hardware counter registers are 32 bits wide, so the snapshot
/// *saturates* rather than wrapping — a long campaign must never make a
/// counter appear to go backwards or restart from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrSnapshot {
    /// Completed packets (saturating).
    pub completed: u32,
    /// RX drops (saturating).
    pub rx_dropped: u32,
    /// Hazard flushes (saturating).
    pub flushes: u32,
    /// Flush replays (saturating).
    pub flush_replays: u32,
    /// Host ops applied (saturating).
    pub host_ops: u32,
    /// Host-write RAW repairs (saturating).
    pub host_op_flushes: u32,
    /// Watchdog resets (saturating).
    pub watchdog_resets: u32,
}

impl CsrSnapshot {
    /// Project the 64-bit counters onto the 32-bit CSR registers.
    pub fn of(c: &SimCounters) -> CsrSnapshot {
        CsrSnapshot {
            completed: sat32(c.completed),
            rx_dropped: sat32(c.rx_dropped),
            flushes: sat32(c.flushes),
            flush_replays: sat32(c.flush_replays),
            host_ops: sat32(c.host_ops),
            host_op_flushes: sat32(c.host_op_flushes),
            watchdog_resets: sat32(c.watchdog_resets),
        }
    }
}

/// Saturating 64→32-bit projection for CSR reads.
fn sat32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Periodic telemetry export: emits a JSON snapshot every
/// `interval_cycles` of runtime clock, mirroring a host daemon polling
/// the NIC's CSRs on a timer.
#[derive(Debug, Clone)]
pub struct PeriodicExporter {
    interval_cycles: u64,
    next_cycle: u64,
    exports: Vec<String>,
}

impl PeriodicExporter {
    /// Export every `interval_cycles` (panics if zero).
    pub fn new(interval_cycles: u64) -> PeriodicExporter {
        assert!(interval_cycles > 0, "export interval must be positive");
        PeriodicExporter { interval_cycles, next_cycle: interval_cycles, exports: Vec::new() }
    }

    /// Offer a snapshot; exports (and returns) its JSON if the interval
    /// elapsed since the last export. Call as often as convenient — the
    /// cadence is governed by `stats.total_cycles`, not by call count.
    pub fn poll(&mut self, stats: &RuntimeStats) -> Option<&str> {
        if stats.total_cycles < self.next_cycle {
            return None;
        }
        // Catch up so a long gap yields one export, not a burst.
        let intervals = (stats.total_cycles - self.next_cycle) / self.interval_cycles + 1;
        self.next_cycle += intervals * self.interval_cycles;
        self.exports.push(stats.to_json());
        self.exports.last().map(String::as_str)
    }

    /// Every snapshot exported so far.
    pub fn exports(&self) -> &[String] {
        &self.exports
    }
}

/// Minimal JSON validity checker for the hand-rolled exporters: parses
/// one complete JSON value (RFC 8259 grammar, no semantic interpretation)
/// and rejects trailing garbage. The telemetry and bench writers build
/// JSON with `format!`, so this is the test oracle that catches a stray
/// quote, comma or unescaped name before a downstream consumer does.
///
/// # Errors
///
/// A human-readable description with the byte offset of the first
/// violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {}", *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {}", *pos)),
            },
            0x00..=0x1f => {
                return Err(format!("unescaped control character at byte {}", *pos));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> bool {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("expected digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("expected fraction digits at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("expected exponent digits at byte {}", *pos));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_snapshot_saturates_instead_of_wrapping() {
        // A campaign long enough to exceed 2^32 completions must pin the
        // 32-bit CSR at its maximum, not wrap to a small number.
        let c = SimCounters {
            completed: u64::from(u32::MAX) + 12_345,
            flushes: u64::MAX,
            host_ops: 7,
            ..Default::default()
        };
        let csr = CsrSnapshot::of(&c);
        assert_eq!(csr.completed, u32::MAX);
        assert_eq!(csr.flushes, u32::MAX);
        assert_eq!(csr.host_ops, 7);
        // The wrapped interpretation would have been small — make the
        // regression explicit.
        assert_ne!(u64::from(csr.completed), (u64::from(u32::MAX) + 12_345) & 0xffff_ffff);
    }

    #[test]
    fn exporter_cadence_follows_cycles() {
        let mut stats = RuntimeStats {
            program: "t".into(),
            epoch: 0,
            cycle: 0,
            total_cycles: 0,
            counters: SimCounters::default(),
            ctrl: CtrlStats::default(),
            stages: vec![],
            maps: vec![],
            throughput_pps: 0.0,
            steering: None,
            reliability: None,
            slo: None,
        };
        let mut exp = PeriodicExporter::new(1000);
        assert!(exp.poll(&stats).is_none());
        stats.total_cycles = 999;
        assert!(exp.poll(&stats).is_none());
        stats.total_cycles = 1000;
        assert!(exp.poll(&stats).is_some());
        assert!(exp.poll(&stats).is_none(), "same cycle exports once");
        // A long gap emits one catch-up export, not a burst.
        stats.total_cycles = 10_500;
        assert!(exp.poll(&stats).is_some());
        assert!(exp.poll(&stats).is_none());
        stats.total_cycles = 11_000;
        assert!(exp.poll(&stats).is_some());
        assert_eq!(exp.exports().len(), 3);
    }

    #[test]
    fn json_contains_every_section() {
        let stats = RuntimeStats {
            program: "fw".into(),
            epoch: 2,
            cycle: 10,
            total_cycles: 30,
            counters: SimCounters { completed: 5, ..Default::default() },
            ctrl: CtrlStats { submitted: 3, completed: 3, ..Default::default() },
            stages: vec![StageTelemetry { stage: 0, occupied_cycles: 7, utilization: 0.7 }],
            maps: vec![MapTelemetry {
                id: 0,
                name: "sessions".into(),
                lookups: 10,
                hits: 4,
                entries: 2,
                capacity: 64,
            }],
            throughput_pps: 1.0e6,
            steering: None,
            reliability: None,
            slo: None,
        };
        let json = stats.to_json();
        for key in [
            "\"program\"",
            "\"epoch\"",
            "\"counters\"",
            "\"ctrl\"",
            "\"stages\"",
            "\"maps\"",
            "\"hit_rate\": 0.4000",
            "\"utilization\": 0.7000",
            "\"mean_latency_cycles\"",
            "\"mem_stall_cycles\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("\"steering\""), "single-pipeline snapshots omit steering");
    }

    fn full_stats() -> RuntimeStats {
        // Every optional section populated: steering, reliability, slo.
        RuntimeStats {
            program: "fw".into(),
            epoch: 2,
            cycle: 10,
            total_cycles: 30,
            counters: SimCounters { completed: 5, ..Default::default() },
            ctrl: CtrlStats { submitted: 3, completed: 3, ..Default::default() },
            stages: vec![StageTelemetry { stage: 0, occupied_cycles: 7, utilization: 0.7 }],
            maps: vec![MapTelemetry {
                id: 0,
                name: "sessions".into(),
                lookups: 10,
                hits: 4,
                entries: 2,
                capacity: 64,
            }],
            throughput_pps: 1.0e6,
            steering: Some(SteeringStats {
                steered: vec![30, 10],
                dropped: vec![0, 2],
                pkts_per_cycle: vec![0.25, 0.125],
                imbalance: 1.5,
            }),
            reliability: Some(ReliableSnapshot {
                ops: 9,
                completed: 9,
                retries: 2,
                dup_completions_suppressed: 1,
                gave_up: 0,
                p99_latency_cycles: 640,
            }),
            slo: Some(SloSnapshot {
                offered: 1000,
                served: 995,
                failed: 5,
                shed: 3,
                availability: 0.995,
                downtime_cycles: 4096,
                error_budget_consumed: 0.5,
                burn_rate: 1.25,
                pkt_p50_cycles: 40,
                pkt_p99_cycles: 90,
                pkt_p999_cycles: 130,
                op_p50_cycles: 70,
                op_p99_cycles: 700,
                op_p999_cycles: 1400,
            }),
        }
    }

    #[test]
    fn every_snapshot_shape_serializes_to_valid_json() {
        // The satellite's coverage bar: the minimal parser accepts every
        // exported shape — bare, partially-populated, and fully populated
        // (incl. the SLO section) — and the exporter stream too.
        let mut stats = full_stats();
        validate_json(&stats.to_json()).expect("full shape");
        stats.slo = None;
        validate_json(&stats.to_json()).expect("no slo");
        stats.reliability = None;
        validate_json(&stats.to_json()).expect("no reliability");
        stats.steering = None;
        validate_json(&stats.to_json()).expect("bare shape");
        stats.stages.clear();
        stats.maps.clear();
        validate_json(&stats.to_json()).expect("empty arrays");

        let mut exp = PeriodicExporter::new(10);
        stats.total_cycles = 30;
        assert!(exp.poll(&stats).is_some());
        for json in exp.exports() {
            validate_json(json).expect("exporter output");
        }
    }

    #[test]
    fn hostile_names_are_escaped() {
        // Program and map names come from ELF strings; quotes and
        // backslashes in them used to produce syntactically broken JSON.
        let mut stats = full_stats();
        stats.program = "fw\"1.0\"\\prod\n".into();
        stats.maps[0].name = "tab\tle\u{1}".into();
        let json = stats.to_json();
        validate_json(&json).unwrap_or_else(|e| panic!("hostile names break JSON: {e}\n{json}"));
        assert!(json.contains("fw\\\"1.0\\\"\\\\prod\\n"));
        assert!(json.contains("tab\\tle\\u0001"));
    }

    #[test]
    fn validator_accepts_and_rejects_correctly() {
        for good in [
            "{}",
            "[]",
            "  {\"a\": [1, -2.5, 1e9, true, false, null], \"b\": {\"c\": \"d\\\"e\\u00ff\"}} ",
            "3.25",
            "\"\"",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{'a': 1}",
            "{\"a\": \"unterminated}",
            "{\"a\": \"bad\\x\"}",
            "{\"a\": 01e}",
            "[1, 2",
            "{} trailing",
            "{\"a\": \"raw\ncontrol\"}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted invalid JSON: {bad:?}");
        }
    }

    #[test]
    fn json_exports_steering_section() {
        let mut stats = RuntimeStats {
            program: "fw".into(),
            epoch: 0,
            cycle: 0,
            total_cycles: 0,
            counters: SimCounters::default(),
            ctrl: CtrlStats::default(),
            stages: vec![],
            maps: vec![],
            throughput_pps: 0.0,
            steering: None,
            reliability: None,
            slo: None,
        };
        stats.steering = Some(SteeringStats {
            steered: vec![30, 10],
            dropped: vec![0, 2],
            pkts_per_cycle: vec![0.25, 0.125],
            imbalance: 1.5,
        });
        let json = stats.to_json();
        for key in [
            "\"steering\"",
            "\"imbalance\": 1.5000",
            "\"steered\": 30",
            "\"dropped\": 2",
            "\"pkts_per_cycle\": 0.2500",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
