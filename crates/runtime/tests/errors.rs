//! Negative paths on the host control surface: every [`MapError`]
//! variant the channel can raise comes back typed in the completion, and
//! submission-time failures come back typed as [`CtrlError`].

use ehdl_core::Compiler;
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
use ehdl_ebpf::maps::{MapDef, MapError, MapKind, UpdateFlags};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_hwsim::{CtrlError, CtrlOptions, HostOp, HostOpResult};
use ehdl_runtime::{Runtime, RuntimeOptions};

/// A minimal lookup→update program over a 4-entry hash map, so host ops
/// can exhaust the map without streaming thousands of packets.
fn tiny_map_program() -> Program {
    let mut a = Asm::new();
    let skip = a.new_label();
    a.load(MemSize::W, 7, 1, 0);
    a.load(MemSize::B, 2, 7, 0);
    a.store_reg(MemSize::W, 10, -8, 2);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
    a.load(MemSize::Dw, 6, 0, 0);
    a.bind(skip);
    a.alu64_imm(AluOp::Add, 6, 1);
    a.store_reg(MemSize::Dw, 10, -16, 6);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, -16);
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);
    a.mov64_imm(0, 3);
    a.exit();
    Program::new("tiny", a.into_insns(), vec![MapDef::new(0, "cells", MapKind::Hash, 4, 8, 4)])
}

fn runtime() -> Runtime {
    let design = Compiler::new().compile(&tiny_map_program()).expect("tiny program compiles");
    Runtime::new(
        &design,
        RuntimeOptions {
            ctrl: CtrlOptions { latency_cycles: 2, queue_depth: 64 },
            ..Default::default()
        },
    )
}

fn key(i: u8) -> Vec<u8> {
    vec![i, 0, 0, 0]
}

fn val(i: u8) -> Vec<u8> {
    vec![i, 0, 0, 0, 0, 0, 0, 0]
}

/// Submit one op, settle, and return its typed result.
fn one_op(rt: &mut Runtime, op: HostOp) -> Result<HostOpResult, MapError> {
    rt.submit(op).expect("channel accepts the op");
    rt.settle();
    let mut comps = rt.completions();
    assert_eq!(comps.len(), 1, "exactly one completion");
    comps.remove(0).result
}

#[test]
fn bad_key_size_is_reported() {
    let mut rt = runtime();
    let r = one_op(&mut rt, HostOp::Lookup { map: 0, key: vec![1, 2] });
    assert_eq!(r, Err(MapError::BadKeySize { expected: 4, got: 2 }));
}

#[test]
fn bad_value_size_is_reported() {
    let mut rt = runtime();
    let r = one_op(
        &mut rt,
        HostOp::Update { map: 0, key: key(1), value: vec![9; 3], flags: UpdateFlags::Any },
    );
    assert_eq!(r, Err(MapError::BadValueSize { expected: 8, got: 3 }));
}

#[test]
fn delete_of_missing_key_is_no_such_key() {
    let mut rt = runtime();
    let r = one_op(&mut rt, HostOp::Delete { map: 0, key: key(7) });
    assert_eq!(r, Err(MapError::NoSuchKey));
}

#[test]
fn exist_constrained_update_of_missing_key_is_no_such_key() {
    let mut rt = runtime();
    let r = one_op(
        &mut rt,
        HostOp::Update { map: 0, key: key(7), value: val(1), flags: UpdateFlags::Exist },
    );
    assert_eq!(r, Err(MapError::NoSuchKey));
}

#[test]
fn noexist_update_of_present_key_is_key_exists() {
    let mut rt = runtime();
    let r = one_op(
        &mut rt,
        HostOp::Update { map: 0, key: key(1), value: val(1), flags: UpdateFlags::NoExist },
    );
    assert_eq!(r, Ok(HostOpResult::Updated));
    let r = one_op(
        &mut rt,
        HostOp::Update { map: 0, key: key(1), value: val(2), flags: UpdateFlags::NoExist },
    );
    assert_eq!(r, Err(MapError::KeyExists));
}

#[test]
fn overflowing_the_map_is_full() {
    let mut rt = runtime();
    for i in 0..4 {
        let r = one_op(
            &mut rt,
            HostOp::Update { map: 0, key: key(i), value: val(i), flags: UpdateFlags::Any },
        );
        assert_eq!(r, Ok(HostOpResult::Updated), "entry {i} fits");
    }
    let r = one_op(
        &mut rt,
        HostOp::Update { map: 0, key: key(9), value: val(9), flags: UpdateFlags::Any },
    );
    assert_eq!(r, Err(MapError::Full));
    // Overwriting a resident key still works at capacity.
    let r = one_op(
        &mut rt,
        HostOp::Update { map: 0, key: key(0), value: val(99), flags: UpdateFlags::Any },
    );
    assert_eq!(r, Ok(HostOpResult::Updated));
}

#[test]
fn unknown_map_is_rejected_at_submission() {
    let mut rt = runtime();
    let err = rt.submit(HostOp::Dump { map: 42 }).expect_err("no map 42");
    assert_eq!(err, CtrlError::NoSuchMap { map: 42 });
    // Rejected ops never produce completions.
    rt.settle();
    assert!(rt.completions().is_empty());
}

#[test]
fn failed_ops_do_not_disturb_map_state() {
    let mut rt = runtime();
    assert_eq!(
        one_op(
            &mut rt,
            HostOp::Update { map: 0, key: key(1), value: val(5), flags: UpdateFlags::Any }
        ),
        Ok(HostOpResult::Updated)
    );
    // A burst of failures of every flavor...
    for op in [
        HostOp::Lookup { map: 0, key: vec![1] },
        HostOp::Update { map: 0, key: key(1), value: val(6), flags: UpdateFlags::NoExist },
        HostOp::Delete { map: 0, key: key(3) },
    ] {
        assert!(one_op(&mut rt, op).is_err());
    }
    // ...leaves the original entry readable and unchanged.
    let r = one_op(&mut rt, HostOp::Lookup { map: 0, key: key(1) });
    assert_eq!(r, Ok(HostOpResult::Value(Some(val(5)))));
    let stats = rt.stats();
    assert_eq!(stats.ctrl.completed, 2, "only the Ok ops count as completed");
    assert_eq!(stats.ctrl.failed, 3);
    assert_eq!(stats.ctrl.submitted, 5);
}
