//! Acceptance differentials: the evaluation applications stay
//! bit-equivalent to the sequential reference while the host mutates
//! their maps mid-stream — including writes landing inside open RAW
//! hazard windows (back-to-back same-flow packets with a 1-cycle
//! control channel).

use ehdl_core::CompilerOptions;
use ehdl_hwsim::{CtrlOptions, HostEvent};
use ehdl_net::FiveTuple;
use ehdl_programs::{dnat, simple_firewall, suricata};
use ehdl_runtime::Runtime;
use ehdl_traffic::{
    build_flow_packet, interleave_ops, ControlOpGen, FlowSet, OpMix, Popularity, ScheduleItem,
};

const SRC_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x01];
const DST_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x02];

fn packets_for(flows: &FlowSet, n: usize, pop: Popularity, seed: u64) -> Vec<Vec<u8>> {
    let mut wl = ehdl_traffic::Workload::new(flows.clone(), pop, 64, seed);
    wl.packets(n)
}

fn key_pool(flows: &FlowSet, take: usize) -> Vec<Vec<u8>> {
    flows.flows().iter().take(take).map(|f| f.to_key().to_vec()).collect()
}

fn to_events(schedule: Vec<ScheduleItem>) -> Vec<HostEvent> {
    schedule
        .into_iter()
        .map(|item| match item {
            ScheduleItem::Packet(p) => HostEvent::Packet(p),
            ScheduleItem::Op(op) => HostEvent::Op(ehdl_runtime::to_host_op(&op)),
        })
        .collect()
}

#[test]
fn firewall_equivalent_under_live_ops() {
    // Full op mix (installs, expiries, reads, dumps) on the session table
    // the packets themselves are opening sessions in. Hot keys make host
    // writes collide with in-flight same-key packets.
    let flows = FlowSet::udp(64, 21);
    let packets = packets_for(&flows, 400, Popularity::Hot { p_hot: 0.6 }, 22);
    let mut gen = ControlOpGen::new(
        simple_firewall::SESSIONS_MAP,
        key_pool(&flows, 16),
        8,
        OpMix::default(),
        Popularity::Hot { p_hot: 0.7 },
        23,
    );
    let events = to_events(interleave_ops(packets, &mut gen, 0.2, 24));
    ehdl_hwsim::assert_equivalent_ops(
        &simple_firewall::program(),
        CompilerOptions::default(),
        &events,
        |_| {},
        &[],
        CtrlOptions { latency_cycles: 1, queue_depth: 256 },
    );
}

#[test]
fn firewall_equivalent_with_slow_channel() {
    // Realistic PCIe latency: ops arrive hundreds of cycles after
    // submission but must still take effect exactly at their barrier.
    let flows = FlowSet::udp(32, 31);
    let packets = packets_for(&flows, 300, Popularity::Uniform, 32);
    let mut gen = ControlOpGen::new(
        simple_firewall::SESSIONS_MAP,
        key_pool(&flows, 32),
        8,
        OpMix::default(),
        Popularity::Uniform,
        33,
    );
    let events = to_events(interleave_ops(packets, &mut gen, 0.1, 34));
    ehdl_hwsim::assert_equivalent_ops(
        &simple_firewall::program(),
        CompilerOptions::default(),
        &events,
        |_| {},
        &[],
        CtrlOptions { latency_cycles: 300, queue_depth: 256 },
    );
}

#[test]
fn dnat_equivalent_under_live_ops() {
    // Every flow gets a pre-installed binding so translation never
    // consults the (legitimately divergent) port allocator; host ops
    // then rewrite and read those live bindings mid-stream. No deletes:
    // unbinding would re-enter the allocator path.
    let flows = FlowSet::udp(48, 41);
    let packets = packets_for(&flows, 400, Popularity::Hot { p_hot: 0.5 }, 42);
    let mut gen = ControlOpGen::new(
        dnat::CONN_MAP,
        key_pool(&flows, 12),
        8,
        OpMix { lookup: 0.4, update: 0.5, delete: 0.0, dump: 0.1 },
        Popularity::Hot { p_hot: 0.7 },
        43,
    );
    let events = to_events(interleave_ops(packets, &mut gen, 0.2, 44));
    let flows_for_setup = flows.clone();
    ehdl_hwsim::assert_equivalent_ops(
        &dnat::program(),
        CompilerOptions::default(),
        &events,
        move |maps| {
            let conn = maps.get_mut(dnat::CONN_MAP).expect("conn map");
            for (i, f) in flows_for_setup.flows().iter().enumerate() {
                let mut v = [0u8; 8];
                v[..4].copy_from_slice(&dnat::NAT_ADDR);
                v[4..6].copy_from_slice(&(dnat::PORT_BASE + i as u16).to_be_bytes());
                conn.update(&f.to_key(), &v, Default::default()).expect("binding install");
            }
        },
        &[dnat::PORT_ALLOC_MAP],
        CtrlOptions { latency_cycles: 1, queue_depth: 256 },
    );
}

#[test]
fn suricata_equivalent_under_live_ops() {
    // Rule installs and removals race the IDS's own per-rule hit
    // counting (an in-pipeline read-modify-write on the same map).
    let flows = FlowSet::tcp(64, 51);
    let packets = packets_for(&flows, 400, Popularity::Hot { p_hot: 0.6 }, 52);
    let mut gen = ControlOpGen::new(
        suricata::ACL_MAP,
        key_pool(&flows, 16),
        8,
        OpMix::default(),
        Popularity::Hot { p_hot: 0.7 },
        53,
    );
    let events = to_events(interleave_ops(packets, &mut gen, 0.2, 54));
    let flows_for_setup = flows.clone();
    ehdl_hwsim::assert_equivalent_ops(
        &suricata::program(),
        CompilerOptions::default(),
        &events,
        move |maps| {
            for f in flows_for_setup.flows().iter().take(24) {
                suricata::install_rule(maps, f);
            }
        },
        &[],
        CtrlOptions { latency_cycles: 1, queue_depth: 256 },
    );
}

#[test]
fn runtime_schedule_matches_direct_differential_state() {
    // Drive the same schedule through the Runtime facade and check the
    // per-map hit telemetry and completion accounting line up.
    let flows = FlowSet::udp(16, 61);
    let packets = packets_for(&flows, 200, Popularity::Uniform, 62);
    let mut gen = ControlOpGen::new(
        simple_firewall::SESSIONS_MAP,
        key_pool(&flows, 16),
        8,
        OpMix::default(),
        Popularity::Uniform,
        63,
    );
    let schedule = interleave_ops(packets, &mut gen, 0.15, 64);
    let nops = schedule.iter().filter(|i| matches!(i, ScheduleItem::Op(_))).count() as u64;

    let design =
        ehdl_core::Compiler::new().compile(&simple_firewall::program()).expect("firewall compiles");
    let mut rt = Runtime::new(
        &design,
        ehdl_runtime::RuntimeOptions {
            ctrl: CtrlOptions { latency_cycles: 8, queue_depth: 1024 },
            ..Default::default()
        },
    );
    let report = rt.run_schedule(&schedule);
    assert_eq!(report.packets, 200);
    assert_eq!(report.lost, 0);
    assert_eq!(report.ops_submitted, nops);
    assert!(report.ops_rejected.is_empty());
    assert_eq!(report.outcomes.len(), 200);
    assert_eq!(report.completions.len(), nops as usize);

    let stats = rt.stats();
    assert_eq!(stats.counters.completed, 200);
    assert_eq!(stats.counters.host_ops, nops);
    assert_eq!(stats.ctrl.submitted, nops);
    assert!(stats.maps[0].lookups > 0, "sessions map saw traffic");
    assert!(stats.stages.iter().any(|s| s.utilization > 0.0));
    // The differential for this flow already ran above; here we only
    // check the facade preserved basic conservation.
    let tuple = FiveTuple::parse(&build_flow_packet(&flows.flows()[0], SRC_MAC, DST_MAC, 64));
    assert!(tuple.is_some(), "generated packets stay parseable");
}

#[test]
fn firewall_coalesced_schedule_matches_sequential_oracle() {
    // The serving layer's batching rewrite (same-key update collapse +
    // lookup sharing over one dump) must be invisible: the pipeline runs
    // the coalesced schedule, the VM oracle runs the original, and every
    // packet outcome, per-op result and final map byte must agree.
    let flows = FlowSet::udp(64, 71);
    let packets = packets_for(&flows, 300, Popularity::Hot { p_hot: 0.6 }, 72);
    let mut gen = ControlOpGen::new(
        simple_firewall::SESSIONS_MAP,
        key_pool(&flows, 8), // tiny hot key pool => real adjacent same-key ops
        8,
        OpMix { lookup: 0.45, update: 0.45, delete: 0.05, dump: 0.05 },
        Popularity::Hot { p_hot: 0.8 },
        73,
    );
    let events = to_events(interleave_ops(packets, &mut gen, 0.5, 74));
    ehdl_hwsim::assert_equivalent_ops_coalesced(
        &simple_firewall::program(),
        CompilerOptions::default(),
        &events,
        |_| {},
        &[],
        CtrlOptions { latency_cycles: 1, queue_depth: 256 },
    );
}

#[test]
fn coalesced_trains_actually_collapse_and_stay_equivalent() {
    // Hand-built hot-key storm: long op trains of same-key updates and
    // repeated lookups between packet bursts. The rewrite must shrink the
    // schedule (this is what the reactor ships to the device) and the
    // differential must still be clean.
    use ehdl_hwsim::{coalesce_ops, HostOp, MapShape};

    let flows = FlowSet::udp(8, 81);
    let pkts = packets_for(&flows, 60, Popularity::Uniform, 82);
    let keys = key_pool(&flows, 4);
    let mut events = Vec::new();
    let mut train = Vec::new();
    for (i, p) in pkts.into_iter().enumerate() {
        if i % 3 == 0 {
            for r in 0..4u64 {
                train.push(HostOp::Update {
                    map: simple_firewall::SESSIONS_MAP,
                    key: keys[i / 3 % keys.len()].clone(),
                    value: (i as u64 * 10 + r).to_le_bytes().to_vec(),
                    flags: Default::default(),
                });
            }
            for r in 0..4usize {
                let k = keys[(i / 3 + r) % keys.len()].clone();
                train.push(HostOp::Lookup { map: simple_firewall::SESSIONS_MAP, key: k });
            }
            for op in train.drain(..) {
                events.push(HostEvent::Op(op));
            }
        }
        events.push(HostEvent::Packet(p));
    }

    // The rewrite itself must buy something on this shape.
    let ops: Vec<HostOp> = events
        .iter()
        .filter_map(|e| match e {
            HostEvent::Op(op) => Some(op.clone()),
            HostEvent::Packet(_) => None,
        })
        .take(8) // the first train
        .collect();
    let (_, stats) = coalesce_ops(&ops, |_| Some(MapShape { key_size: 13, value_size: 8 }));
    assert!(stats.ops_out < stats.ops_in, "hot-key train must coalesce: {stats:?}");
    assert!(stats.updates_collapsed > 0 || stats.lookups_shared > 0);

    ehdl_hwsim::assert_equivalent_ops_coalesced(
        &simple_firewall::program(),
        CompilerOptions::default(),
        &events,
        |_| {},
        &[],
        CtrlOptions { latency_cycles: 16, queue_depth: 256 },
    );
}
