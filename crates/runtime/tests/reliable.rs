//! The reliable control protocol under a lossy channel, and the bounded
//! reload handshake's rollback path.
//!
//! The exactly-once gate: every op submitted over a channel that drops,
//! duplicates, corrupts, and delays frames must eventually complete with
//! exactly the result a lossless channel produces — retries are
//! idempotent, duplicate completions are suppressed, and the final map
//! state is reference-identical.

use ehdl_core::Compiler;
use ehdl_ebpf::maps::MapError;
use ehdl_ebpf::maps::{MapDef, MapKind, UpdateFlags};
use ehdl_ebpf::opcode::MemSize;
use ehdl_ebpf::{asm::Asm, Program};
use ehdl_hwsim::{CtrlLossConfig, CtrlOptions, HostOp, HostOpResult, SimOptions};
use ehdl_runtime::{RetryPolicy, Runtime, RuntimeOptions, SwapError};

/// Pass-through program with one host-facing hash map: all the traffic
/// in these tests is control-plane.
fn host_map_program(entries: u32) -> Program {
    let mut a = Asm::new();
    a.load(MemSize::W, 7, 1, 0);
    a.mov64_imm(0, 3);
    a.exit();
    Program::new(
        "hostmap",
        a.into_insns(),
        vec![MapDef::new(0, "cells", MapKind::Hash, 8, 8, entries)],
    )
}

fn key(i: u64) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

fn ops_schedule(n: u64) -> Vec<HostOp> {
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(HostOp::Update {
            map: 0,
            key: key(i % 16),
            value: (i * 7).to_le_bytes().to_vec(),
            flags: UpdateFlags::Any,
        });
        if i % 3 == 0 {
            ops.push(HostOp::Lookup { map: 0, key: key(i % 16) });
        }
        if i % 5 == 4 {
            ops.push(HostOp::Delete { map: 0, key: key((i + 1) % 16) });
        }
    }
    ops
}

type OpResults = Vec<Result<HostOpResult, MapError>>;
type MapEntries = Vec<(Vec<u8>, Vec<u8>)>;

fn drive(loss: CtrlLossConfig) -> (OpResults, MapEntries, Runtime) {
    let design = Compiler::new().compile(&host_map_program(64)).expect("program compiles");
    let mut rt = Runtime::new(
        &design,
        RuntimeOptions {
            sim: SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
            ctrl: CtrlOptions { latency_cycles: 4, queue_depth: 8 },
            loss,
            retry: RetryPolicy { timeout_cycles: 64, ..Default::default() },
            ..Default::default()
        },
    );
    for op in ops_schedule(40) {
        // Submission never hard-fails on a full mailbox: the reliable
        // layer parks the op and retries. Let the channel drain a bit
        // between bursts so the 8-deep queue is exercised both ways.
        rt.submit(op).expect("structurally valid op");
        for _ in 0..8 {
            rt.step();
        }
    }
    rt.settle();
    let results: OpResults = rt.completions().into_iter().map(|c| c.result).collect();
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = rt
        .maps()
        .get(0)
        .expect("cells map")
        .iter()
        .map(|(_, k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    entries.sort();
    (results, entries, rt)
}

#[test]
fn lossy_channel_completes_every_op_exactly_once() {
    let (reference, ref_entries, _) = drive(CtrlLossConfig::lossless());
    let (lossy, lossy_entries, rt) = drive(CtrlLossConfig::uniform(0xFEED, 0.10));
    let stats = rt.reliable_stats().expect("lossy channel uses the reliable layer");
    assert_eq!(stats.gave_up, 0, "every op must eventually complete at 10% loss");
    assert_eq!(stats.completed, stats.ops, "no op lost or double-resolved");
    assert!(stats.retries > 0, "a 10% loss rate must force retransmissions");
    assert_eq!(
        lossy.len(),
        reference.len(),
        "exactly-once: completion count matches the lossless reference"
    );
    assert_eq!(lossy, reference, "retried op sequences are reference-identical");
    assert_eq!(lossy_entries, ref_entries, "final map state is reference-identical");
}

#[test]
fn duplicate_completions_are_suppressed_not_delivered() {
    // A duplication-only channel: every frame and completion may be
    // doubled but never lost, so dedupe machinery is isolated from
    // retry machinery.
    let cfg = CtrlLossConfig {
        seed: 7,
        drop_rate: 0.0,
        dup_rate: 0.5,
        corrupt_rate: 0.0,
        delay_rate: 0.0,
        max_extra_delay: 0,
    };
    let (reference, _, _) = drive(CtrlLossConfig::lossless());
    let (lossy, _, rt) = drive(cfg);
    let stats = rt.reliable_stats().expect("reliable layer attached");
    assert!(
        stats.dup_completions_suppressed > 0,
        "a 50% duplication rate must produce suppressed duplicates"
    );
    assert_eq!(lossy, reference, "duplicates never change delivered results");
}

#[test]
fn telemetry_reports_the_reliability_section() {
    let (_, _, rt) = drive(CtrlLossConfig::uniform(3, 0.10));
    let json = rt.stats().to_json();
    assert!(json.contains("\"reliability\""), "lossy runtimes export reliability stats");
    assert!(json.contains("\"retries\""), "retry counts are visible to operators");
    let (_, _, rt) = drive(CtrlLossConfig::lossless());
    assert!(
        !rt.stats().to_json().contains("\"reliability\""),
        "lossless runtimes omit the section"
    );
}

#[test]
fn reload_rolls_back_cleanly_when_the_drain_times_out() {
    let design = Compiler::new().compile(&host_map_program(64)).expect("program compiles");
    let bigger = Compiler::new().compile(&host_map_program(128)).expect("program compiles");
    let mut rt = Runtime::new(
        &design,
        RuntimeOptions {
            sim: SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
            ctrl: CtrlOptions { latency_cycles: 2000, queue_depth: 64 },
            ..Default::default()
        },
    );
    rt.maps_mut()
        .get_mut(0)
        .expect("cells map")
        .update(&key(1), &7u64.to_le_bytes(), UpdateFlags::Any)
        .expect("provision");
    // A high-latency op is still in flight when the swap handshake
    // starts; a 10-cycle budget cannot drain it.
    rt.submit(HostOp::Lookup { map: 0, key: key(1) }).expect("submit");
    let err = rt.try_reload(&bigger, 10).expect_err("drain cannot finish in 10 cycles");
    let SwapError::DrainTimeout { waited_cycles, host_ops_pending, .. } = err else {
        panic!("expected a drain timeout, got {err}");
    };
    assert_eq!(waited_cycles, 10);
    assert!(host_ops_pending > 0, "the undrained op is visible in the error");
    // Clean rollback: the old design is still loaded and serving, the
    // aborted attempt left no trace in the swap history, and the
    // in-flight op still completes.
    assert_eq!(rt.design().maps[0].max_entries, 64, "old design still loaded");
    assert!(rt.swap_history().is_empty(), "aborted attempt is not recorded");
    rt.settle();
    let comps = rt.completions();
    assert_eq!(comps.len(), 1, "the in-flight op survived the aborted swap");
    assert_eq!(
        comps[0].result,
        Ok(HostOpResult::Value(Some(7u64.to_le_bytes().to_vec()))),
        "and returned the provisioned value"
    );
    // With the pipeline quiet the same reload now succeeds and migrates.
    let report = rt.try_reload(&bigger, 1_000_000).expect("quiet pipeline swaps cleanly");
    assert_eq!(report.migrated_entries, 1);
    assert_eq!(rt.design().maps[0].max_entries, 128);
    assert_eq!(rt.swap_history().len(), 1);
}
