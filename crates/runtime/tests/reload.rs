//! Drain-and-swap reload: measured downtime, keyspec map migration,
//! carried-over retired work, and correct traffic behavior across epochs.

use ehdl_core::{Compiler, PipelineDesign};
use ehdl_ebpf::asm::Asm;
use ehdl_ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
use ehdl_ebpf::maps::{MapDef, MapKind, UpdateFlags};
use ehdl_ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl_ebpf::Program;
use ehdl_hwsim::{CtrlOptions, HostOp, HostOpResult};
use ehdl_programs::{simple_firewall, suricata};
use ehdl_runtime::{Runtime, RuntimeOptions};
use ehdl_traffic::{FlowSet, Popularity, Workload};

fn compile(p: &Program) -> PipelineDesign {
    Compiler::new().compile(p).expect("program compiles")
}

fn runtime_for(design: &PipelineDesign) -> Runtime {
    Runtime::new(
        design,
        RuntimeOptions {
            ctrl: CtrlOptions { latency_cycles: 4, queue_depth: 64 },
            ..Default::default()
        },
    )
}

/// The tiny-map counter program at a configurable capacity, for
/// migration-overflow coverage.
fn counter_program(capacity: u32) -> Program {
    let mut a = Asm::new();
    let skip = a.new_label();
    a.load(MemSize::W, 7, 1, 0);
    a.load(MemSize::B, 2, 7, 0);
    a.store_reg(MemSize::W, 10, -8, 2);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
    a.load(MemSize::Dw, 6, 0, 0);
    a.bind(skip);
    a.alu64_imm(AluOp::Add, 6, 1);
    a.store_reg(MemSize::Dw, 10, -16, 6);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, -16);
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);
    a.mov64_imm(0, 3);
    a.exit();
    Program::new(
        "counter",
        a.into_insns(),
        vec![MapDef::new(0, "cells", MapKind::Hash, 4, 8, capacity)],
    )
}

fn firewall_packets(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let flows = FlowSet::udp(32, seed);
    Workload::new(flows, Popularity::Uniform, 64, seed + 1).packets(n)
}

#[test]
fn reload_to_same_program_migrates_all_state() {
    let design = compile(&simple_firewall::program());
    let mut rt = runtime_for(&design);
    for p in firewall_packets(200, 71) {
        assert!(rt.enqueue(p));
    }
    rt.settle();
    let sessions_before = rt.maps().get(simple_firewall::SESSIONS_MAP).expect("sessions").len();
    assert!(sessions_before > 0, "traffic opened sessions");

    let report = rt.reload(&design);
    assert!(report.dropped_maps.is_empty());
    assert_eq!(report.dropped_entries, 0);
    assert!(report.migrated_entries > 0);
    assert_eq!(
        rt.maps().get(simple_firewall::SESSIONS_MAP).expect("sessions").len(),
        sessions_before,
        "every session survived the swap"
    );
    assert_eq!(rt.stats().epoch, 1);
    assert_eq!(rt.swap_history().len(), 1);
}

#[test]
fn downtime_is_drain_plus_reconfiguration_and_is_measured() {
    let design = compile(&simple_firewall::program());
    let mut rt = runtime_for(&design);
    // Leave work in flight so the drain phase is non-trivial.
    for p in firewall_packets(50, 72) {
        assert!(rt.enqueue(p));
    }
    rt.submit(HostOp::Dump { map: simple_firewall::SESSIONS_MAP }).expect("dump accepted");
    let report = rt.reload(&design);
    assert!(report.drain_cycles > 0, "in-flight packets take cycles to drain");
    assert!(report.config_cycles >= ehdl_runtime::RECONFIG_BASE_CYCLES);
    assert_eq!(report.downtime_cycles, report.drain_cycles + report.config_cycles);
    assert!(report.downtime_ns > 0.0);
    // The modeled reconfiguration ran on the new design's clock.
    assert!(rt.stats().cycle >= report.config_cycles);
}

#[test]
fn swap_preserves_undrained_outcomes_and_completions() {
    let design = compile(&simple_firewall::program());
    let mut rt = runtime_for(&design);
    for p in firewall_packets(30, 73) {
        assert!(rt.enqueue(p));
    }
    rt.submit(HostOp::Dump { map: simple_firewall::SESSIONS_MAP }).expect("dump accepted");
    // Swap WITHOUT draining first: retired work must carry across.
    rt.reload(&design);
    assert_eq!(rt.drain().len(), 30, "packet outcomes survive the swap");
    assert_eq!(rt.completions().len(), 1, "host completions survive the swap");
}

#[test]
fn incompatible_program_drops_maps() {
    let design = compile(&simple_firewall::program());
    let mut rt = runtime_for(&design);
    for p in firewall_packets(100, 74) {
        assert!(rt.enqueue(p));
    }
    rt.settle();
    rt.drain();
    let new_design = compile(&suricata::program());
    let report = rt.reload(&new_design);
    // No firewall map has a name+keyspec match in the IDS design.
    assert!(report.migrated_maps.is_empty());
    assert_eq!(report.dropped_maps.len(), design.maps.len());
    assert_eq!(report.migrated_entries, 0);
    // The new epoch starts with empty maps and still processes traffic.
    assert_eq!(rt.maps().get(suricata::ACL_MAP).expect("acl").len(), 0);
    let flows = FlowSet::tcp(8, 75);
    for p in Workload::new(flows, Popularity::Uniform, 64, 76).packets(50) {
        assert!(rt.enqueue(p));
    }
    rt.settle();
    assert_eq!(rt.drain().len(), 50);
}

#[test]
fn smaller_successor_map_counts_dropped_entries() {
    let big = compile(&counter_program(64));
    let small = compile(&counter_program(4));
    let mut rt = runtime_for(&big);
    for i in 0..10u8 {
        rt.submit(HostOp::Update {
            map: 0,
            key: vec![i, 0, 0, 0],
            value: vec![i, 0, 0, 0, 0, 0, 0, 0],
            flags: UpdateFlags::Any,
        })
        .expect("update accepted");
    }
    rt.settle();
    assert_eq!(rt.maps().get(0).expect("cells").len(), 10);

    let report = rt.reload(&small);
    assert_eq!(report.migrated_maps, vec![0], "same name+keyspec: still compatible");
    assert_eq!(report.migrated_entries + report.dropped_entries, 10);
    assert_eq!(report.migrated_entries, 4, "successor holds its capacity");
    assert_eq!(report.dropped_entries, 6);
    assert_eq!(rt.maps().get(0).expect("cells").len(), 4);
}

#[test]
fn traffic_flows_correctly_after_swap() {
    let design = compile(&counter_program(64));
    let mut rt = runtime_for(&design);
    let mk = |flow: u8| {
        let mut p = vec![0u8; 64];
        p[0] = flow;
        p
    };
    for _ in 0..5 {
        assert!(rt.enqueue(mk(1)));
    }
    rt.settle();
    rt.drain();
    let report = rt.reload(&design);
    assert_eq!(report.migrated_entries, 1);
    // Counting resumes from the migrated value: 5 before + 3 after = 8.
    for _ in 0..3 {
        assert!(rt.enqueue(mk(1)));
    }
    rt.settle();
    assert_eq!(rt.drain().len(), 3);
    rt.submit(HostOp::Lookup { map: 0, key: vec![1, 0, 0, 0] }).expect("lookup accepted");
    rt.settle();
    let comps = rt.completions();
    assert_eq!(comps.len(), 1);
    let Ok(HostOpResult::Value(Some(v))) = &comps[0].result else {
        panic!("expected a hit, got {:?}", comps[0].result);
    };
    assert_eq!(u64::from_le_bytes(v.as_slice().try_into().expect("8-byte value")), 8);
}

#[test]
fn repeated_swaps_accumulate_epochs_and_total_cycles() {
    let design = compile(&counter_program(16));
    let mut rt = runtime_for(&design);
    let mut last_total = 0;
    for epoch in 1..=3 {
        for i in 0..4u8 {
            let mut p = vec![0u8; 64];
            p[0] = i;
            assert!(rt.enqueue(p));
        }
        rt.settle();
        rt.reload(&design);
        let stats = rt.stats();
        assert_eq!(stats.epoch, epoch);
        assert!(stats.total_cycles > last_total, "clock is monotonic across swaps");
        last_total = stats.total_cycles;
    }
    assert_eq!(rt.swap_history().len(), 3);
    // State threaded through every swap: each flow was counted 3 times.
    rt.submit(HostOp::Dump { map: 0 }).expect("dump accepted");
    rt.settle();
    let comps = rt.completions();
    let Ok(HostOpResult::Entries(entries)) = &comps.last().expect("dump completion").result else {
        panic!("dump failed");
    };
    assert_eq!(entries.len(), 4);
    for (_, v) in entries {
        assert_eq!(u64::from_le_bytes(v.as_slice().try_into().expect("8-byte value")), 3);
    }
}

/// A one-cell stats counter: a blind add classifies private/SumDelta, a
/// fetch-add classifies shared/SharedAtomic — same map name and shape,
/// so it survives migration and only the placement differs.
fn stats_program(fetch: bool) -> Program {
    use ehdl_ebpf::opcode::AtomicOp;
    let mut a = Asm::new();
    let out = a.new_label();
    a.mov64_imm(1, 0);
    a.store_reg(MemSize::W, 10, -4, 1);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -4);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, out);
    a.mov64_imm(2, 1);
    a.atomic(AtomicOp::Add { fetch }, MemSize::Dw, 0, 0, 2);
    a.bind(out);
    a.mov64_imm(0, 2);
    a.exit();
    Program::new("stats", a.into_insns(), vec![MapDef::new(0, "stats", MapKind::Array, 4, 8, 1)])
}

#[test]
fn reload_rejects_design_unsound_at_deployment_scale() {
    use ehdl_core::shardcheck::ShardError;
    use ehdl_runtime::SwapError;
    let sound = compile(&stats_program(false));
    let mut rt = Runtime::new(&sound, RuntimeOptions { replicas: 4, ..Default::default() });
    // counter_program is an unfenced lookup/load/update RMW — sound on
    // one replica, a cross-replica race on four.
    let rmw = compile(&counter_program(16));
    let err = rt.try_reload(&rmw, 50_000_000).expect_err("unsound design rejected");
    let SwapError::ShardUnsound { replicas, errors, first } = err else {
        panic!("expected ShardUnsound, got {err}");
    };
    assert_eq!(replicas, 4);
    assert_eq!(errors, 1);
    assert!(matches!(first, ShardError::CrossReplicaRace { map: 0, .. }));
    // Clean rejection: nothing drained, nothing recorded, old design serving.
    assert!(rt.swap_history().is_empty());
    assert_eq!(rt.design().maps[0].name, "stats");
    assert!(rt.enqueue(vec![0u8; 64]));
    rt.settle();
    assert_eq!(rt.drain().len(), 1);
    // The same reload is legal on a single-replica runtime.
    let mut solo = runtime_for(&sound);
    solo.try_reload(&rmw, 50_000_000).expect("sound at one replica");
}

#[test]
fn reload_rejects_surviving_map_changing_placement() {
    use ehdl_runtime::SwapError;
    let private = compile(&stats_program(false));
    let shared = compile(&stats_program(true));
    let mut rt = Runtime::new(&private, RuntimeOptions { replicas: 2, ..Default::default() });
    let err = rt.try_reload(&shared, 50_000_000).expect_err("placement flip rejected");
    assert_eq!(err, SwapError::ShardPlacementChanged { map: 0 });
    assert!(rt.swap_history().is_empty());
    // Flipping back the other way is rejected symmetrically.
    let mut rt = Runtime::new(&shared, RuntimeOptions { replicas: 2, ..Default::default() });
    assert_eq!(
        rt.try_reload(&private, 50_000_000),
        Err(SwapError::ShardPlacementChanged { map: 0 })
    );
}
