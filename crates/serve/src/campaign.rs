//! Long-haul serving campaign: a phased workload mix that exercises the
//! reactor the way a production NIC control plane would over hours,
//! compressed into a deterministic simulated run.
//!
//! Phases, in order:
//!
//! 1. **churn** — uniform packet load while every client churns the
//!    firewall session table with the default op mix;
//! 2. **hotkey** — a Zipf hot-key storm: skewed client activity hammers
//!    a few keys with update-heavy traffic, the regime where the
//!    reactor's coalescing collapses adjacent same-key writes;
//! 3. **synflood** — a burst of distinct-flow TCP SYNs (every packet a
//!    new session) with background ops;
//! 4. **reload** — a live [`Reactor::reload`] swap lands mid-load; the
//!    measured downtime feeds the SLO tracker;
//! 5. **killstorm** — a replica kill on a 4-way [`ShardedNic`] under
//!    the same traffic; request-level availability must ride out the
//!    fail-over;
//! 6. **lossyops** — the full op mix over a 10%-lossy control channel;
//!    exactly-once delivery means every admitted op acks exactly once
//!    and nothing is abandoned.
//!
//! Phases 1–4 share one reactor (state, histograms, and error budget
//! carry across phases — that is the long-haul point); 5 and 6 get the
//! dedicated harnesses their fault models need.

use ehdl_core::{Compiler, PipelineDesign};
use ehdl_hwsim::{
    CtrlLossConfig, CtrlOptions, MergeStrategy, ReplicaFault, ReplicaFaultConfig, ReplicaFaultKind,
    ShardedNic, SharedMapOptions, SimOptions,
};
use ehdl_programs::simple_firewall;
use ehdl_runtime::{RetryPolicy, RuntimeOptions, SloSnapshot};
use ehdl_traffic::{ClientWorkload, FlowSet, OpMix, Popularity, Workload};

use crate::client::{AdmissionConfig, ClientId};
use crate::reactor::{Reactor, ReactorOptions, ReactorStats};
use crate::slo::SloConfig;

/// Campaign knobs. The defaults run in a few seconds and are what
/// `BENCH_slo.json` records.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every phase derives its own stream from it.
    pub seed: u64,
    /// Simulated control clients.
    pub clients: usize,
    /// Flow population for the packet workloads.
    pub flows: usize,
    /// Packets offered per reactor phase.
    pub packets_per_phase: usize,
    /// Ops submitted per reactor phase.
    pub ops_per_phase: usize,
    /// Simulator cycles per reactor turn.
    pub turn_cycles: u64,
    /// Loss rate of the `lossyops` phase's control channel.
    pub ctrl_loss: f64,
    /// Replicas in the `killstorm` phase.
    pub replicas: usize,
    /// Packets offered in the `killstorm` phase.
    pub kill_packets: usize,
    /// SLO target for the shared tracker.
    pub slo: SloConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 7,
            clients: 64,
            flows: 256,
            packets_per_phase: 1500,
            ops_per_phase: 300,
            turn_cycles: 32,
            ctrl_loss: 0.10,
            replicas: 4,
            kill_packets: 6_000,
            slo: SloConfig::default(),
        }
    }
}

/// Per-phase accounting: the phase's own request deltas plus the
/// cumulative SLO snapshot at phase end (latency percentiles are
/// whole-campaign — the histograms deliberately carry across phases).
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (see the module docs).
    pub name: String,
    /// Requests offered during this phase.
    pub offered: u64,
    /// Requests served during this phase.
    pub served: u64,
    /// Requests failed during this phase.
    pub failed: u64,
    /// Ops shed at admission during this phase.
    pub shed: u64,
    /// `served / offered` within the phase (1.0 when nothing offered).
    pub availability: f64,
    /// Cumulative SLO state at phase end.
    pub slo: SloSnapshot,
}

/// Outcome of the `killstorm` phase.
#[derive(Debug, Clone, Copy)]
pub struct KillReport {
    /// Distinct packets offered (retries not double-counted).
    pub offered: u64,
    /// Packets completed, including drained frames the host re-offered
    /// after the fail-over (each original packet counted once).
    pub completed: u64,
    /// Frames punted back to the host from the dead FIFO and re-offered
    /// to the survivors — the serving layer's retry path.
    pub retried: u64,
    /// Punted frames still unserved after the retry pass (must be 0).
    pub drained_unrecovered: u64,
    /// Packets discarded mid-pipeline with the dead clock domain — the
    /// only unrecoverable loss a kill can cause.
    pub discarded: u64,
    /// Frames rejected at ingress.
    pub dropped: u64,
    /// Request-level availability: `completed / offered`.
    pub availability: f64,
    /// Watchdog detections (must equal the injected kills).
    pub detected: u64,
}

/// Outcome of the `lossyops` phase.
#[derive(Debug, Clone, Copy)]
pub struct LossyReport {
    /// Ops the reactor admitted.
    pub accepted: u64,
    /// Ops acked back to clients.
    pub acked: u64,
    /// Ops shed at admission (backpressure, not loss).
    pub shed: u64,
    /// Ops the reliable layer abandoned (must be 0).
    pub gave_up: u64,
    /// Frame retransmissions the loss forced.
    pub retries: u64,
    /// Duplicate completions the dedupe cache suppressed.
    pub dup_suppressed: u64,
    /// `accepted - acked`: admitted ops that never acked (must be 0).
    pub lost_acked: u64,
}

/// Everything one campaign run measured.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Phases 1–4, in order.
    pub phases: Vec<PhaseReport>,
    /// Final SLO snapshot of the shared reactor (phases 1–4).
    pub overall: SloSnapshot,
    /// Final serving-layer counters of the shared reactor.
    pub reactor: ReactorStats,
    /// Live swaps completed during the `reload` phase.
    pub swaps: u64,
    /// Ingress downtime the swaps cost, in cycles.
    pub swap_downtime_cycles: u64,
    /// `killstorm` outcome.
    pub kill: KillReport,
    /// `lossyops` outcome.
    pub lossy: LossyReport,
}

fn firewall_design() -> PipelineDesign {
    Compiler::new().compile(&simple_firewall::program()).expect("firewall compiles")
}

fn key_pool(flows: &FlowSet, take: usize) -> Vec<Vec<u8>> {
    flows.flows().iter().take(take).map(|f| f.to_key().to_vec()).collect()
}

/// Interleave a packet workload and a client op workload through the
/// reactor: a few packets per turn and a *burst* of ops every fourth
/// turn (agents batch their RPCs; bursts are also what gives the
/// coalescer adjacent ops to collapse), until both are exhausted, then
/// drain so the phase's requests all resolve.
fn drive(
    reactor: &mut Reactor,
    clients: &[ClientId],
    ops: &mut ClientWorkload,
    packets: &[Vec<u8>],
    nops: usize,
    turn_cycles: u64,
) {
    let mut pi = 0;
    let mut oi = 0;
    let mut turn = 0u64;
    while pi < packets.len() || oi < nops {
        for _ in 0..4 {
            if pi < packets.len() {
                reactor.offer_packet(packets[pi].clone());
                pi += 1;
            }
        }
        if turn.is_multiple_of(4) {
            for _ in 0..8 {
                if oi < nops {
                    let (c, op) = ops.next_op();
                    // Overloaded is backpressure, already counted as shed.
                    let _ = reactor.submit_control(clients[c as usize], &op);
                    oi += 1;
                }
            }
        }
        reactor.turn(turn_cycles);
        turn += 1;
    }
    reactor.drain();
}

/// Request-delta bookkeeping around one phase.
struct PhaseMeter {
    offered: u64,
    served: u64,
    failed: u64,
    shed: u64,
}

impl PhaseMeter {
    fn before(r: &Reactor) -> PhaseMeter {
        let s = r.slo();
        PhaseMeter {
            offered: s.offered(),
            served: s.served(),
            failed: s.failures(),
            shed: s.shed_count(),
        }
    }

    fn finish(self, name: &str, r: &Reactor) -> PhaseReport {
        let s = r.slo();
        let offered = s.offered() - self.offered;
        let served = s.served() - self.served;
        PhaseReport {
            name: name.to_string(),
            offered,
            served,
            failed: s.failures() - self.failed,
            shed: s.shed_count() - self.shed,
            availability: if offered == 0 { 1.0 } else { served as f64 / offered as f64 },
            slo: s.snapshot(),
        }
    }
}

/// Run the full campaign.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let design = firewall_design();
    let mut reactor = Reactor::new(
        &design,
        ReactorOptions {
            runtime: RuntimeOptions::default(),
            admission: AdmissionConfig::default(),
            slo: cfg.slo,
            no_coalesce: false,
        },
    );
    let clients: Vec<ClientId> = (0..cfg.clients).map(|_| reactor.connect()).collect();
    let flows = FlowSet::udp(cfg.flows, cfg.seed);
    let keys = key_pool(&flows, 32);
    let mut phases = Vec::new();

    // Phase 1: churn.
    {
        let meter = PhaseMeter::before(&reactor);
        let packets = Workload::new(flows.clone(), Popularity::Uniform, 64, cfg.seed ^ 0x11)
            .packets(cfg.packets_per_phase);
        let mut ops = ClientWorkload::try_new(
            cfg.clients,
            simple_firewall::SESSIONS_MAP,
            keys.clone(),
            8,
            OpMix::default(),
            Popularity::Uniform,
            Popularity::Uniform,
            cfg.seed ^ 0x12,
        )
        .expect("default mix is valid");
        drive(&mut reactor, &clients, &mut ops, &packets, cfg.ops_per_phase, cfg.turn_cycles);
        phases.push(meter.finish("churn", &reactor));
    }

    // Phase 2: Zipf hot-key storm (update-heavy, skewed clients).
    {
        let meter = PhaseMeter::before(&reactor);
        let packets =
            Workload::new(flows.clone(), Popularity::Zipf { alpha: 1.2 }, 64, cfg.seed ^ 0x21)
                .packets(cfg.packets_per_phase);
        let mut ops = ClientWorkload::try_new(
            cfg.clients,
            simple_firewall::SESSIONS_MAP,
            key_pool(&flows, 8),
            8,
            OpMix { lookup: 0.25, update: 0.65, delete: 0.05, dump: 0.05 },
            Popularity::Zipf { alpha: 1.2 },
            Popularity::Zipf { alpha: 1.2 },
            cfg.seed ^ 0x22,
        )
        .expect("storm mix is valid");
        drive(&mut reactor, &clients, &mut ops, &packets, cfg.ops_per_phase * 2, cfg.turn_cycles);
        phases.push(meter.finish("hotkey", &reactor));
    }

    // Phase 3: SYN flood — every packet a distinct new TCP session.
    {
        let meter = PhaseMeter::before(&reactor);
        let syn_flows = FlowSet::tcp(cfg.packets_per_phase.max(64), cfg.seed ^ 0x31);
        let packets = Workload::new(syn_flows, Popularity::Uniform, 64, cfg.seed ^ 0x32)
            .packets(cfg.packets_per_phase);
        let mut ops = ClientWorkload::try_new(
            cfg.clients,
            simple_firewall::SESSIONS_MAP,
            keys.clone(),
            8,
            OpMix::default(),
            Popularity::Uniform,
            Popularity::Uniform,
            cfg.seed ^ 0x33,
        )
        .expect("default mix is valid");
        drive(&mut reactor, &clients, &mut ops, &packets, cfg.ops_per_phase / 2, cfg.turn_cycles);
        phases.push(meter.finish("synflood", &reactor));
    }

    // Phase 4: live reload mid-load.
    let (swaps, swap_downtime_cycles);
    {
        let meter = PhaseMeter::before(&reactor);
        let packets = Workload::new(flows.clone(), Popularity::Uniform, 64, cfg.seed ^ 0x41)
            .packets(cfg.packets_per_phase);
        let mut ops = ClientWorkload::try_new(
            cfg.clients,
            simple_firewall::SESSIONS_MAP,
            keys,
            8,
            OpMix::default(),
            Popularity::Uniform,
            Popularity::Uniform,
            cfg.seed ^ 0x42,
        )
        .expect("default mix is valid");
        let half = packets.len() / 2;
        drive(
            &mut reactor,
            &clients,
            &mut ops,
            &packets[..half],
            cfg.ops_per_phase / 2,
            cfg.turn_cycles,
        );
        let swap = reactor.reload(&firewall_design(), 1_000_000).expect("live swap succeeds");
        swap_downtime_cycles = swap.downtime_cycles;
        swaps = 1;
        drive(
            &mut reactor,
            &clients,
            &mut ops,
            &packets[half..],
            cfg.ops_per_phase / 2,
            cfg.turn_cycles,
        );
        phases.push(meter.finish("reload", &reactor));
    }

    let overall = reactor.slo().snapshot();
    let reactor_stats = reactor.stats();

    CampaignReport {
        phases,
        overall,
        reactor: reactor_stats,
        swaps,
        swap_downtime_cycles,
        kill: kill_storm(cfg),
        lossy: lossy_ops(cfg),
    }
}

/// Phase 5: single replica kill on a sharded NIC under uniform load.
pub fn kill_storm(cfg: &CampaignConfig) -> KillReport {
    let design = firewall_design();
    let mut nic = ShardedNic::new(
        &design,
        cfg.replicas,
        cfg.seed ^ 0x51,
        SimOptions::default(),
        SharedMapOptions::default(),
    );
    nic.attach_replica_faults(
        ReplicaFaultConfig {
            schedule: vec![ReplicaFault { at: 300, replica: 1, kind: ReplicaFaultKind::Kill }],
            ..Default::default()
        },
        vec![
            (simple_firewall::SESSIONS_MAP, MergeStrategy::Union),
            (simple_firewall::STATS_MAP, MergeStrategy::SumDelta),
        ],
    );
    let flows = FlowSet::udp(cfg.flows.max(512), cfg.seed ^ 0x52);
    let packets =
        Workload::new(flows, Popularity::Uniform, 64, cfg.seed ^ 0x53).packets(cfg.kill_packets);
    let offered = packets.len() as u64;
    let report = nic.run(packets.clone());
    // The dead replica's ingress FIFO is punted back to the host at
    // fail-stop; a serving host re-offers those frames, and by now the
    // kill has been detected and its flows re-steered, so the retry
    // lands on survivors. Only mid-pipeline discards are unrecoverable.
    let retry: Vec<Vec<u8>> =
        report.drained.iter().filter_map(|&i| packets.get(i as usize).cloned()).collect();
    let retried = retry.len() as u64;
    let rerun = nic.run(retry);
    let completed: u64 = report.completed.iter().sum::<u64>() + rerun.completed.iter().sum::<u64>();
    let discarded = (report.discarded.len() + rerun.discarded.len()) as u64;
    KillReport {
        offered,
        completed,
        retried,
        drained_unrecovered: rerun.drained.len() as u64,
        discarded,
        dropped: report.dropped.iter().sum::<u64>() + rerun.dropped.iter().sum::<u64>(),
        availability: if offered == 0 { 1.0 } else { completed as f64 / offered as f64 },
        detected: rerun.failover.detected.max(report.failover.detected),
    }
}

/// Phase 6: the op mix over a lossy control channel; exactly-once acks.
pub fn lossy_ops(cfg: &CampaignConfig) -> LossyReport {
    let design = firewall_design();
    let mut reactor = Reactor::new(
        &design,
        ReactorOptions {
            runtime: RuntimeOptions {
                ctrl: CtrlOptions { latency_cycles: 4, queue_depth: 8 },
                loss: CtrlLossConfig::uniform(cfg.seed ^ 0x61, cfg.ctrl_loss),
                retry: RetryPolicy { timeout_cycles: 64, ..Default::default() },
                ..Default::default()
            },
            admission: AdmissionConfig::default(),
            slo: cfg.slo,
            no_coalesce: false,
        },
    );
    let clients: Vec<ClientId> = (0..cfg.clients.min(16)).map(|_| reactor.connect()).collect();
    let flows = FlowSet::udp(cfg.flows, cfg.seed ^ 0x62);
    let mut ops = ClientWorkload::try_new(
        clients.len(),
        simple_firewall::SESSIONS_MAP,
        key_pool(&flows, 16),
        8,
        OpMix::default(),
        Popularity::Uniform,
        Popularity::Uniform,
        cfg.seed ^ 0x63,
    )
    .expect("default mix is valid");
    let packets = Workload::new(flows, Popularity::Uniform, 64, cfg.seed ^ 0x64)
        .packets(cfg.ops_per_phase / 2);
    drive(&mut reactor, &clients, &mut ops, &packets, cfg.ops_per_phase, cfg.turn_cycles);
    let stats = reactor.stats();
    let rel = reactor.runtime_stats().reliability.unwrap_or_default();
    LossyReport {
        accepted: stats.admitted_ops,
        acked: stats.acked_ops,
        shed: stats.shed_ops,
        gave_up: rel.gave_up,
        retries: rel.retries,
        dup_suppressed: rel.dup_completions_suppressed,
        lost_acked: stats.admitted_ops.saturating_sub(stats.acked_ops),
    }
}
