//! Client/session model for the serving reactor.
//!
//! Each control-plane client owns a bounded op queue inside the reactor.
//! Submission is *admission-controlled*: a client that outruns its queue
//! (or the reactor as a whole) gets a typed [`ServeError::Overloaded`]
//! back instead of silently growing an unbounded backlog — the serving
//! layer's backpressure is explicit, countable, and distinguishable from
//! failure in the SLO accounting.

use std::collections::VecDeque;

use ehdl_ebpf::maps::MapError;
use ehdl_hwsim::{HostOp, HostOpResult};

/// Opaque handle for one connected control-plane client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub(crate) u32);

impl ClientId {
    /// The client's dense index (connection order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Receipt for one admitted op: the reactor will eventually emit exactly
/// one [`Ack`] carrying the same `(client, seq)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Submitting client.
    pub client: ClientId,
    /// Per-client submission sequence number (0-based, dense).
    pub seq: u64,
}

/// One completed client op, with the result the hardware returned and
/// the client-observed latency (admission to ack, in pipeline cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// Owning client.
    pub client: ClientId,
    /// The [`Ticket::seq`] this ack answers.
    pub seq: u64,
    /// Payload or the typed map error the hardware raised. A map error
    /// (e.g. [`MapError::NoSuchKey`]) is a *served* answer, not a
    /// serving failure.
    pub result: Result<HostOpResult, MapError>,
    /// Cycles from admission to ack.
    pub latency_cycles: u64,
}

/// Admission-control limits for the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Ops one client may have queued (admitted, not yet submitted to
    /// the device) at once.
    pub max_queued_per_client: usize,
    /// Ops queued across all clients; the reactor-wide ceiling.
    pub max_queued_total: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig { max_queued_per_client: 64, max_queued_total: 4096 }
    }
}

/// Why the serving layer refused an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The client's own queue (or the reactor-wide ceiling) is full:
    /// back off and resubmit after draining acks.
    Overloaded {
        /// Refused client.
        client: ClientId,
        /// Ops currently queued against the breached limit.
        queued: usize,
        /// The breached limit.
        limit: usize,
    },
    /// The handle does not name a connected client.
    UnknownClient {
        /// Offending handle.
        client: ClientId,
    },
    /// The op targets a map id the loaded design does not declare;
    /// rejected at admission so device-level submission can never fail.
    UnknownMap {
        /// Offending map id.
        map: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { client, queued, limit } => {
                write!(f, "{client} overloaded: {queued} ops queued of {limit} allowed")
            }
            ServeError::UnknownClient { client } => write!(f, "{client} is not connected"),
            ServeError::UnknownMap { map } => {
                write!(f, "no map with id {map} in the loaded design")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Reactor-internal per-client state.
#[derive(Debug, Default)]
pub(crate) struct ClientState {
    /// Admitted ops waiting for a device submission slot.
    pub queue: VecDeque<(u64, HostOp)>,
    /// Next submission sequence number.
    pub next_seq: u64,
    /// Ops admitted over the connection's lifetime.
    pub admitted: u64,
    /// Ops acked.
    pub acked: u64,
    /// Ops refused at admission.
    pub shed: u64,
}
