//! Async-style multi-client serving layer for the simulated eHDL NIC.
//!
//! The paper stops at one host process driving one control channel; real
//! deployments put an *agent* in front — many tenants and daemons
//! mutating maps concurrently while packets stream at line rate. This
//! crate models that serving layer, dependency-free and single-threaded
//! (a reactor, not a thread pool — determinism is what makes the SLO
//! numbers exact):
//!
//! * [`Reactor`] — multiplexes thousands of clients over one modeled
//!   PCIe/AXI-Lite channel: bounded per-client queues, round-robin fair
//!   batch collection, device-backpressure-gated submission, and typed
//!   admission control ([`ServeError::Overloaded`]);
//! * op **coalescing** — adjacent same-key updates collapse to the last
//!   write, compatible lookup runs share one dump frame; acks are
//!   reconstructed per original op, and the coalesced schedule is pinned
//!   bit-equivalent to the sequential oracle by
//!   [`ehdl_hwsim::assert_equivalent_ops_coalesced`];
//! * [`SloTracker`] — continuous request-grained SLO accounting: shared
//!   log2-bucket latency histograms for packets and ops (p50/p99/p999),
//!   availability, downtime, error-budget burn — exported through
//!   [`ehdl_runtime::RuntimeStats::slo`];
//! * [`run_campaign`] — the long-haul driver: flow churn, Zipf hot-key
//!   storms, SYN floods, live reload swaps, replica kill storms, and
//!   lossy-channel exactly-once delivery, in one deterministic run
//!   (`BENCH_slo.json` gates its numbers in CI).

#![deny(clippy::unwrap_used)]

mod campaign;
mod client;
mod reactor;
mod slo;

pub use campaign::{
    kill_storm, lossy_ops, run_campaign, CampaignConfig, CampaignReport, KillReport, LossyReport,
    PhaseReport,
};
pub use client::{Ack, AdmissionConfig, ClientId, ServeError, Ticket};
pub use reactor::{Reactor, ReactorOptions, ReactorStats};
pub use slo::{SloConfig, SloTracker};
