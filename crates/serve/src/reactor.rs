//! Single-threaded serving reactor: thousands of control clients
//! multiplexed over one modeled PCIe/AXI-Lite channel.
//!
//! The reactor is an event loop, not a thread pool — the paper's host
//! side is a single DPDK-style process pinned to a core, and the
//! simulator is single-threaded anyway. Each [`Reactor::turn`] performs
//! one iteration:
//!
//! 1. **Pump** — collect admitted ops from the per-client queues into a
//!    device batch, fairly: one op per client per round-robin sweep, so
//!    a flooding client cannot starve a light one. Batch size is gated
//!    by the free depth of the control queue
//!    ([`Runtime::ops_in_flight`] vs [`Runtime::ctrl_queue_depth`]) —
//!    device backpressure propagates to admission instead of piling
//!    into an unbounded driver queue.
//! 2. **Coalesce** — adjacent same-key `Update`s in the batch collapse
//!    to the last write and compatible `Lookup` runs share one `Dump`
//!    frame ([`ehdl_hwsim::coalesce_ops`]); every original op still
//!    gets its own [`Ack`], reconstructed from the carrier results by
//!    [`ehdl_hwsim::expand_results`]. The schedule the device sees is
//!    bit-equivalent to the uncoalesced one — pinned by the extended
//!    differential harness
//!    ([`ehdl_hwsim::assert_equivalent_ops_coalesced`]).
//! 3. **Step** the cycle-level simulator.
//! 4. **Harvest** — match device completions back to batches, expand
//!    coalesced answers, emit per-client acks, and feed the SLO
//!    tracker (op latencies, packet latencies, drops).

use std::collections::{BTreeMap, VecDeque};

use ehdl_core::PipelineDesign;
use ehdl_ebpf::maps::MapError;
use ehdl_hwsim::{
    coalesce_ops, expand_results, CoalesceStats, CoalescedOp, HostOp, HostOpResult, MapShape,
    SimOutcome,
};
use ehdl_runtime::{to_host_op, Runtime, RuntimeOptions, RuntimeStats, SwapError, SwapReport};
use ehdl_traffic::ControlOp;

use crate::client::{Ack, AdmissionConfig, ClientId, ClientState, ServeError, Ticket};
use crate::slo::{SloConfig, SloTracker};

/// Reactor configuration.
#[derive(Debug, Clone, Default)]
pub struct ReactorOptions {
    /// Wrapped runtime (simulator, control channel, loss, retry).
    pub runtime: RuntimeOptions,
    /// Admission-control limits.
    pub admission: AdmissionConfig,
    /// SLO target for the built-in tracker.
    pub slo: SloConfig,
    /// Disable op coalescing (every admitted op goes to the device
    /// verbatim). For A/B tests; coalescing is on by default.
    pub no_coalesce: bool,
}

/// Serving-layer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Ops admitted across all clients.
    pub admitted_ops: u64,
    /// Ops acked back to clients.
    pub acked_ops: u64,
    /// Ops refused at admission.
    pub shed_ops: u64,
    /// Device ops actually submitted (after coalescing).
    pub device_ops: u64,
    /// Packets served (drained with an outcome).
    pub pkts_served: u64,
    /// Packets refused at a full ingress queue.
    pub pkts_dropped: u64,
    /// Reactor iterations.
    pub turns: u64,
    /// Cumulative coalescing effectiveness.
    pub coalesce: CoalesceStats,
}

/// One submitted device batch awaiting its completions.
#[derive(Debug)]
struct InFlight {
    /// Device submission ids, one per coalesced op, in schedule order.
    ids: Vec<u64>,
    /// The coalesced schedule with its answer routing.
    coalesced: Vec<CoalescedOp>,
    /// `(client, seq)` per original op index.
    origs: Vec<(ClientId, u64)>,
    /// Cycle the batch left the reactor.
    submit_cycle: u64,
}

/// The serving reactor. See the module docs for the turn structure.
#[derive(Debug)]
pub struct Reactor {
    rt: Runtime,
    shapes: BTreeMap<u32, MapShape>,
    admission: AdmissionConfig,
    no_coalesce: bool,
    clients: Vec<ClientState>,
    queued_total: usize,
    rr: usize,
    batches: VecDeque<InFlight>,
    completed: BTreeMap<u64, Result<HostOpResult, MapError>>,
    acks: Vec<Ack>,
    slo: SloTracker,
    stats: ReactorStats,
    outcome_scratch: Vec<SimOutcome>,
}

fn shapes_of(design: &PipelineDesign) -> BTreeMap<u32, MapShape> {
    design
        .maps
        .iter()
        .map(|d| {
            (d.id, MapShape { key_size: d.key_size as usize, value_size: d.value_size as usize })
        })
        .collect()
}

impl Reactor {
    /// Load `design` and start serving.
    pub fn new(design: &PipelineDesign, options: ReactorOptions) -> Reactor {
        Reactor {
            rt: Runtime::new(design, options.runtime),
            shapes: shapes_of(design),
            admission: options.admission,
            no_coalesce: options.no_coalesce,
            clients: Vec::new(),
            queued_total: 0,
            rr: 0,
            batches: VecDeque::new(),
            completed: BTreeMap::new(),
            acks: Vec::new(),
            slo: SloTracker::new(options.slo),
            stats: ReactorStats::default(),
            outcome_scratch: Vec::new(),
        }
    }

    /// Register a new control client and return its handle.
    pub fn connect(&mut self) -> ClientId {
        self.clients.push(ClientState::default());
        ClientId((self.clients.len() - 1) as u32)
    }

    /// Connected clients.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// Admit one op from `client`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the client's queue or the
    /// reactor-wide ceiling is full (the op is shed and counted),
    /// [`ServeError::UnknownClient`] / [`ServeError::UnknownMap`] for
    /// invalid handles or targets.
    pub fn submit(&mut self, client: ClientId, op: HostOp) -> Result<Ticket, ServeError> {
        let i = client.index();
        if i >= self.clients.len() {
            return Err(ServeError::UnknownClient { client });
        }
        if !self.shapes.contains_key(&op.map()) {
            return Err(ServeError::UnknownMap { map: op.map() });
        }
        let per_client = self.admission.max_queued_per_client;
        if self.clients[i].queue.len() >= per_client {
            self.clients[i].shed += 1;
            self.stats.shed_ops += 1;
            self.slo.shed(1);
            return Err(ServeError::Overloaded {
                client,
                queued: self.clients[i].queue.len(),
                limit: per_client,
            });
        }
        if self.queued_total >= self.admission.max_queued_total {
            self.clients[i].shed += 1;
            self.stats.shed_ops += 1;
            self.slo.shed(1);
            return Err(ServeError::Overloaded {
                client,
                queued: self.queued_total,
                limit: self.admission.max_queued_total,
            });
        }
        let seq = self.clients[i].next_seq;
        self.clients[i].next_seq += 1;
        self.clients[i].admitted += 1;
        self.clients[i].queue.push_back((seq, op));
        self.queued_total += 1;
        self.stats.admitted_ops += 1;
        Ok(Ticket { client, seq })
    }

    /// Admit one generated [`ControlOp`] from `client`.
    ///
    /// # Errors
    ///
    /// As [`Reactor::submit`].
    pub fn submit_control(
        &mut self,
        client: ClientId,
        op: &ControlOp,
    ) -> Result<Ticket, ServeError> {
        self.submit(client, to_host_op(op))
    }

    /// Offer one packet to the datapath. Returns `false` (and counts a
    /// failed request) when the ingress queue refused it.
    pub fn offer_packet(&mut self, packet: Vec<u8>) -> bool {
        if self.rt.enqueue(packet) {
            true
        } else {
            self.stats.pkts_dropped += 1;
            self.slo.failed(1);
            false
        }
    }

    /// One reactor iteration: pump admitted ops to the device, advance
    /// the simulator `cycles` cycles, harvest completions and packet
    /// outcomes into acks and SLO state.
    pub fn turn(&mut self, cycles: u64) {
        self.pump();
        for _ in 0..cycles {
            self.rt.step();
        }
        self.harvest();
        self.stats.turns += 1;
    }

    /// Take every ack emitted since the last call, in completion order.
    pub fn take_acks(&mut self) -> Vec<Ack> {
        std::mem::take(&mut self.acks)
    }

    /// Nothing queued client-side and nothing in flight device-side.
    pub fn idle(&self) -> bool {
        self.queued_total == 0 && self.batches.is_empty()
    }

    /// Run turns until every admitted op is acked and the pipeline has
    /// drained, then settle the wrapped runtime.
    pub fn drain(&mut self) {
        // Generous budget: a wedged drain is a bug, not a workload
        // property.
        let mut guard = 0u32;
        while !self.idle() && guard < 2_000_000 {
            self.turn(64);
            guard += 1;
        }
        self.rt.settle();
        self.harvest();
    }

    /// Swap to `new_design` live (drain, migrate maps, switch), feeding
    /// the measured downtime into the SLO tracker.
    ///
    /// # Errors
    ///
    /// [`SwapError`] from the underlying [`Runtime::try_reload`]; the
    /// old design keeps serving on failure.
    pub fn reload(
        &mut self,
        new_design: &PipelineDesign,
        drain_budget_cycles: u64,
    ) -> Result<SwapReport, SwapError> {
        let report = self.rt.try_reload(new_design, drain_budget_cycles)?;
        self.slo.downtime(report.downtime_cycles);
        self.shapes = shapes_of(new_design);
        self.harvest();
        Ok(report)
    }

    /// Serving-layer counters.
    pub fn stats(&self) -> ReactorStats {
        self.stats
    }

    /// The SLO tracker (clone it at phase boundaries to diff counters).
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// Device + serving telemetry: the wrapped runtime's stats with the
    /// SLO section filled in.
    pub fn runtime_stats(&self) -> RuntimeStats {
        let mut s = self.rt.stats();
        s.slo = Some(self.slo.snapshot());
        s
    }

    /// Read access to the wrapped runtime (maps, reliable stats,
    /// swap history).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Drain raw packet outcomes left by the last harvest. Normally the
    /// reactor consumes them into the SLO histograms; this exposes the
    /// final batch for callers that inspect actions or payloads.
    pub fn last_outcomes(&mut self) -> Vec<SimOutcome> {
        std::mem::take(&mut self.outcome_scratch)
    }

    /// Pump: move admitted ops to the device, fairly, within the free
    /// control-queue depth.
    fn pump(&mut self) {
        loop {
            let in_flight = self.rt.ops_in_flight();
            let budget = self.rt.ctrl_queue_depth().saturating_sub(in_flight);
            if budget == 0 {
                return;
            }
            let batch = self.collect(budget);
            if batch.is_empty() {
                return;
            }
            let ops: Vec<HostOp> = batch.iter().map(|(_, _, op)| op.clone()).collect();
            let origs: Vec<(ClientId, u64)> = batch.iter().map(|&(c, s, _)| (c, s)).collect();
            let shapes = &self.shapes;
            let (coalesced, cstats) = if self.no_coalesce {
                coalesce_ops(&ops, |_| None)
            } else {
                coalesce_ops(&ops, |m| shapes.get(&m).copied())
            };
            self.stats.coalesce.ops_in += cstats.ops_in;
            self.stats.coalesce.ops_out += cstats.ops_out;
            self.stats.coalesce.updates_collapsed += cstats.updates_collapsed;
            self.stats.coalesce.lookups_shared += cstats.lookups_shared;
            let submit_cycle = self.rt.total_cycles();
            let mut ids = Vec::with_capacity(coalesced.len());
            for cop in &coalesced {
                match self.rt.submit(cop.op.clone()) {
                    Ok(id) => ids.push(id),
                    Err(e) => {
                        // Unreachable by construction: admission
                        // validated the map id and the budget gated the
                        // batch below the free queue depth. Surface it
                        // loudly in debug; in release the orphaned slot
                        // acks with a map error at harvest.
                        debug_assert!(false, "gated device submission refused: {e}");
                        ids.push(u64::MAX);
                    }
                }
            }
            self.stats.device_ops += coalesced.len() as u64;
            self.batches.push_back(InFlight { ids, coalesced, origs, submit_cycle });
        }
    }

    /// Collect up to `budget` ops, one per client per round-robin sweep.
    fn collect(&mut self, budget: usize) -> Vec<(ClientId, u64, HostOp)> {
        let n = self.clients.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        while out.len() < budget {
            let mut took = false;
            for k in 0..n {
                if out.len() >= budget {
                    break;
                }
                let i = (self.rr + k) % n;
                if let Some((seq, op)) = self.clients[i].queue.pop_front() {
                    self.queued_total -= 1;
                    out.push((ClientId(i as u32), seq, op));
                    took = true;
                }
            }
            self.rr = (self.rr + 1) % n;
            if !took {
                break;
            }
        }
        out
    }

    /// Harvest: resolve finished batches into acks, packet outcomes
    /// into SLO samples.
    fn harvest(&mut self) {
        for c in self.rt.completions() {
            self.completed.insert(c.id, c.result);
        }
        let now = self.rt.total_cycles();
        while let Some(front) = self.batches.front() {
            let ready =
                front.ids.iter().all(|id| *id == u64::MAX || self.completed.contains_key(id));
            if !ready {
                break;
            }
            let Some(b) = self.batches.pop_front() else { break };
            let results: Vec<Result<HostOpResult, MapError>> = b
                .ids
                .iter()
                .map(|id| self.completed.remove(id).unwrap_or(Err(MapError::NoSuchKey)))
                .collect();
            let expanded = expand_results(&b.coalesced, &results);
            let latency = now.saturating_sub(b.submit_cycle);
            for (k, &(client, seq)) in b.origs.iter().enumerate() {
                let result = expanded.get(k).cloned().unwrap_or(Err(MapError::NoSuchKey));
                self.acks.push(Ack { client, seq, result, latency_cycles: latency });
                self.clients[client.index()].acked += 1;
                self.stats.acked_ops += 1;
                self.slo.op_served(latency);
            }
        }
        let outs = self.rt.drain();
        for o in &outs {
            self.stats.pkts_served += 1;
            self.slo.packet_served(o.latency_cycles);
        }
        self.outcome_scratch = outs;
    }
}
