//! Continuous SLO accounting for the serving layer.
//!
//! The tracker is request-grained: every packet offered to the datapath
//! and every op admitted by the reactor is one request, which ends
//! *served* (an outcome or ack came back — including acks carrying a
//! typed map error, which are answers, not failures), *failed* (lost
//! with a dead replica, dropped at a full ingress, or abandoned by the
//! reliable layer), or *shed* (refused at admission — backpressure is
//! counted separately and does not burn error budget).
//!
//! Latency lives in two shared [`Log2Histogram`]s (packets and ops):
//! O(1) record, 4 KiB fixed memory each, ≤12.5% upper-edge-conservative
//! percentile error — cheap enough to leave on for a whole long-haul
//! campaign, mergeable across phases.

use ehdl_hwsim::Log2Histogram;
use ehdl_runtime::SloSnapshot;

/// SLO target the error budget is measured against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Target availability (fraction of offered requests served);
    /// `1 - target` is the error budget.
    pub target_availability: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig { target_availability: 0.999 }
    }
}

/// Running SLO state: request counters, downtime, and the two latency
/// histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTracker {
    cfg: SloConfig,
    pkt: Log2Histogram,
    op: Log2Histogram,
    offered: u64,
    served: u64,
    failed: u64,
    shed: u64,
    downtime_cycles: u64,
}

impl SloTracker {
    /// Empty tracker against `cfg`'s availability target.
    pub fn new(cfg: SloConfig) -> SloTracker {
        SloTracker {
            cfg,
            pkt: Log2Histogram::new(),
            op: Log2Histogram::new(),
            offered: 0,
            served: 0,
            failed: 0,
            shed: 0,
            downtime_cycles: 0,
        }
    }

    /// One packet served, with its datapath latency.
    pub fn packet_served(&mut self, latency_cycles: u64) {
        self.offered += 1;
        self.served += 1;
        self.pkt.record(latency_cycles);
    }

    /// One op acked, with its admission-to-ack latency.
    pub fn op_served(&mut self, latency_cycles: u64) {
        self.offered += 1;
        self.served += 1;
        self.op.record(latency_cycles);
    }

    /// `n` requests failed (lost packets, abandoned ops).
    pub fn failed(&mut self, n: u64) {
        self.offered += n;
        self.failed += n;
    }

    /// `n` ops refused at admission.
    pub fn shed(&mut self, n: u64) {
        self.shed += n;
    }

    /// `cycles` of datapath unavailability (reload swaps, recovery
    /// windows).
    pub fn downtime(&mut self, cycles: u64) {
        self.downtime_cycles += cycles;
    }

    /// Fold `other` into `self` (campaign-phase aggregation).
    pub fn merge(&mut self, other: &SloTracker) {
        self.pkt.merge(&other.pkt);
        self.op.merge(&other.op);
        self.offered += other.offered;
        self.served += other.served;
        self.failed += other.failed;
        self.shed += other.shed;
        self.downtime_cycles += other.downtime_cycles;
    }

    /// Requests offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests failed so far.
    pub fn failures(&self) -> u64 {
        self.failed
    }

    /// Ops shed at admission so far.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// `served / offered` (1.0 with nothing offered).
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.served as f64 / self.offered as f64
        }
    }

    /// Fraction of the error budget the observed failures consumed
    /// (1.0 = exhausted; may exceed 1.0; infinite when the target
    /// allows zero failures but some occurred).
    pub fn error_budget_consumed(&self) -> f64 {
        let allowed = 1.0 - self.cfg.target_availability;
        let observed = 1.0 - self.availability();
        if observed <= 0.0 {
            0.0
        } else if allowed <= 0.0 {
            f64::INFINITY
        } else {
            observed / allowed
        }
    }

    /// Average burn rate over the tracked window: observed failure rate
    /// over the sustainable rate. With the whole run as the SLO window
    /// this equals [`SloTracker::error_budget_consumed`] — 1.0 means
    /// failures arrived exactly at the rate the budget sustains.
    pub fn burn_rate(&self) -> f64 {
        self.error_budget_consumed()
    }

    /// The packet-latency histogram.
    pub fn pkt_histogram(&self) -> &Log2Histogram {
        &self.pkt
    }

    /// The op-latency histogram.
    pub fn op_histogram(&self) -> &Log2Histogram {
        &self.op
    }

    /// Copyable summary for [`ehdl_runtime::RuntimeStats`].
    pub fn snapshot(&self) -> SloSnapshot {
        SloSnapshot {
            offered: self.offered,
            served: self.served,
            failed: self.failed,
            shed: self.shed,
            availability: self.availability(),
            downtime_cycles: self.downtime_cycles,
            error_budget_consumed: self.error_budget_consumed(),
            burn_rate: self.burn_rate(),
            pkt_p50_cycles: self.pkt.percentile(0.50),
            pkt_p99_cycles: self.pkt.percentile(0.99),
            pkt_p999_cycles: self.pkt.percentile(0.999),
            op_p50_cycles: self.op.percentile(0.50),
            op_p99_cycles: self.op.percentile(0.99),
            op_p999_cycles: self.op.percentile(0.999),
        }
    }
}

impl Default for SloTracker {
    fn default() -> SloTracker {
        SloTracker::new(SloConfig::default())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn availability_and_budget_arithmetic() {
        let mut t = SloTracker::new(SloConfig { target_availability: 0.99 });
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.error_budget_consumed(), 0.0);
        for _ in 0..990 {
            t.packet_served(10);
        }
        t.failed(10);
        assert!((t.availability() - 0.99).abs() < 1e-9);
        // Failures at exactly the sustainable rate: budget fully burned.
        assert!((t.error_budget_consumed() - 1.0).abs() < 1e-9);
        assert!((t.burn_rate() - 1.0).abs() < 1e-9);
        let s = t.snapshot();
        assert_eq!(s.offered, 1000);
        assert_eq!(s.served, 990);
        assert_eq!(s.failed, 10);
        assert!(s.pkt_p99_cycles >= 10);
    }

    #[test]
    fn shed_does_not_burn_budget() {
        let mut t = SloTracker::default();
        t.op_served(100);
        t.shed(50);
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.error_budget_consumed(), 0.0);
        assert_eq!(t.snapshot().shed, 50);
    }

    #[test]
    fn zero_allowed_budget_with_failures_is_infinite() {
        let mut t = SloTracker::new(SloConfig { target_availability: 1.0 });
        t.packet_served(1);
        t.failed(1);
        assert!(t.error_budget_consumed().is_infinite());
    }

    #[test]
    fn merge_folds_counters_and_histograms() {
        let mut a = SloTracker::default();
        let mut b = SloTracker::default();
        a.packet_served(8);
        b.packet_served(1000);
        b.op_served(64);
        b.failed(2);
        b.downtime(77);
        a.merge(&b);
        assert_eq!(a.offered(), 5);
        assert_eq!(a.served(), 3);
        assert_eq!(a.failures(), 2);
        let s = a.snapshot();
        assert_eq!(s.downtime_cycles, 77);
        assert!(s.pkt_p99_cycles >= 1000);
        assert!(s.op_p50_cycles >= 64);
    }
}
