//! Acceptance tests for the serving reactor: ack semantics, admission
//! backpressure, fairness, coalescing transparency, exactly-once
//! delivery over loss, and the long-haul campaign's SLO gates.

use ehdl_core::{Compiler, PipelineDesign};
use ehdl_ebpf::maps::UpdateFlags;
use ehdl_hwsim::{CtrlLossConfig, CtrlOptions, HostOp, HostOpResult};
use ehdl_programs::simple_firewall;
use ehdl_runtime::{validate_json, RetryPolicy, RuntimeOptions};
use ehdl_serve::{
    run_campaign, Ack, AdmissionConfig, CampaignConfig, Reactor, ReactorOptions, ServeError,
};

fn design() -> PipelineDesign {
    Compiler::new().compile(&simple_firewall::program()).expect("firewall compiles")
}

fn reactor(options: ReactorOptions) -> Reactor {
    Reactor::new(&design(), options)
}

fn key(i: u8) -> Vec<u8> {
    let mut k = vec![0u8; 13];
    k[0] = i;
    k[1] = 0xA5;
    k
}

fn val(i: u64) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

fn update(i: u8, v: u64) -> HostOp {
    HostOp::Update {
        map: simple_firewall::SESSIONS_MAP,
        key: key(i),
        value: val(v),
        flags: UpdateFlags::Any,
    }
}

fn lookup(i: u8) -> HostOp {
    HostOp::Lookup { map: simple_firewall::SESSIONS_MAP, key: key(i) }
}

fn delete(i: u8) -> HostOp {
    HostOp::Delete { map: simple_firewall::SESSIONS_MAP, key: key(i) }
}

#[test]
fn single_client_acks_follow_sequential_semantics() {
    let mut r = reactor(ReactorOptions::default());
    let c = r.connect();
    for op in [update(1, 7), lookup(1), delete(1), lookup(1)] {
        r.submit(c, op).expect("admitted");
    }
    r.drain();
    let mut acks = r.take_acks();
    acks.sort_by_key(|a| a.seq);
    assert_eq!(acks.len(), 4);
    assert_eq!(acks[0].result, Ok(HostOpResult::Updated));
    assert_eq!(acks[1].result, Ok(HostOpResult::Value(Some(val(7)))));
    assert_eq!(acks[2].result, Ok(HostOpResult::Deleted));
    assert_eq!(acks[3].result, Ok(HostOpResult::Value(None)));
    assert!(acks.iter().all(|a| a.latency_cycles > 0), "acks carry real latencies");
    let stats = r.runtime_stats();
    let slo = stats.slo.expect("reactor fills the SLO section");
    assert_eq!(slo.served, 4);
    assert_eq!(slo.failed, 0);
    assert!(validate_json(&stats.to_json()).is_ok(), "SLO telemetry serializes to valid JSON");
}

#[test]
fn every_ticket_acks_exactly_once() {
    let mut r = reactor(ReactorOptions::default());
    let clients: Vec<_> = (0..16).map(|_| r.connect()).collect();
    let mut tickets = Vec::new();
    for i in 0..400u64 {
        let c = clients[(i % 16) as usize];
        let op = match i % 3 {
            0 => update((i % 11) as u8, i),
            1 => lookup((i % 11) as u8),
            _ => delete((i % 7) as u8),
        };
        tickets.push(r.submit(c, op).expect("admitted"));
        if i % 32 == 31 {
            r.turn(16);
        }
    }
    r.drain();
    let acks = r.take_acks();
    assert_eq!(acks.len(), tickets.len());
    let mut seen: Vec<(u32, u64)> = acks.iter().map(|a| (a.client.index() as u32, a.seq)).collect();
    let mut expect: Vec<(u32, u64)> =
        tickets.iter().map(|t| (t.client.index() as u32, t.seq)).collect();
    seen.sort_unstable();
    expect.sort_unstable();
    assert_eq!(seen, expect, "every admitted op acked exactly once");
}

#[test]
fn overload_sheds_with_a_typed_error() {
    let mut r = reactor(ReactorOptions {
        admission: AdmissionConfig { max_queued_per_client: 4, max_queued_total: 4096 },
        ..Default::default()
    });
    let c = r.connect();
    let mut admitted = 0;
    let mut shed = 0;
    for i in 0..10u64 {
        match r.submit(c, update(1, i)) {
            Ok(_) => admitted += 1,
            Err(ServeError::Overloaded { limit, .. }) => {
                assert_eq!(limit, 4);
                shed += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(admitted, 4);
    assert_eq!(shed, 6);
    assert_eq!(r.stats().shed_ops, 6);
    r.drain();
    assert_eq!(r.take_acks().len(), 4, "admitted ops still ack after the shed burst");
    let slo = r.slo().snapshot();
    assert_eq!(slo.shed, 6);
    assert_eq!(slo.failed, 0, "shedding is backpressure, not failure");
}

#[test]
fn a_light_client_is_not_starved_by_a_flooder() {
    let mut r = reactor(ReactorOptions {
        admission: AdmissionConfig { max_queued_per_client: 2048, max_queued_total: 8192 },
        ..Default::default()
    });
    let flooder = r.connect();
    let light = r.connect();
    for i in 0..1000u64 {
        r.submit(flooder, update((i % 13) as u8, i)).expect("admitted");
    }
    r.submit(light, lookup(1)).expect("admitted");
    // The first non-empty harvest must already contain the light
    // client's ack: round-robin collection puts one op per client into
    // the very first device batch.
    let mut first: Vec<Ack> = Vec::new();
    for _ in 0..200 {
        r.turn(64);
        first = r.take_acks();
        if !first.is_empty() {
            break;
        }
    }
    assert!(
        first.iter().any(|a| a.client == light),
        "light client's op missing from the first completed batch"
    );
    assert!(!r.idle(), "the flooder's backlog is still being worked");
}

#[test]
fn coalesced_acks_are_identical_to_uncoalesced() {
    // One client, so the serialization order is the queue order in both
    // runs regardless of how batching cuts it — any ack difference is
    // then attributable to coalescing alone. (With multiple clients the
    // round-robin sweeps legitimately interleave differently when batch
    // sizes change, which is a scheduling property, not a correctness
    // one.)
    let run = |no_coalesce: bool| -> (Vec<(u32, u64, String)>, u64, u64) {
        let mut r = reactor(ReactorOptions {
            no_coalesce,
            admission: AdmissionConfig { max_queued_per_client: 512, max_queued_total: 4096 },
            ..Default::default()
        });
        let c = r.connect();
        for i in 0..240u64 {
            // Runs of same-key updates and lookups so the coalescer has
            // real work, plus deletes and distinct keys as barriers.
            let op = match i % 8 {
                0..=2 => update(3, i),
                3 | 4 => lookup(3),
                5 => update((i % 5) as u8, i),
                6 => lookup((i % 5) as u8),
                _ => delete((i % 4) as u8),
            };
            r.submit(c, op).expect("admitted");
            if i % 24 == 23 {
                r.turn(8);
            }
        }
        r.drain();
        let mut acks: Vec<(u32, u64, String)> = r
            .take_acks()
            .iter()
            .map(|a| (a.client.index() as u32, a.seq, format!("{:?}", a.result)))
            .collect();
        acks.sort();
        let s = r.stats();
        (acks, s.coalesce.ops_in, s.coalesce.ops_out)
    };
    let (plain, pin, pout) = run(true);
    let (coalesced, cin, cout) = run(false);
    assert_eq!(pin, pout, "no_coalesce must be a true identity schedule");
    assert!(cout < cin, "the storm pattern must actually coalesce ({cout} vs {cin})");
    assert_eq!(plain, coalesced, "coalescing changed a client-visible result");
}

#[test]
fn lossy_channel_acks_are_exactly_once() {
    let mut r = Reactor::new(
        &design(),
        ReactorOptions {
            runtime: RuntimeOptions {
                ctrl: CtrlOptions { latency_cycles: 4, queue_depth: 8 },
                loss: CtrlLossConfig::uniform(0xD1CE, 0.10),
                retry: RetryPolicy { timeout_cycles: 64, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let clients: Vec<_> = (0..4).map(|_| r.connect()).collect();
    let mut tickets = Vec::new();
    for i in 0..120u64 {
        let c = clients[(i % 4) as usize];
        let op = if i % 2 == 0 { update((i % 9) as u8, i) } else { lookup((i % 9) as u8) };
        tickets.push(r.submit(c, op).expect("admitted"));
        if i % 8 == 7 {
            r.turn(32);
        }
    }
    r.drain();
    let acks = r.take_acks();
    assert_eq!(acks.len(), tickets.len(), "every admitted op acked despite 10% loss");
    let rel = r.runtime_stats().reliability.expect("lossy channel uses the reliable layer");
    assert_eq!(rel.gave_up, 0, "no op abandoned");
    assert!(rel.retries > 0, "10% loss must force retransmissions");
}

#[test]
fn campaign_smoke_meets_the_slo_gates() {
    let report = run_campaign(&CampaignConfig {
        clients: 16,
        flows: 64,
        packets_per_phase: 300,
        ops_per_phase: 80,
        ..Default::default()
    });
    assert_eq!(report.phases.len(), 4);
    assert!(
        report.overall.availability >= 0.999,
        "lossless serving phases must not fail requests (availability {})",
        report.overall.availability
    );
    assert!(report.overall.op_p999_cycles > 0);
    assert!(report.overall.pkt_p999_cycles > 0);
    assert!(report.swaps >= 1, "the reload phase must complete a live swap");
    assert!(report.swap_downtime_cycles > 0);
    assert!(
        report.reactor.coalesce.updates_collapsed + report.reactor.coalesce.lookups_shared > 0,
        "the hot-key storm must exercise coalescing"
    );
    assert_eq!(report.kill.detected, 1, "the kill must be detected");
    assert!(
        report.kill.availability >= 0.99,
        "request-level availability {:.4} under a single kill fell below 0.99",
        report.kill.availability
    );
    assert!(report.kill.retried > 0, "the dead FIFO's punted frames must be re-offered");
    assert_eq!(report.kill.drained_unrecovered, 0, "one retry pass recovers every punted frame");
    assert_eq!(
        report.kill.offered,
        report.kill.completed
            + report.kill.drained_unrecovered
            + report.kill.discarded
            + report.kill.dropped,
        "kill-storm packets must all be accounted"
    );
    assert_eq!(report.lossy.gave_up, 0);
    assert_eq!(report.lossy.lost_acked, 0, "every admitted op acked under 10% loss");
    assert!(report.lossy.retries > 0);
}
