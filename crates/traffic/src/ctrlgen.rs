//! Control-plane workload generation: streams of host map operations to
//! interleave with packet traffic.
//!
//! The runtime evaluation (§5) needs host ops arriving *while* packets
//! stream through the pipeline — rule installs into a live firewall, flow
//! table dumps under load, entry expiry. This module generates such op
//! streams the same way [`crate::Workload`] generates packets: a seeded
//! mix over op kinds, with keys drawn from a pool following a popularity
//! law, interleaved into a packet trace as an event schedule.
//!
//! Ops are *abstract* here (kind + map + key bytes + value bytes) so the
//! generator stays independent of the simulator: the runtime layer maps
//! them onto its concrete host-op type.

use crate::{FlowSampler, Popularity};
use ehdl_rng::Rng;

/// A host control operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOpKind {
    /// Read one key.
    Lookup,
    /// Insert or replace one entry.
    Update,
    /// Remove one entry.
    Delete,
    /// Read the whole table.
    Dump,
}

/// One generated host operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlOp {
    /// Operation kind.
    pub kind: ControlOpKind,
    /// Target map id.
    pub map: u32,
    /// Key bytes (empty for [`ControlOpKind::Dump`]).
    pub key: Vec<u8>,
    /// Value bytes (empty except for [`ControlOpKind::Update`]).
    pub value: Vec<u8>,
}

/// Relative frequency of each op kind. Weights need not sum to 1; they
/// are normalized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Lookup weight.
    pub lookup: f64,
    /// Update weight.
    pub update: f64,
    /// Delete weight.
    pub delete: f64,
    /// Dump weight.
    pub dump: f64,
}

impl Default for OpMix {
    /// A control plane that mostly reads, frequently installs, rarely
    /// deletes, and occasionally snapshots the whole table.
    fn default() -> OpMix {
        OpMix { lookup: 0.50, update: 0.35, delete: 0.10, dump: 0.05 }
    }
}

impl OpMix {
    /// Check the mix is usable: every weight finite and non-negative,
    /// and at least one strictly positive (an all-zero mix would
    /// silently degenerate into an all-dump schedule).
    ///
    /// # Errors
    ///
    /// [`CtrlGenError::InvalidOpMix`] describing the offending weights.
    pub fn validate(&self) -> Result<(), CtrlGenError> {
        let w = [self.lookup, self.update, self.delete, self.dump];
        if w.iter().any(|x| !x.is_finite() || *x < 0.0) || w.iter().sum::<f64>() <= 0.0 {
            return Err(CtrlGenError::InvalidOpMix { mix: *self });
        }
        Ok(())
    }
}

/// Construction errors of the control-plane generators.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlGenError {
    /// The key pool is empty — no keyed op can be generated.
    EmptyKeyPool,
    /// The op mix has no positive weight (or a negative/non-finite one).
    InvalidOpMix {
        /// The rejected mix.
        mix: OpMix,
    },
    /// A client workload needs at least one client.
    NoClients,
}

impl std::fmt::Display for CtrlGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlGenError::EmptyKeyPool => write!(f, "key pool must be non-empty"),
            CtrlGenError::InvalidOpMix { mix } => write!(
                f,
                "op mix must have finite non-negative weights with a positive total, got \
                 lookup={} update={} delete={} dump={}",
                mix.lookup, mix.update, mix.delete, mix.dump
            ),
            CtrlGenError::NoClients => write!(f, "client workload needs at least one client"),
        }
    }
}

impl std::error::Error for CtrlGenError {}

/// Seeded generator of [`ControlOp`]s over a fixed key pool.
///
/// Keys are sampled with a [`Popularity`] law, so a `Hot` distribution
/// aims host writes at the same key the packet stream is hammering —
/// the adversarial case where ops land inside open RAW windows.
#[derive(Debug, Clone)]
pub struct ControlOpGen {
    map: u32,
    keys: Vec<Vec<u8>>,
    value_size: usize,
    cdf: [f64; 4],
    sampler: FlowSampler,
    rng: Rng,
}

impl ControlOpGen {
    /// Build a generator targeting `map`, drawing keys from `keys` with
    /// popularity `pop`, emitting `value_size`-byte values.
    ///
    /// # Panics
    ///
    /// Panics if the key pool is empty or the mix fails
    /// [`OpMix::validate`]; [`ControlOpGen::try_new`] is the non-panicking
    /// form.
    pub fn new(
        map: u32,
        keys: Vec<Vec<u8>>,
        value_size: usize,
        mix: OpMix,
        pop: Popularity,
        seed: u64,
    ) -> ControlOpGen {
        match ControlOpGen::try_new(map, keys, value_size, mix, pop, seed) {
            Ok(gen) => gen,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`ControlOpGen::new`].
    ///
    /// # Errors
    ///
    /// [`CtrlGenError::EmptyKeyPool`] or [`CtrlGenError::InvalidOpMix`].
    pub fn try_new(
        map: u32,
        keys: Vec<Vec<u8>>,
        value_size: usize,
        mix: OpMix,
        pop: Popularity,
        seed: u64,
    ) -> Result<ControlOpGen, CtrlGenError> {
        if keys.is_empty() {
            return Err(CtrlGenError::EmptyKeyPool);
        }
        mix.validate()?;
        let w = [mix.lookup, mix.update, mix.delete, mix.dump];
        let total: f64 = w.iter().sum();
        let mut cdf = [0.0; 4];
        let mut acc = 0.0;
        for (c, wi) in cdf.iter_mut().zip(w) {
            acc += wi / total;
            *c = acc;
        }
        cdf[3] = 1.0;
        Ok(ControlOpGen {
            map,
            sampler: FlowSampler::new(keys.len(), pop, seed ^ 0xc0ff_ee00),
            keys,
            value_size,
            cdf,
            rng: Rng::seed_from_u64(seed),
        })
    }

    /// Generate the next op.
    pub fn next_op(&mut self) -> ControlOp {
        let u = self.rng.gen_f64();
        let kind = if u < self.cdf[0] {
            ControlOpKind::Lookup
        } else if u < self.cdf[1] {
            ControlOpKind::Update
        } else if u < self.cdf[2] {
            ControlOpKind::Delete
        } else {
            ControlOpKind::Dump
        };
        let key = match kind {
            ControlOpKind::Dump => Vec::new(),
            _ => self.keys[self.sampler.sample()].clone(),
        };
        let value = match kind {
            ControlOpKind::Update => (0..self.value_size).map(|_| self.rng.gen_u8()).collect(),
            _ => Vec::new(),
        };
        ControlOp { kind, map: self.map, key, value }
    }
}

impl Iterator for ControlOpGen {
    type Item = ControlOp;

    fn next(&mut self) -> Option<ControlOp> {
        Some(self.next_op())
    }
}

/// One element of an interleaved packet/op schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleItem {
    /// A packet arrival (wire bytes).
    Packet(Vec<u8>),
    /// A host op submitted at this position of the arrival order.
    Op(ControlOp),
}

/// Interleave host ops into a packet trace: before each packet, an op is
/// emitted with probability `op_rate` (ops per packet; values above 1
/// emit several). Any fractional remainder is resolved by a seeded coin,
/// so the schedule is deterministic in `seed`.
pub fn interleave_ops(
    packets: Vec<Vec<u8>>,
    gen: &mut ControlOpGen,
    op_rate: f64,
    seed: u64,
) -> Vec<ScheduleItem> {
    assert!(op_rate >= 0.0, "op rate must be non-negative");
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed_1e55);
    let mut schedule = Vec::with_capacity(packets.len());
    for pkt in packets {
        let mut budget = op_rate;
        while budget >= 1.0 {
            schedule.push(ScheduleItem::Op(gen.next_op()));
            budget -= 1.0;
        }
        if budget > 0.0 && rng.gen_f64() < budget {
            schedule.push(ScheduleItem::Op(gen.next_op()));
        }
        schedule.push(ScheduleItem::Packet(pkt));
    }
    schedule
}

/// Op streams for a whole population of control clients, as the serving
/// reactor sees them: each client is an independent seeded
/// [`ControlOpGen`], and *which* client issues the next op follows its
/// own [`Popularity`] law — a `Zipf` activity skew models the realistic
/// shape where a few orchestrators dominate the control plane while
/// thousands of tenants trickle.
#[derive(Debug, Clone)]
pub struct ClientWorkload {
    activity: FlowSampler,
    gens: Vec<ControlOpGen>,
}

impl ClientWorkload {
    /// Build `clients` independent op generators over a shared key pool.
    ///
    /// Every client draws from the same `keys` with the same `mix` and
    /// `key_pop` law but its own seed, so streams are deterministic,
    /// distinct per client, and reproducible as a population.
    ///
    /// # Errors
    ///
    /// [`CtrlGenError::NoClients`], [`CtrlGenError::EmptyKeyPool`], or
    /// [`CtrlGenError::InvalidOpMix`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_new(
        clients: usize,
        map: u32,
        keys: Vec<Vec<u8>>,
        value_size: usize,
        mix: OpMix,
        key_pop: Popularity,
        client_activity: Popularity,
        seed: u64,
    ) -> Result<ClientWorkload, CtrlGenError> {
        if clients == 0 {
            return Err(CtrlGenError::NoClients);
        }
        let gens = (0..clients)
            .map(|i| {
                let client_seed = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ControlOpGen::try_new(map, keys.clone(), value_size, mix, key_pop, client_seed)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClientWorkload {
            activity: FlowSampler::new(clients, client_activity, seed ^ 0xac71_317e),
            gens,
        })
    }

    /// Number of clients in the population.
    pub fn clients(&self) -> usize {
        self.gens.len()
    }

    /// Sample the next issuing client and its op.
    pub fn next_op(&mut self) -> (u32, ControlOp) {
        let client = self.activity.sample();
        (client as u32, self.gens[client].next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i, 0, 0, 0]).collect()
    }

    #[test]
    fn generator_is_deterministic() {
        let mk = || {
            ControlOpGen::new(0, pool(16), 8, OpMix::default(), Popularity::Uniform, 7)
                .take(200)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn mix_ratios_are_respected() {
        let gen = ControlOpGen::new(0, pool(16), 8, OpMix::default(), Popularity::Uniform, 11);
        let mut counts = [0usize; 4];
        for op in gen.take(10_000) {
            counts[match op.kind {
                ControlOpKind::Lookup => 0,
                ControlOpKind::Update => 1,
                ControlOpKind::Delete => 2,
                ControlOpKind::Dump => 3,
            }] += 1;
        }
        assert!((4500..5500).contains(&counts[0]), "lookups {counts:?}");
        assert!((3000..4000).contains(&counts[1]), "updates {counts:?}");
        assert!((700..1300).contains(&counts[2]), "deletes {counts:?}");
        assert!((300..700).contains(&counts[3]), "dumps {counts:?}");
    }

    #[test]
    fn ops_are_well_formed() {
        let gen = ControlOpGen::new(3, pool(4), 8, OpMix::default(), Popularity::Uniform, 5);
        for op in gen.take(500) {
            assert_eq!(op.map, 3);
            match op.kind {
                ControlOpKind::Dump => assert!(op.key.is_empty()),
                _ => assert_eq!(op.key.len(), 4),
            }
            match op.kind {
                ControlOpKind::Update => assert_eq!(op.value.len(), 8),
                _ => assert!(op.value.is_empty()),
            }
        }
    }

    #[test]
    fn hot_popularity_targets_the_head_key() {
        let gen = ControlOpGen::new(
            0,
            pool(64),
            8,
            OpMix { lookup: 1.0, update: 0.0, delete: 0.0, dump: 0.0 },
            Popularity::Hot { p_hot: 0.9 },
            9,
        );
        let hits = gen.take(2000).filter(|op| op.key == vec![0, 0, 0, 0]).count();
        assert!((1700..2000).contains(&hits), "hot-key hits {hits}");
    }

    #[test]
    fn degenerate_mixes_are_rejected_with_typed_errors() {
        // The all-zero mix used to build a CDF of NaNs and silently emit
        // an all-dump schedule; now it is a typed construction error.
        let zero = OpMix { lookup: 0.0, update: 0.0, delete: 0.0, dump: 0.0 };
        assert_eq!(zero.validate(), Err(CtrlGenError::InvalidOpMix { mix: zero }));
        let err = ControlOpGen::try_new(0, pool(4), 8, zero, Popularity::Uniform, 1)
            .expect_err("all-zero mix must be rejected");
        assert!(matches!(err, CtrlGenError::InvalidOpMix { .. }));
        assert!(err.to_string().contains("positive total"));

        let negative = OpMix { lookup: 0.5, update: -0.1, ..zero };
        assert!(negative.validate().is_err(), "negative weights are invalid");
        let nan = OpMix { lookup: f64::NAN, ..OpMix::default() };
        assert!(nan.validate().is_err(), "non-finite weights are invalid");
        assert!(OpMix::default().validate().is_ok());

        assert_eq!(
            ControlOpGen::try_new(0, vec![], 8, OpMix::default(), Popularity::Uniform, 1)
                .expect_err("empty pool"),
            CtrlGenError::EmptyKeyPool
        );
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn new_still_panics_on_zero_mix() {
        let zero = OpMix { lookup: 0.0, update: 0.0, delete: 0.0, dump: 0.0 };
        let _ = ControlOpGen::new(0, pool(4), 8, zero, Popularity::Uniform, 1);
    }

    #[test]
    fn client_workload_is_deterministic_and_skewed() {
        let mk = || {
            let mut w = ClientWorkload::try_new(
                100,
                0,
                pool(16),
                8,
                OpMix::default(),
                Popularity::Uniform,
                Popularity::Zipf { alpha: 1.2 },
                77,
            )
            .expect("valid workload");
            (0..2000).map(|_| w.next_op()).collect::<Vec<_>>()
        };
        let a = mk();
        assert_eq!(a, mk(), "population stream is reproducible");
        // Zipf activity: the head client dominates, but the tail exists.
        let head = a.iter().filter(|(c, _)| *c == 0).count();
        let distinct: std::collections::BTreeSet<u32> = a.iter().map(|(c, _)| *c).collect();
        assert!(head > 100, "head client issues a disproportionate share: {head}");
        assert!(distinct.len() > 30, "tail clients still get a turn: {}", distinct.len());
        // Two clients' streams differ (independent per-client seeds).
        let c0: Vec<_> = a.iter().filter(|(c, _)| *c == 0).map(|(_, op)| op).take(5).collect();
        let c1: Vec<_> = a.iter().filter(|(c, _)| *c == 1).map(|(_, op)| op).take(5).collect();
        assert_ne!(c0, c1);
        assert_eq!(
            ClientWorkload::try_new(
                0,
                0,
                pool(4),
                8,
                OpMix::default(),
                Popularity::Uniform,
                Popularity::Uniform,
                1
            )
            .expect_err("zero clients"),
            CtrlGenError::NoClients
        );
    }

    #[test]
    fn interleave_rate_and_determinism() {
        let packets: Vec<Vec<u8>> = (0..1000).map(|_| vec![0u8; 64]).collect();
        let mk = |pkts: Vec<Vec<u8>>| {
            let mut gen =
                ControlOpGen::new(0, pool(8), 8, OpMix::default(), Popularity::Uniform, 3);
            interleave_ops(pkts, &mut gen, 0.25, 17)
        };
        let a = mk(packets.clone());
        let b = mk(packets.clone());
        assert_eq!(a, b);
        let nops = a.iter().filter(|i| matches!(i, ScheduleItem::Op(_))).count();
        let npkts = a.iter().filter(|i| matches!(i, ScheduleItem::Packet(_))).count();
        assert_eq!(npkts, 1000);
        assert!((180..320).contains(&nops), "expected ~250 ops, got {nops}");
        // Rates above one emit the integer part unconditionally.
        let c = {
            let mut gen =
                ControlOpGen::new(0, pool(8), 8, OpMix::default(), Popularity::Uniform, 3);
            interleave_ops(packets, &mut gen, 2.0, 17)
        };
        let nops = c.iter().filter(|i| matches!(i, ScheduleItem::Op(_))).count();
        assert_eq!(nops, 2000);
    }
}
