//! Workload generation: flow populations, flow-popularity distributions
//! (uniform and Zipfian), packet-size mixes, and synthetic traces matching
//! the statistics of the CAIDA and MAWI captures used in the paper's §5.3.
//!
//! ```
//! use ehdl_traffic::{FlowSet, Popularity, Workload};
//!
//! let flows = FlowSet::udp(10_000, 42);
//! let mut wl = Workload::new(flows, Popularity::Zipf { alpha: 1.0 }, 64, 7);
//! let pkt = wl.next_packet();
//! assert_eq!(pkt.bytes.len(), 64);
//! ```

#![deny(clippy::unwrap_used)]

pub mod ctrlgen;
pub mod trace;

use ehdl_net::{FiveTuple, PacketBuilder, IPPROTO_TCP, IPPROTO_UDP};
use ehdl_rng::Rng;

pub use ctrlgen::{
    interleave_ops, ClientWorkload, ControlOp, ControlOpGen, ControlOpKind, CtrlGenError, OpMix,
    ScheduleItem,
};
pub use trace::{caida_like, mawi_like, Trace, TraceStats};

/// A population of distinct flows.
#[derive(Debug, Clone)]
pub struct FlowSet {
    flows: Vec<FiveTuple>,
}

impl FlowSet {
    /// Generate `n` distinct UDP flows deterministically from `seed`.
    pub fn udp(n: usize, seed: u64) -> FlowSet {
        FlowSet::generate(n, seed, IPPROTO_UDP)
    }

    /// Generate `n` distinct TCP flows deterministically from `seed`.
    pub fn tcp(n: usize, seed: u64) -> FlowSet {
        FlowSet::generate(n, seed, IPPROTO_TCP)
    }

    fn generate(n: usize, seed: u64, proto: u8) -> FlowSet {
        let mut rng = Rng::seed_from_u64(seed);
        let mut set = std::collections::HashSet::with_capacity(n);
        let mut flows = Vec::with_capacity(n);
        while flows.len() < n {
            let ft = FiveTuple {
                saddr: [10, rng.gen_u8(), rng.gen_u8(), rng.gen_u8()],
                daddr: [192, 168, rng.gen_u8(), rng.gen_u8()],
                sport: rng.gen_range_u64(1024, u64::from(u16::MAX)) as u16,
                dport: rng.gen_range_u64(1, 1023) as u16,
                proto,
            };
            if set.insert(ft) {
                flows.push(ft);
            }
        }
        FlowSet { flows }
    }

    /// Build from an explicit flow list.
    pub fn from_flows(flows: Vec<FiveTuple>) -> FlowSet {
        FlowSet { flows }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Access the flow list.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }
}

/// How packets distribute over flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every flow equally likely.
    Uniform,
    /// Zipfian: flow `i` has frequency ∝ `1/i^alpha` (App. A.1 uses α = 1).
    Zipf {
        /// Skew exponent.
        alpha: f64,
    },
    /// All packets from one flow (the §5.3 worst-case microbenchmark).
    SingleFlow,
    /// One hot flow carrying a fixed fraction of the packets, the rest
    /// uniform — an adversarial hazard workload: the hot flow's packets
    /// collide in the RAW window at a rate the `p_hot` knob dials
    /// directly, independent of the population size.
    Hot {
        /// Probability that a packet belongs to flow 0 (clamped to
        /// `[0, 1]`).
        p_hot: f64,
    },
}

/// Sampler over flow indices following a [`Popularity`] law.
#[derive(Debug, Clone)]
pub struct FlowSampler {
    cdf: Vec<f64>,
    rng: Rng,
    single: bool,
}

impl FlowSampler {
    /// Build a sampler for `n` flows.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, pop: Popularity, seed: u64) -> FlowSampler {
        assert!(n > 0, "flow population must be non-empty");
        let rng = Rng::seed_from_u64(seed);
        match pop {
            Popularity::SingleFlow => FlowSampler { cdf: vec![1.0], rng, single: true },
            Popularity::Uniform => {
                let cdf = (1..=n).map(|i| i as f64 / n as f64).collect();
                FlowSampler { cdf, rng, single: false }
            }
            Popularity::Zipf { alpha } => {
                let mut cdf = Vec::with_capacity(n);
                let mut acc = 0.0;
                for i in 1..=n {
                    acc += 1.0 / (i as f64).powf(alpha);
                    cdf.push(acc);
                }
                for v in &mut cdf {
                    *v /= acc;
                }
                FlowSampler { cdf, rng, single: false }
            }
            Popularity::Hot { p_hot } => {
                let p_hot = if n == 1 { 1.0 } else { p_hot.clamp(0.0, 1.0) };
                let rest = (1.0 - p_hot) / (n.saturating_sub(1).max(1)) as f64;
                let mut cdf = Vec::with_capacity(n);
                let mut acc = p_hot;
                cdf.push(acc);
                for _ in 1..n {
                    acc += rest;
                    cdf.push(acc);
                }
                if let Some(last) = cdf.last_mut() {
                    *last = 1.0;
                }
                FlowSampler { cdf, rng, single: false }
            }
        }
    }

    /// Draw one flow index.
    pub fn sample(&mut self) -> usize {
        if self.single {
            return 0;
        }
        let u: f64 = self.rng.gen_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite probabilities")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// One generated packet.
#[derive(Debug, Clone)]
pub struct GenPacket {
    /// Wire bytes.
    pub bytes: Vec<u8>,
    /// The flow it belongs to.
    pub flow: FiveTuple,
    /// Index of the flow within the [`FlowSet`].
    pub flow_index: usize,
}

/// An infinite packet source over a flow population.
#[derive(Debug, Clone)]
pub struct Workload {
    flows: FlowSet,
    sampler: FlowSampler,
    packet_size: usize,
    src_mac: [u8; 6],
    dst_mac: [u8; 6],
}

impl Workload {
    /// Create a workload emitting `packet_size`-byte frames.
    ///
    /// # Panics
    ///
    /// Panics if the flow set is empty or `packet_size < 64`.
    pub fn new(flows: FlowSet, pop: Popularity, packet_size: usize, seed: u64) -> Workload {
        assert!(packet_size >= 64, "minimum Ethernet frame is 64 bytes");
        let sampler = FlowSampler::new(flows.len(), pop, seed);
        Workload {
            flows,
            sampler,
            packet_size,
            src_mac: [0x02, 0, 0, 0, 0, 0x01],
            dst_mac: [0x02, 0, 0, 0, 0, 0x02],
        }
    }

    /// The flow population.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// Generate the next packet.
    pub fn next_packet(&mut self) -> GenPacket {
        let idx = self.sampler.sample();
        let flow = self.flows.flows()[idx];
        let bytes = build_flow_packet(&flow, self.src_mac, self.dst_mac, self.packet_size);
        GenPacket { bytes, flow, flow_index: idx }
    }

    /// Collect the next `n` packets' wire bytes (convenience over the
    /// [`Iterator`] impl).
    pub fn packets(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_packet().bytes).collect()
    }
}

impl Iterator for Workload {
    type Item = GenPacket;

    fn next(&mut self) -> Option<GenPacket> {
        Some(self.next_packet())
    }
}

/// Serialize one flow's packet at an exact frame size.
pub fn build_flow_packet(
    flow: &FiveTuple,
    src_mac: [u8; 6],
    dst_mac: [u8; 6],
    size: usize,
) -> Vec<u8> {
    let b = PacketBuilder::new().eth(src_mac, dst_mac);
    let b = if flow.proto == IPPROTO_TCP {
        b.ipv4(flow.saddr, flow.daddr, flow.proto).tcp(flow.sport, flow.dport, 0x10)
    } else {
        b.ipv4(flow.saddr, flow.daddr, flow.proto).udp(flow.sport, flow.dport)
    };
    b.exact_len(size).build()
}

/// Line-rate packet arithmetic for a given port speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineRate {
    /// Port speed in bits per second.
    pub bits_per_sec: f64,
}

impl LineRate {
    /// 100 Gbps Ethernet (the paper's testbed).
    pub const HUNDRED_GBE: LineRate = LineRate { bits_per_sec: 100e9 };

    /// Maximum packets per second at `frame_len` bytes. The frame length
    /// includes the FCS (the usual "64-byte packet" convention); preamble
    /// (8 B) and inter-frame gap (12 B) are added as wire overhead, giving
    /// the familiar 148.8 Mpps at 64 B on 100 GbE.
    pub fn max_pps(&self, frame_len: usize) -> f64 {
        let on_wire_bits = (frame_len + 8 + 12) as f64 * 8.0;
        self.bits_per_sec / on_wire_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowset_distinct_and_deterministic() {
        let a = FlowSet::udp(1000, 1);
        let b = FlowSet::udp(1000, 1);
        assert_eq!(a.flows(), b.flows());
        let set: std::collections::HashSet<_> = a.flows().iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn zipf_skews_to_head() {
        let mut s = FlowSampler::new(1000, Popularity::Zipf { alpha: 1.0 }, 3);
        let mut head = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if s.sample() < 10 {
                head += 1;
            }
        }
        // With alpha=1 over 1000 flows, top-10 mass = H(10)/H(1000) ≈ 0.39.
        let frac = head as f64 / N as f64;
        assert!((0.30..0.50).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn uniform_is_flat() {
        let mut s = FlowSampler::new(10, Popularity::Uniform, 3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[s.sample()] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn hot_flow_gets_its_share() {
        let mut s = FlowSampler::new(1000, Popularity::Hot { p_hot: 0.5 }, 3);
        let mut hot = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if s.sample() == 0 {
                hot += 1;
            }
        }
        let frac = hot as f64 / N as f64;
        assert!((0.45..0.55).contains(&frac), "hot fraction {frac}");
        // Degenerate populations stay well-defined.
        let mut one = FlowSampler::new(1, Popularity::Hot { p_hot: 0.3 }, 3);
        assert_eq!(one.sample(), 0);
    }

    #[test]
    fn single_flow_always_zero() {
        let mut s = FlowSampler::new(50, Popularity::SingleFlow, 3);
        for _ in 0..100 {
            assert_eq!(s.sample(), 0);
        }
    }

    #[test]
    fn workload_packets_parse_back() {
        let mut wl = Workload::new(FlowSet::udp(100, 5), Popularity::Uniform, 64, 6);
        for _ in 0..50 {
            let p = wl.next_packet();
            assert_eq!(FiveTuple::parse(&p.bytes), Some(p.flow));
            assert_eq!(p.bytes.len(), 64);
        }
    }

    #[test]
    fn workload_is_an_infinite_iterator() {
        let wl = Workload::new(FlowSet::udp(4, 9), Popularity::Uniform, 64, 9);
        let sizes: Vec<usize> = wl.map(|p| p.bytes.len()).take(5).collect();
        assert_eq!(sizes, vec![64; 5]);
    }

    #[test]
    fn hundred_gbe_line_rate_is_148mpps() {
        let pps = LineRate::HUNDRED_GBE.max_pps(64);
        assert!((148.0e6..149.5e6).contains(&pps), "{pps}");
    }
}
