//! Synthetic trace generation calibrated to the paper's real traces.
//!
//! §5.3 replays two captures at 100 Gbps against a Leaky Bucket pipeline:
//!
//! * CAIDA `caida_20190117-134900`: average packet size 411 B, 184 305 flows;
//! * MAWI  `mawi_202103221400`:     average packet size 573 B, 163 697 flows.
//!
//! Neither capture is redistributable, so [`caida_like`] and [`mawi_like`]
//! synthesize traces matching those published statistics: same flow count,
//! same mean packet size, heavy-tailed (Zipf α = 1) flow popularity — the
//! properties Table 2's flush behaviour depends on.

use crate::{build_flow_packet, FlowSampler, FlowSet, Popularity};
use ehdl_net::FiveTuple;
use ehdl_rng::Rng;

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of packets.
    pub packets: usize,
    /// Number of distinct 5-tuple flows observed.
    pub flows: usize,
    /// Mean packet size in bytes.
    pub avg_size: f64,
}

/// A replayable packet trace (sizes + flows; bytes built lazily).
#[derive(Debug, Clone)]
pub struct Trace {
    /// Human-readable name.
    pub name: String,
    entries: Vec<(u32, u16)>, // (flow index, size)
    flows: FlowSet,
}

impl Trace {
    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace contains no packets.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The flow population.
    pub fn flow_set(&self) -> &FlowSet {
        &self.flows
    }

    /// Iterate `(flow, size)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FiveTuple, usize)> + '_ {
        self.entries.iter().map(|&(fi, sz)| (self.flows.flows()[fi as usize], sz as usize))
    }

    /// Iterate `(flow_index, size)` pairs without materializing tuples.
    pub fn iter_indices(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.entries.iter().map(|&(fi, sz)| (fi as usize, sz as usize))
    }

    /// Materialize packet `i`'s bytes.
    pub fn packet(&self, i: usize) -> Vec<u8> {
        let (fi, sz) = self.entries[i];
        build_flow_packet(
            &self.flows.flows()[fi as usize],
            [0x02, 0, 0, 0, 0, 0x01],
            [0x02, 0, 0, 0, 0, 0x02],
            sz as usize,
        )
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut seen = vec![false; self.flows.len()];
        let mut total = 0u64;
        for &(fi, sz) in &self.entries {
            seen[fi as usize] = true;
            total += u64::from(sz);
        }
        TraceStats {
            packets: self.entries.len(),
            flows: seen.iter().filter(|s| **s).count(),
            avg_size: total as f64 / self.entries.len().max(1) as f64,
        }
    }
}

/// Parameters for synthesizing a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Distinct flows in the population.
    pub flows: usize,
    /// Packets to generate.
    pub packets: usize,
    /// Target mean packet size in bytes.
    pub avg_size: f64,
    /// Flow popularity skew.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Synthesize a trace matching `spec`.
///
/// Packet sizes follow the classic bimodal internet mix — a cluster of
/// small (64–128 B) packets and a cluster of MTU-sized packets — with the
/// mixture weight solved to hit `avg_size` exactly in expectation.
pub fn synthesize(name: &str, spec: TraceSpec) -> Trace {
    let flows = FlowSet::udp(spec.flows, spec.seed);
    let mut sampler =
        FlowSampler::new(spec.flows, Popularity::Zipf { alpha: spec.alpha }, spec.seed ^ 0x5eed);
    let mut rng = Rng::seed_from_u64(spec.seed ^ 0x7ace);

    // Small packets uniform in [64,128] (mean 96), large uniform in
    // [1200,1500] (mean 1350). Solve p·96 + (1-p)·1350 = avg.
    let p_small = ((1350.0 - spec.avg_size) / (1350.0 - 96.0)).clamp(0.0, 1.0);

    let entries = (0..spec.packets)
        .map(|_| {
            let fi = sampler.sample() as u32;
            let sz = if rng.gen_f64() < p_small {
                rng.gen_range_u64(64, 128)
            } else {
                rng.gen_range_u64(1200, 1500)
            };
            (fi, sz as u16)
        })
        .collect();
    Trace { name: name.to_string(), entries, flows }
}

/// A CAIDA-like trace (411 B average, 184 305 flows), scaled to `packets`.
pub fn caida_like(packets: usize, seed: u64) -> Trace {
    synthesize(
        "caida_20190117-134900 (synthetic)",
        TraceSpec { flows: 184_305, packets, avg_size: 411.0, alpha: 1.0, seed },
    )
}

/// A MAWI-like trace (573 B average, 163 697 flows), scaled to `packets`.
pub fn mawi_like(packets: usize, seed: u64) -> Trace {
    synthesize(
        "mawi_202103221400 (synthetic)",
        TraceSpec { flows: 163_697, packets, avg_size: 573.0, alpha: 1.0, seed },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_stats_match_spec() {
        let t = synthesize(
            "t",
            TraceSpec { flows: 5000, packets: 50_000, avg_size: 411.0, alpha: 1.0, seed: 9 },
        );
        let s = t.stats();
        assert_eq!(s.packets, 50_000);
        assert!((s.avg_size - 411.0).abs() < 30.0, "avg size {} far from 411", s.avg_size);
        // Zipf over 5000 flows with 50k packets touches most of the head.
        assert!(s.flows > 2000);
    }

    #[test]
    fn trace_packets_materialize() {
        let t = synthesize(
            "t",
            TraceSpec { flows: 100, packets: 200, avg_size: 300.0, alpha: 1.0, seed: 4 },
        );
        for i in 0..10 {
            let p = t.packet(i);
            assert!(p.len() >= 64);
            assert!(FiveTuple::parse(&p).is_some());
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = synthesize(
            "a",
            TraceSpec { flows: 50, packets: 100, avg_size: 500.0, alpha: 1.0, seed: 2 },
        );
        let b = synthesize(
            "b",
            TraceSpec { flows: 50, packets: 100, avg_size: 500.0, alpha: 1.0, seed: 2 },
        );
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn iter_matches_entries() {
        let t = synthesize(
            "t",
            TraceSpec { flows: 10, packets: 20, avg_size: 200.0, alpha: 1.0, seed: 3 },
        );
        assert_eq!(t.iter().count(), 20);
        for (ft, sz) in t.iter() {
            assert!(sz >= 64);
            assert_eq!(ft.proto, ehdl_net::IPPROTO_UDP);
        }
    }
}

/// Binary serialization of traces (a tiny self-describing format, so
/// synthesized workloads can be persisted and replayed across runs without
/// pulling in a serialization framework).
///
/// Layout: magic `EHDLTRC1`, name (u16 length + UTF-8), flow table
/// (u32 count × 13-byte 5-tuples), entries (u32 count × (u32 flow index,
/// u16 size)).
impl Trace {
    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.flows.len() * 13 + self.entries.len() * 6);
        out.extend_from_slice(b"EHDLTRC1");
        let name = self.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.flows.len() as u32).to_le_bytes());
        for f in self.flows.flows() {
            out.extend_from_slice(&f.to_key());
        }
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &(fi, sz) in &self.entries {
            out.extend_from_slice(&fi.to_le_bytes());
            out.extend_from_slice(&sz.to_le_bytes());
        }
        out
    }

    /// Deserialize from bytes produced by [`Trace::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes.get(*pos..*pos + n).ok_or("truncated trace file")?;
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != b"EHDLTRC1" {
            return Err("bad magic".into());
        }
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| "name is not UTF-8".to_string())?;
        let n_flows = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let mut flows = Vec::with_capacity(n_flows);
        for _ in 0..n_flows {
            let k = take(&mut pos, 13)?;
            flows.push(FiveTuple {
                saddr: k[0..4].try_into().expect("4 bytes"),
                daddr: k[4..8].try_into().expect("4 bytes"),
                sport: u16::from_be_bytes([k[8], k[9]]),
                dport: u16::from_be_bytes([k[10], k[11]]),
                proto: k[12],
            });
        }
        let n_entries =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let e = take(&mut pos, 6)?;
            let fi = u32::from_le_bytes(e[0..4].try_into().expect("4 bytes"));
            let sz = u16::from_le_bytes([e[4], e[5]]);
            if fi as usize >= n_flows {
                return Err(format!("entry references flow {fi} of {n_flows}"));
            }
            entries.push((fi, sz));
        }
        if pos != bytes.len() {
            return Err("trailing bytes after trace".into());
        }
        Ok(Trace { name, entries, flows: FlowSet::from_flows(flows) })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod serde_tests {
    use super::*;

    #[test]
    fn trace_roundtrips_through_bytes() {
        let t = synthesize(
            "roundtrip",
            TraceSpec { flows: 200, packets: 500, avg_size: 411.0, alpha: 1.0, seed: 12 },
        );
        let bytes = t.to_bytes();
        let u = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(u.name, "roundtrip");
        assert_eq!(u.len(), t.len());
        assert_eq!(u.stats(), t.stats());
        for (a, b) in t.iter().zip(u.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn malformed_traces_rejected() {
        assert!(Trace::from_bytes(b"NOPE").is_err());
        let t = synthesize(
            "x",
            TraceSpec { flows: 10, packets: 10, avg_size: 200.0, alpha: 1.0, seed: 1 },
        );
        let mut bytes = t.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(Trace::from_bytes(&bytes).is_err());
        let mut bytes = t.to_bytes();
        bytes.push(0);
        assert_eq!(Trace::from_bytes(&bytes).err(), Some("trailing bytes after trace".to_string()));
    }
}
