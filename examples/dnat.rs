//! Dynamic source NAT end-to-end — the application the paper highlights
//! because SDNet P4 cannot express it: port bindings are allocated and
//! written *from the data plane*, racing packets and all.
//!
//! ```sh
//! cargo run --example dnat
//! ```

use ehdl::baselines::{sdnet, SdnetCompiler};
use ehdl::core::Compiler;
use ehdl::ebpf::vm::XdpAction;
use ehdl::hwsim::{NicShell, ShellOptions};
use ehdl::net::FiveTuple;
use ehdl::programs::{dnat, App};
use ehdl::traffic::{FlowSet, Popularity, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // First: show the expressiveness gap the paper reports.
    match SdnetCompiler::new().compile(&sdnet::spec_for(App::Dnat)) {
        Err(e) => println!("SDNet P4: {e}"),
        Ok(_) => unreachable!("the paper could not express DNAT in P4"),
    }

    // eHDL compiles the unmodified XDP program.
    let program = dnat::program();
    let design = Compiler::new().compile(&program)?;
    println!(
        "eHDL: compiled dnat into {} stages; conn-table RAW window L={} guarded by {} FEB; \
         the port allocator uses the atomic block",
        design.stage_count(),
        design.hazards.max_raw_window().unwrap_or(0),
        design.hazards.febs.len()
    );

    let mut shell = NicShell::new(&design, ShellOptions::default());
    let mut wl = Workload::new(FlowSet::udp(2000, 9), Popularity::Zipf { alpha: 1.0 }, 64, 9);
    let packets: Vec<Vec<u8>> = wl.packets(20_000);
    let originals = packets.clone();
    let report = shell.run(packets);
    let outs = shell.drain();

    // NAT invariant: every flow keeps one stable translated port; no two
    // flows share one.
    let mut flow_port: std::collections::HashMap<FiveTuple, u16> = Default::default();
    let mut violations = 0;
    for (i, o) in outs.iter().enumerate() {
        if o.action != XdpAction::Tx {
            continue;
        }
        let orig = FiveTuple::parse(&originals[i]).expect("udp traffic");
        let port = u16::from_be_bytes([o.packet[34], o.packet[35]]);
        let prev = flow_port.insert(orig, port);
        if prev.is_some_and(|p| p != port) {
            violations += 1;
        }
        assert_eq!(&o.packet[26..30], &dnat::NAT_ADDR, "rewritten source address");
    }
    let distinct: std::collections::HashSet<u16> = flow_port.values().copied().collect();
    println!(
        "offered {} | throughput {:.1} Mpps | lost {} | flushes {} (binding races)",
        report.offered,
        report.throughput_pps / 1e6,
        report.lost,
        report.flushes
    );
    println!(
        "{} flows translated to {} distinct ports, {} stability violations",
        flow_port.len(),
        distinct.len(),
        violations
    );
    assert_eq!(violations, 0);
    assert_eq!(distinct.len(), flow_port.len());
    let stats = dnat::read_stats(shell.sim_mut().maps());
    println!("host stats: translated={} bindings={}", stats[0], stats[1]);
    Ok(())
}
