//! The Simple Firewall end-to-end: compile the unmodified XDP program,
//! drive the simulated 100 GbE NIC with bidirectional UDP traffic, and
//! watch the session table do its job at line rate.
//!
//! ```sh
//! cargo run --example firewall
//! ```

use ehdl::core::Compiler;
use ehdl::ebpf::vm::XdpAction;
use ehdl::hwsim::{NicShell, ShellOptions};
use ehdl::net::{FiveTuple, IPPROTO_UDP};
use ehdl::programs::simple_firewall as fw;
use ehdl::traffic::build_flow_packet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = fw::program();
    let design = Compiler::new().compile(&program)?;
    println!(
        "firewall compiled: {} insns -> {} stages, {} FEB, {} atomic blocks",
        design.stats.source_insns,
        design.stage_count(),
        design.hazards.febs.len(),
        design.hazards.atomic_stages.len()
    );

    let mut shell = NicShell::new(&design, ShellOptions::default());

    // Three traffic classes:
    //  - inside clients (10.0.0.0/8) talking out: allowed, open sessions;
    //  - the answers coming back: allowed because the session exists;
    //  - outside scanners with no session: dropped.
    let inside = |i: u8| FiveTuple {
        saddr: [10, 0, 0, i],
        daddr: [93, 184, 216, 34],
        sport: 40_000 + u16::from(i),
        dport: 53,
        proto: IPPROTO_UDP,
    };
    let scanner = FiveTuple {
        saddr: [203, 0, 113, 99],
        daddr: [10, 0, 0, 1],
        sport: 31337,
        dport: 161,
        proto: IPPROTO_UDP,
    };

    let mut packets = Vec::new();
    for round in 0..2000 {
        let client = inside((round % 8) as u8);
        packets.push(build_flow_packet(&client, [2; 6], [3; 6], 64));
        packets.push(build_flow_packet(&client.reversed(), [3; 6], [2; 6], 64));
        if round % 5 == 0 {
            packets.push(build_flow_packet(&scanner, [4; 6], [2; 6], 64));
        }
    }
    let report = shell.run(packets);

    let outs = shell.drain();
    let tx = outs.iter().filter(|o| o.action == XdpAction::Tx).count();
    let dropped = outs.iter().filter(|o| o.action == XdpAction::Drop).count();
    println!(
        "offered {} | throughput {:.1} Mpps | latency {:.0} ns | lost {}",
        report.offered,
        report.throughput_pps / 1e6,
        report.avg_latency_ns,
        report.lost
    );
    println!("verdicts: {tx} forwarded, {dropped} dropped (the scanner)");
    println!("flush events under same-flow bursts: {}", report.flushes);

    let stats = fw::read_stats(shell.sim_mut().maps());
    println!(
        "host stats map: allowed={} dropped={} sessions_opened={}",
        stats[0], stats[1], stats[2]
    );
    // The DROPPED counter may run slightly ahead of the drop verdicts: a
    // packet racing its own session's creation first takes the drop path,
    // bumps the counter in the map block, and is then flushed and replayed
    // down the correct path — the committed atomic cannot be undone
    // (sec. 4.1.2; the same effect leaks ports in DNAT). The *verdicts*
    // are exact.
    assert!(stats[1] >= dropped as u64);
    assert!(stats[1] - dropped as u64 <= report.flushes);
    Ok(())
}
