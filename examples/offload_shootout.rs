//! Offload shootout: run one application (default: the Suricata filter)
//! on every system of the paper's comparison — the eHDL pipeline, the
//! hXDP soft processor, a BlueField-2 with 1 and 4 cores, and SDNet P4 —
//! and print the Figure-9a-style summary.
//!
//! ```sh
//! cargo run --example offload_shootout [firewall|router|tunnel|dnat|suricata]
//! ```

use ehdl::baselines::{sdnet, BluefieldModel, HxdpModel, SdnetCompiler};
use ehdl::core::Compiler;
use ehdl::hwsim::{NicShell, ShellOptions};
use ehdl::programs::App;
use ehdl::traffic::{FlowSet, Popularity, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "suricata".into());
    let app = match which.to_lowercase().as_str() {
        "firewall" => App::Firewall,
        "router" => App::Router,
        "tunnel" => App::Tunnel,
        "dnat" => App::Dnat,
        "suricata" => App::Suricata,
        other => {
            eprintln!("unknown app `{other}`; pick firewall|router|tunnel|dnat|suricata");
            std::process::exit(2);
        }
    };
    let program = app.program();
    println!("== {app}: {} original eBPF instructions ==\n", program.insn_count());

    // eHDL: the real pipeline on the simulated NIC.
    let design = Compiler::new().compile(&program)?;
    let mut shell = NicShell::new(&design, ShellOptions::default());
    let flows = match app {
        App::Suricata => FlowSet::tcp(10_000, 3),
        _ => FlowSet::udp(10_000, 3),
    };
    let mut wl = Workload::new(flows, Popularity::Uniform, 64, 4);
    let packets: Vec<Vec<u8>> = wl.packets(30_000);
    let sample: Vec<Vec<u8>> = packets.iter().take(64).cloned().collect();
    let report = shell.run(packets);
    println!(
        "eHDL pipeline : {:>7.1} Mpps  {:>6.0} ns   ({} stages, {} lost)",
        report.throughput_pps / 1e6,
        report.avg_latency_ns,
        design.stage_count(),
        report.lost
    );

    // SDNet P4.
    match SdnetCompiler::new().compile(&sdnet::spec_for(app)) {
        Ok(d) => println!(
            "SDNet P4      : {:>7.1} Mpps  {:>6.0} ns   ({} kLUT pipeline)",
            d.pps / 1e6,
            d.latency_ns,
            d.resources.luts / 1000
        ),
        Err(e) => println!("SDNet P4      :     N/A              ({e})"),
    }

    // hXDP.
    let hxdp = HxdpModel::new().evaluate(&program, &sample)?;
    println!(
        "hXDP (VLIW)   : {:>7.1} Mpps  {:>6.0} ns   ({:.0} cycles/pkt, sequential)",
        hxdp.pps / 1e6,
        hxdp.latency_ns,
        hxdp.cycles_per_packet
    );

    // BlueField-2.
    for cores in [1usize, 4] {
        let bf = BluefieldModel::new(cores).evaluate(&program, &sample)?;
        println!(
            "BlueField-2 {cores}c: {:>7.1} Mpps  {:>6.0} ns",
            bf.pps / 1e6,
            bf.latency_ns
        );
    }

    println!(
        "\nshape (paper Fig. 9): the pipeline holds line rate (148.8 Mpps) while the\n\
         processor-based offloads sit 10-100x lower; only eHDL and SDNet reach line\n\
         rate, and SDNet cannot express DNAT at all."
    );
    Ok(())
}
