//! Quickstart: compile the paper's running example (Listing 1) into a
//! hardware pipeline, inspect the generated design (Figure 8), emit VHDL,
//! and push a few packets through the simulated NIC.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ehdl::core::{resource, vhdl, Compiler, Target};
use ehdl::ebpf::disasm;
use ehdl::hwsim::{NicShell, ShellOptions};
use ehdl::net::{PacketBuilder, IPPROTO_UDP};
use ehdl::programs::toy_counter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The unmodified eBPF/XDP program (the Listing 1 packet counter).
    let program = toy_counter::program();
    println!("=== eBPF bytecode (Listing 2 style) ===");
    println!("{}", disasm::disassemble(&program));

    // 2. Compile it into a tailored hardware pipeline.
    let design = Compiler::new().compile(&program)?;
    println!("=== Generated pipeline (Figure 8 style) ===");
    println!("{}", design.summary());

    // 3. Resource estimate on the Alveo U50 target.
    let util = resource::estimate_with_shell(&design).utilization(Target::ALVEO_U50);
    println!(
        "Alveo U50 utilisation (with Corundum shell): {:.1}% LUTs, {:.1}% FFs, {:.1}% BRAM",
        util.luts * 100.0,
        util.ffs * 100.0,
        util.brams * 100.0
    );

    // 4. Emit the VHDL (first lines shown here; pipe to a file for all).
    let hdl = vhdl::emit(&design);
    println!("\n=== VHDL (head) ===");
    for line in hdl.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", hdl.lines().count());

    // 5. Run traffic through the simulated 100 GbE NIC.
    let mut shell = NicShell::new(&design, ShellOptions::default());
    let mkpkt = |v6: bool| -> Vec<u8> {
        if v6 {
            PacketBuilder::new().eth([1; 6], [2; 6]).ipv6([1; 16], [2; 16], IPPROTO_UDP).build()
        } else {
            PacketBuilder::new()
                .eth([1; 6], [2; 6])
                .ipv4([10, 0, 0, 1], [10, 0, 0, 2], IPPROTO_UDP)
                .udp(1000, 53)
                .build()
        }
    };
    let packets: Vec<Vec<u8>> = (0..10_000).map(|i| mkpkt(i % 4 == 0)).collect();
    let report = shell.run(packets);
    println!("=== Simulated NIC run ===");
    println!(
        "offered {} packets, completed {}, lost {}, throughput {:.1} Mpps, avg latency {:.0} ns",
        report.offered,
        report.completed,
        report.lost,
        report.throughput_pps / 1e6,
        report.avg_latency_ns
    );

    // 6. Read the statistics map from the "host" — the standard eBPF
    //    userspace interface (sec. 6 of the paper).
    let counters = toy_counter::read_counters(shell.sim_mut().maps());
    println!(
        "host map read: other={} ipv4={} ipv6={} arp={}",
        counters[0], counters[1], counters[2], counters[3]
    );
    Ok(())
}
