//! The IPv4 router end-to-end: the host control plane installs LPM routes
//! (the standard userspace map interface), the data plane rewrites MACs,
//! decrements TTLs, patches checksums and redirects — all in the generated
//! pipeline at line rate.
//!
//! ```sh
//! cargo run --example router
//! ```

use ehdl::core::Compiler;
use ehdl::ebpf::vm::XdpAction;
use ehdl::hwsim::{NicShell, ShellOptions};
use ehdl::net::{checksum, offsets, ETH_HLEN, IPV4_HLEN};
use ehdl::programs::router;
use ehdl::traffic::{FlowSet, Popularity, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = router::program();
    let design = Compiler::new().compile(&program)?;
    println!(
        "router compiled: {} insns -> {} stages (LPM routes via host-written map)",
        design.stats.source_insns,
        design.stage_count()
    );

    let mut shell = NicShell::new(&design, ShellOptions::default());

    // Control plane: a default route plus two more-specific prefixes.
    let maps = shell.sim_mut().maps_mut();
    router::install_route(maps, [0, 0, 0, 0], 0, 1, [0x52, 0, 0, 0, 0, 0x01], [0x02; 6]);
    router::install_route(maps, [192, 168, 0, 0], 16, 2, [0x52, 0, 0, 0, 0, 0x02], [0x02; 6]);
    router::install_route(maps, [192, 168, 7, 0], 24, 3, [0x52, 0, 0, 0, 0, 0x03], [0x02; 6]);

    // Data plane: 5k flows across the prefixes.
    let mut wl = Workload::new(FlowSet::udp(5000, 1), Popularity::Uniform, 64, 2);
    let packets: Vec<Vec<u8>> = wl.packets(20_000);
    let report = shell.run(packets);

    let outs = shell.drain();
    let mut by_ifindex = std::collections::BTreeMap::new();
    for o in &outs {
        if o.action == XdpAction::Redirect {
            *by_ifindex.entry(o.redirect_ifindex.unwrap_or(0)).or_insert(0u64) += 1;
            // The rewritten packet still has a valid IPv4 checksum.
            let sum = checksum::internet_checksum(&o.packet[ETH_HLEN..ETH_HLEN + IPV4_HLEN]);
            assert_eq!(sum, 0, "incremental checksum patch must hold");
            assert_eq!(o.packet[offsets::IP_TTL], 63, "TTL decremented");
        }
    }
    println!(
        "offered {} | throughput {:.1} Mpps | latency {:.0} ns | lost {}",
        report.offered,
        report.throughput_pps / 1e6,
        report.avg_latency_ns,
        report.lost
    );
    for (ifidx, n) in &by_ifindex {
        println!("  redirected to ifindex {ifidx}: {n} packets");
    }
    let stats = router::read_stats(shell.sim_mut().maps());
    println!(
        "host stats: forwarded={} no_route={} ttl_expired={}",
        stats[0], stats[1], stats[2]
    );
    Ok(())
}
