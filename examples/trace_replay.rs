//! Table-2 style trace replay: synthesize a CAIDA-like trace (411 B
//! average, heavy-tailed flows), persist it to disk, reload it, and replay
//! it at 100 Gbps through the Leaky Bucket pipeline — counting flush
//! events and losses like §5.3.
//!
//! ```sh
//! cargo run --release --example trace_replay [packets]
//! ```

use ehdl::core::Compiler;
use ehdl::hwsim::{NicShell, ShellOptions};
use ehdl::programs::leaky_bucket;
use ehdl::traffic::{caida_like, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let packets: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(40_000);

    // Synthesize and persist the trace (the paper's captures are not
    // redistributable; this one matches their published statistics).
    let trace = caida_like(packets, 7);
    let stats = trace.stats();
    println!(
        "trace `{}`: {} packets, {} flows, avg {:.0} B",
        trace.name, stats.packets, stats.flows, stats.avg_size
    );
    let path = std::env::temp_dir().join("ehdl_caida_like.trc");
    std::fs::write(&path, trace.to_bytes())?;
    println!("persisted to {} ({} KiB)", path.display(), trace.to_bytes().len() / 1024);

    // Reload and replay.
    let trace = Trace::from_bytes(&std::fs::read(&path)?)?;
    let design = Compiler::new().compile(&leaky_bucket::program())?;
    println!(
        "leaky bucket pipeline: {} stages, RAW window L={} (two-field RMW cannot be atomized)",
        design.stage_count(),
        design.hazards.max_raw_window().unwrap_or(0)
    );
    let mut nic = NicShell::new(&design, ShellOptions::default());
    let report = nic.run((0..trace.len()).map(|i| trace.packet(i)));

    println!(
        "replayed {} packets in {:.2} ms simulated: {} lost, {:.0}k flushes/sec",
        report.offered,
        report.seconds * 1e3,
        report.lost,
        report.flushes_per_sec / 1e3
    );
    let stats = leaky_bucket::read_stats(nic.sim_mut().maps());
    println!("bucket verdicts: forwarded={} rate-limited={}", stats[0], stats[1]);
    assert_eq!(report.lost, 0, "Table 2: no packets lost under realistic traces");
    Ok(())
}
