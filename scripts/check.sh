#!/usr/bin/env bash
# Repo gate: build, test, lint, and simulator-speed smoke.
#
# The speed smoke replays the Figure-9a firewall workload (40k packets at
# 64 B line rate) and fails if the simulator sustains less than half the
# cycles/sec recorded in BENCH_sim_speed.json — hot-loop regressions fail
# CI instead of silently slowing every figure regeneration. Re-record an
# intentional change with:
#
#   EHDL_WRITE_BENCH=1 cargo bench -p ehdl-bench --bench sim_speed

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --all -- --check

echo "== docs (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== sim speed smoke (40k packets) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench sim_speed

echo "== flush-cost sweep (partial flushes vs baseline) =="
cargo bench -p ehdl-bench --bench flush_opt

echo "== control plane (op latency, swap downtime, telemetry <1%) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench runtime_ops

echo "== value-analysis effectiveness (invcheck + proven-access floor) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench absint_stats

echo "== loader/decoder/verifier fuzz (11k seeded cases) =="
cargo test -p ehdl-ebpf --test fuzz_loader -q

echo "== fault campaign (protection coverage + watchdog availability) =="
cargo bench -p ehdl-bench --bench fault_campaign

echo "check.sh: all gates passed"
