#!/usr/bin/env bash
# Repo gate: build, test, lint, simulator-speed smoke, and scale-out gate.
#
# Usage:
#   scripts/check.sh           # the full gate (benches included)
#   scripts/check.sh --quick   # build + tests + lints only (edit loop)
#
# The speed smoke replays the Figure-9a firewall workload (40k packets at
# 64 B line rate) under both stage engines (reference interpreter and the
# compiled backend) and fails if:
#   - any (app, backend) pair sustains less than half the cycles/sec
#     recorded in BENCH_sim_speed.json (hot-loop regression);
#   - the compiled backend's live speedup over the interpreter on the
#     firewall run drops below the bar in benches/sim_speed.rs
#     (MIN_FIREWALL_SPEEDUP, interleaved min-of-3 measurement);
#   - any of the five evaluation apps stops lowering to the compiled
#     backend — forced Backend::Compiled aborts instead of silently
#     measuring the interpreter, and a pre-flight try_lower pass names
#     every offender;
#   - the two backends diverge on cycles/flushes/replays (they must be
#     bit-identical on the deterministic workload).
# The scale-out gate sweeps RSS-sharded pipeline replicas {1,2,4,8} over
# uniform and Zipf workloads (Firewall, DNAT) through the banked
# shared-map fabric and fails if:
#   - 4 uniform-workload firewall replicas deliver less than 2.5x the
#     aggregate pkts/cycle of a single replica;
#   - any uniform run drops packets (balanced load must be lossless);
#   - any sweep point drifts more than 25% from BENCH_scale_out.json.
#
# The chaos gate (replica kill/hang/brown-out storms × control-channel
# loss) replays BENCH_chaos.json's campaign and fails if:
#   - any injected replica failure goes undetected and unmasked, or is
#     detected past the watchdog budget;
#   - any packet is lost silently (offered must equal completed +
#     drained + discarded + rejected in every scenario);
#   - availability under a single kill falls below (N-1)/N - 5%;
#   - any host op at 10% channel loss fails to complete exactly once,
#     or the retried sequence diverges from the lossless reference;
#   - availability drifts more than 5 points from the recording.
#
# The SLO gate (long-haul serving campaign: multi-client reactor over
# churn, hot-key storms, SYN floods, live reloads, a kill storm, and a
# 10%-lossy control channel) replays BENCH_slo.json's campaign and
# fails if:
#   - whole-run availability across the lossless serving phases drops
#     below the 99.9% target, or drifts from the recording;
#   - p999 admission-to-ack op latency exceeds the recorded bound;
#   - the op coalescer stops shrinking the device schedule;
#   - the kill storm goes undetected, any punted frame survives the
#     host retry pass unserved, or request-level availability under the
#     kill falls below 99%;
#   - any admitted op at 10% channel loss is abandoned or never acked.
#
# The sharding-soundness gate (static shardcheck verdicts vs the dynamic
# differential checker) replays BENCH_shardcheck.json's campaign and
# fails if:
#   - any evaluation-app map stops auto-classifying (an OpaqueRmw
#     demotion would force hand-written sharding configs back in);
#   - any statically-proven verdict (vm_exact, placement, serialization)
#     is contradicted by the sharded differential run at 2 or 4 replicas;
#   - fewer than all four ShardError diagnostics fire on the deliberately
#     unsound configs;
#   - classification precision drops below the recording.
#
# Re-record an intentional change with:
#
#   EHDL_WRITE_BENCH=1 cargo bench -p ehdl-bench --bench sim_speed
#   EHDL_WRITE_BENCH=1 cargo bench -p ehdl-bench --bench scale_out
#   EHDL_WRITE_BENCH=1 cargo bench -p ehdl-bench --bench chaos
#   EHDL_WRITE_BENCH=1 cargo bench -p ehdl-bench --bench shardcheck
#   EHDL_WRITE_BENCH=1 cargo bench -p ehdl-bench --bench slo

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
fi

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings
# Every library crate carries #![deny(clippy::unwrap_used)]; lint them
# standalone so a workspace-level cap change can't mask it.
cargo clippy -p ehdl-hwsim -- -D warnings
cargo clippy -p ehdl-core --all-targets -- -D warnings
cargo clippy -p ehdl-runtime --all-targets -- -D warnings
cargo clippy -p ehdl-programs --all-targets -- -D warnings
cargo clippy -p ehdl-net --all-targets -- -D warnings
cargo clippy -p ehdl-baselines --all-targets -- -D warnings
cargo clippy -p ehdl-rng --all-targets -- -D warnings
cargo clippy -p ehdl-bench --all-targets -- -D warnings
cargo clippy -p ehdl-serve --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --all -- --check

echo "== docs (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ "$quick" == "1" ]]; then
  echo "check.sh --quick: build, tests and lints passed (bench gates skipped)"
  exit 0
fi

echo "== sim speed smoke (40k packets) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench sim_speed

echo "== scale-out gate (RSS sharding x banked shared maps) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench scale_out

echo "== flush-cost sweep (partial flushes vs baseline) =="
cargo bench -p ehdl-bench --bench flush_opt

echo "== control plane (op latency, swap downtime, telemetry <1%) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench runtime_ops

echo "== value-analysis effectiveness (invcheck + proven-access floor) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench absint_stats

echo "== loader/decoder/verifier fuzz (11k seeded cases) =="
cargo test -p ehdl-ebpf --test fuzz_loader -q

echo "== fault campaign (protection coverage + watchdog availability) =="
cargo bench -p ehdl-bench --bench fault_campaign

echo "== control-channel fuzz (codec + mailbox overflow, seeded) =="
cargo test -p ehdl-hwsim --test fuzz_ctrl -q

echo "== chaos gate (replica fail-over x lossy control channel) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench chaos

echo "== sharding soundness (static shardcheck vs dynamic checkers) =="
cargo test -p ehdl-hwsim --test shardplan -q
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench shardcheck

echo "== SLO gate (long-haul serving campaign x kill storm x lossy ctrl) =="
EHDL_CHECK_BENCH=1 cargo bench -p ehdl-bench --bench slo

echo "check.sh: all gates passed"
