//! `ehdl` — command-line front-end to the compiler and the simulated NIC.
//!
//! ```sh
//! ehdl list
//! ehdl disasm router
//! ehdl compile suricata --summary
//! ehdl compile firewall --vhdl firewall.vhd
//! ehdl run dnat --packets 20000 --flows 5000
//! ```

use ehdl::core::{resource, vhdl, Compiler, CompilerOptions, Target};
use ehdl::ebpf::disasm;
use ehdl::hwsim::{NicShell, ShellOptions};
use ehdl::programs::App;
use ehdl::traffic::{FlowSet, Popularity, Workload};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ehdl list\n  ehdl disasm <app>\n  ehdl emit-obj <app> <file.o>\n  ehdl compile <app|file.o> [--summary] [--vhdl FILE] [--testbench FILE] [--dot FILE] \
         [--frame-size N] [--no-prune] [--no-fusion] [--no-parallelize] [--keep-bounds-checks]\n  \
         ehdl run <app> [--packets N] [--flows N] [--size BYTES]\n\napps: firewall router tunnel dnat suricata"
    );
    ExitCode::from(2)
}

fn app_of(name: &str) -> Option<App> {
    match name.to_lowercase().as_str() {
        "firewall" => Some(App::Firewall),
        "router" => Some(App::Router),
        "tunnel" => Some(App::Tunnel),
        "dnat" => Some(App::Dnat),
        "suricata" => Some(App::Suricata),
        _ => None,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Resolve an app name or a `.o` path into a program.
fn program_of(arg: &str) -> Option<ehdl::ebpf::Program> {
    if let Some(app) = app_of(arg) {
        return Some(app.program());
    }
    if std::path::Path::new(arg).exists() {
        let bytes = std::fs::read(arg).ok()?;
        match ehdl::ebpf::elf::load(&bytes) {
            Ok(p) => return Some(p),
            Err(e) => {
                eprintln!("cannot load {arg}: {e}");
                return None;
            }
        }
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match cmd.as_str() {
        "emit-obj" => {
            let (Some(app), Some(path)) = (args.get(1).and_then(|n| app_of(n)), args.get(2)) else {
                return usage();
            };
            let object = ehdl::ebpf::elf::write(&app.program());
            if let Err(e) = std::fs::write(path, object) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("BPF ELF object written to {path}");
            ExitCode::SUCCESS
        }
        "list" => {
            println!("bundled eBPF/XDP applications (Table 1 of the paper):");
            for app in App::ALL {
                let p = app.program();
                println!(
                    "  {:10} {:3} instructions, {} maps",
                    app.name().to_lowercase(),
                    p.insn_count(),
                    p.maps.len()
                );
            }
            ExitCode::SUCCESS
        }
        "disasm" => {
            let Some(app) = args.get(1).and_then(|n| app_of(n)) else { return usage() };
            print!("{}", disasm::disassemble(&app.program()));
            ExitCode::SUCCESS
        }
        "compile" => {
            let Some(program) = args.get(1).and_then(|n| program_of(n)) else { return usage() };
            let mut opts = CompilerOptions::default();
            if let Some(fs) = flag_value(&args, "--frame-size") {
                match fs.parse() {
                    Ok(v) => opts.frame_size = v,
                    Err(_) => return usage(),
                }
            }
            opts.prune = !args.iter().any(|a| a == "--no-prune");
            opts.fusion = !args.iter().any(|a| a == "--no-fusion");
            opts.parallelize = !args.iter().any(|a| a == "--no-parallelize");
            opts.elide_bounds_checks = !args.iter().any(|a| a == "--keep-bounds-checks");

            let design = match Compiler::with_options(opts).compile(&program) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("compile error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let util = resource::estimate_with_shell(&design).utilization(Target::ALVEO_U50);
            println!(
                "{}: {} insns -> {} hw insns -> {} stages | ILP max {} avg {:.2} | \
                 {} FEB, {} WAR buffers, {} atomic blocks | U50: {:.1}% LUT {:.1}% FF {:.1}% BRAM",
                design.name,
                design.stats.source_insns,
                design.stats.hw_insns,
                design.stage_count(),
                design.stats.ilp.max,
                design.stats.ilp.avg,
                design.hazards.febs.len(),
                design.hazards.war_buffers.len(),
                design.hazards.atomic_stages.len(),
                util.luts * 100.0,
                util.ffs * 100.0,
                util.brams * 100.0,
            );
            if args.iter().any(|a| a == "--summary") {
                print!("{}", design.summary());
            }
            if let Some(path) = flag_value(&args, "--vhdl") {
                let hdl = vhdl::emit(&design);
                if let Err(e) = std::fs::write(&path, hdl) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("VHDL written to {path}");
            }
            if let Some(path) = flag_value(&args, "--testbench") {
                let tb = vhdl::emit_testbench(&design, 64);
                if let Err(e) = std::fs::write(&path, tb) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("testbench written to {path}");
            }
            if let Some(path) = flag_value(&args, "--dot") {
                if let Err(e) = std::fs::write(&path, design.to_dot()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("graphviz written to {path}");
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(app) = args.get(1).and_then(|n| app_of(n)) else { return usage() };
            let packets: usize =
                flag_value(&args, "--packets").and_then(|v| v.parse().ok()).unwrap_or(20_000);
            let flows: usize =
                flag_value(&args, "--flows").and_then(|v| v.parse().ok()).unwrap_or(10_000);
            let size: usize =
                flag_value(&args, "--size").and_then(|v| v.parse().ok()).unwrap_or(64);
            let program = app.program();
            let design = match Compiler::new().compile(&program) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("compile error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut shell = NicShell::new(&design, ShellOptions::default());
            // Minimal host setup so every app forwards something.
            let maps = shell.sim_mut().maps_mut();
            match app {
                App::Router => {
                    ehdl::programs::router::install_route(maps, [0; 4], 0, 1, [0xaa; 6], [0x02; 6]);
                }
                App::Tunnel => {
                    ehdl::programs::tunnel::install_endpoint(
                        maps,
                        [192, 168, 0, 0],
                        [172, 16, 0, 1],
                        [172, 16, 0, 2],
                        [0xaa; 6],
                        [0xbb; 6],
                    );
                }
                _ => {}
            }
            let flowset = match app {
                App::Suricata => FlowSet::tcp(flows, 1),
                _ => FlowSet::udp(flows, 1),
            };
            let mut wl = Workload::new(flowset, Popularity::Uniform, size.max(64), 2);
            let stream: Vec<Vec<u8>> = wl.packets(packets);
            let report = shell.run(stream);
            println!(
                "{}: offered {} pkts ({} B, {} flows) @ 100GbE",
                app.name(),
                report.offered,
                size.max(64),
                flows
            );
            println!(
                "  throughput {:.1} Mpps | avg latency {:.0} ns (p99 {:.0}) | lost {} | flushes {}",
                report.throughput_pps / 1e6,
                report.avg_latency_ns,
                report.p99_latency_ns,
                report.lost,
                report.flushes
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
