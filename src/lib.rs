//! Umbrella crate re-exporting the complete eHDL toolchain.
//!
//! eHDL is a high-level synthesis tool that turns unmodified eBPF/XDP
//! programs into tailored NIC hardware pipelines (ASPLOS '23). This crate
//! bundles the full reproduction:
//!
//! * [`ebpf`] — the eBPF ISA, assembler, verifier, maps and reference VM;
//! * [`net`] — packet header substrate;
//! * [`traffic`] — workload and trace generators;
//! * [`core`] — the eHDL compiler itself (bytecode → hardware pipeline);
//! * [`hwsim`] — cycle-level simulator for generated pipelines + NIC shell;
//! * [`baselines`] — hXDP, BlueField-2 and SDNet comparison models;
//! * [`programs`] — the real-world XDP applications from the evaluation;
//! * [`runtime`] — host control plane: live map access over a modeled
//!   PCIe channel, telemetry export, and drain-and-swap program reload;
//! * [`serve`] — multi-client serving reactor: fair batching and op
//!   coalescing over the control channel, continuous SLO tracking, and
//!   the long-haul campaign driver.
//!
//! ```
//! use ehdl::core::Compiler;
//! use ehdl::programs::toy_counter;
//!
//! let program = toy_counter::program();
//! let design = Compiler::new().compile(&program)?;
//! println!("{} pipeline stages", design.stage_count());
//! # Ok::<(), ehdl::core::CompileError>(())
//! ```

pub use ehdl_baselines as baselines;
pub use ehdl_core as core;
pub use ehdl_ebpf as ebpf;
pub use ehdl_hwsim as hwsim;
pub use ehdl_net as net;
pub use ehdl_programs as programs;
pub use ehdl_runtime as runtime;
pub use ehdl_serve as serve;
pub use ehdl_traffic as traffic;
