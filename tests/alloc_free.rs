//! Allocation-count regression test for the simulator hot loop.
//!
//! The zero-allocation claim for the enabled-stage fast path is enforced
//! directly: a counting global allocator observes every heap call, and a
//! steady-state `step()` that neither completes a packet nor fires a
//! hazard must perform exactly zero of them.
//!
//! This test lives in its own binary on purpose — any other test running
//! concurrently in the same process would perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ehdl::core::Compiler;
use ehdl::ebpf::asm::Asm;
use ehdl::ebpf::helpers::{BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM};
use ehdl::ebpf::maps::{MapDef, MapKind};
use ehdl::ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl::ebpf::Program;
use ehdl::hwsim::{Backend, PipelineSim, SimOptions};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The harness runs tests on parallel threads; the counter is
/// process-global, so measuring tests must not overlap.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A branchy, map-free packet transform: reads two bytes, takes one of
/// two ALU paths, writes the result back. Exercises predication and the
/// per-stage write set without any map traffic.
fn alu_program() -> Program {
    let mut a = Asm::new();
    let els = a.new_label();
    let join = a.new_label();
    a.load(MemSize::W, 7, 1, 0); // r7 = data
    a.load(MemSize::B, 2, 7, 0);
    a.load(MemSize::B, 3, 7, 1);
    a.jmp_imm(JmpOp::Jgt, 2, 0x40, els);
    a.alu64_reg(AluOp::Add, 2, 3);
    a.alu64_imm(AluOp::And, 2, 0xff);
    a.jmp(join);
    a.bind(els);
    a.alu64_imm(AluOp::Xor, 2, 0x5a);
    a.bind(join);
    a.store_reg(MemSize::B, 7, 2, 2);
    a.mov64_imm(0, 3); // XDP_TX
    a.exit();
    Program::from_insns(a.into_insns())
}

/// A write-only map program: key and value come straight from the packet,
/// `bpf_map_update_elem` stores them. No reads of the map means no FEB
/// and no WAR delay — the write commits immediately, exercising the
/// undelayed map-write path.
fn map_write_program() -> Program {
    let mut a = Asm::new();
    a.load(MemSize::W, 7, 1, 0); // r7 = data
    a.load(MemSize::W, 2, 7, 0); // key = bytes 0..4
    a.store_reg(MemSize::W, 10, -8, 2);
    a.load(MemSize::Dw, 3, 7, 4); // value = bytes 4..12
    a.store_reg(MemSize::Dw, 10, -16, 3);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, -16);
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);
    a.mov64_imm(0, 2); // XDP_PASS
    a.exit();
    Program::new("mapwrite", a.into_insns(), vec![MapDef::new(0, "m", MapKind::Hash, 4, 8, 256)])
}

/// Warm `sim` with one batch of `packets`, then re-run the batch cycle by
/// cycle asserting every non-retiring `step()` performs zero heap calls.
/// (Retiring cycles legitimately hand the packet buffer to the outcome
/// queue, whose growth is not steady-state.)
fn assert_steady_state_alloc_free(sim: &mut PipelineSim, packets: &[Vec<u8>]) {
    let _exclusive = MEASURE.lock().unwrap();
    // Two warm-up batches: the first grows the long-lived buffers, the
    // second lets pooled snapshot boxes and recycled frames reach their
    // high-water capacities (a box recycled early in batch one can carry
    // a smaller read-set vector than the packet it backs in batch two).
    for _ in 0..2 {
        for p in packets {
            assert!(sim.enqueue(p.clone()));
        }
        sim.settle(100_000);
    }
    let warm = sim.counters().completed;
    assert_eq!(warm, 2 * packets.len() as u64);

    for p in packets {
        assert!(sim.enqueue(p.clone()));
    }
    let target = warm + packets.len() as u64;
    let mut checked = 0u64;
    while sim.counters().completed < target {
        let completed_before = sim.counters().completed;
        let before = allocs();
        sim.step();
        let delta = allocs() - before;
        if sim.counters().completed == completed_before {
            assert_eq!(
                delta,
                0,
                "cycle {}: non-retiring step allocated {} time(s)",
                sim.cycle(),
                delta
            );
            checked += 1;
        }
        assert!(sim.cycle() < 1_000_000, "pipeline wedged");
    }
    assert!(checked > 0, "expected to measure at least one non-retiring cycle");
}

#[test]
fn enabled_stage_fast_path_is_allocation_free() {
    let design = Compiler::new().compile(&alu_program()).expect("compiles");
    let packets: Vec<Vec<u8>> = (0..32)
        .map(|i| {
            let mut p = vec![0u8; 64];
            p[0] = i as u8;
            p[1] = (i * 7) as u8;
            p
        })
        .collect();
    for backend in [Backend::Interpreter, Backend::Compiled] {
        let mut sim =
            PipelineSim::with_options(&design, SimOptions { backend, ..SimOptions::default() });
        assert_eq!(sim.active_backend(), backend);
        assert_steady_state_alloc_free(&mut sim, &packets);
    }
}

#[test]
fn map_write_steps_are_allocation_free() {
    let design = Compiler::new().compile(&map_write_program()).expect("compiles");
    // Distinct 4-byte keys so no two in-flight packets collide (not that
    // a write-only program could flush — there is no FEB to trip). The
    // warm-up batch inserts all 64 keys (first-touch hash inserts
    // allocate by design); the measured batch hits existing slots only.
    let packets: Vec<Vec<u8>> = (0..64)
        .map(|i| {
            let mut p = vec![0u8; 64];
            p[..4].copy_from_slice(&(i as u32).to_le_bytes());
            p[4..12].copy_from_slice(&(i as u64 * 3).to_le_bytes());
            p
        })
        .collect();
    for backend in [Backend::Interpreter, Backend::Compiled] {
        let mut sim =
            PipelineSim::with_options(&design, SimOptions { backend, ..SimOptions::default() });
        assert_eq!(sim.active_backend(), backend);
        assert_steady_state_alloc_free(&mut sim, &packets);
        assert_eq!(sim.counters().flushes, 0, "write-only program never flushes");
    }
}

/// A session-tracking shape: look the key up, then update it. The lookup
/// leaves an unconfirmed-read record (pooled key + read-filter bit) and
/// the RAW window forces FEB checkpoints, so this covers the compiled
/// backend's full hot loop: fused lookup, snapshot pooling, WAR-delayed
/// writes and whole-frame recycling through `complete()`.
fn lookup_update_program() -> Program {
    let mut a = Asm::new();
    let skip = a.new_label();
    a.load(MemSize::W, 7, 1, 0); // r7 = data
    a.load(MemSize::W, 2, 7, 0); // key = bytes 0..4
    a.store_reg(MemSize::W, 10, -8, 2);
    a.load(MemSize::Dw, 3, 7, 4); // value = bytes 4..12
    a.store_reg(MemSize::Dw, 10, -16, 3);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.call(BPF_MAP_LOOKUP_ELEM);
    a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
    a.load(MemSize::Dw, 4, 0, 0); // touch the found value
    a.bind(skip);
    a.ld_map_fd(1, 0);
    a.mov64_reg(2, 10);
    a.alu64_imm(AluOp::Add, 2, -8);
    a.mov64_reg(3, 10);
    a.alu64_imm(AluOp::Add, 3, -16);
    a.mov64_imm(4, 0);
    a.call(BPF_MAP_UPDATE_ELEM);
    a.mov64_imm(0, 2); // XDP_PASS
    a.exit();
    Program::new("lkup", a.into_insns(), vec![MapDef::new(0, "m", MapKind::Hash, 4, 8, 256)])
}

#[test]
fn compiled_lookup_hot_loop_is_allocation_free() {
    let design = Compiler::new().compile(&lookup_update_program()).expect("compiles");
    let packets: Vec<Vec<u8>> = (0..64)
        .map(|i| {
            let mut p = vec![0u8; 64];
            p[..4].copy_from_slice(&(i as u32).to_le_bytes());
            p[4..12].copy_from_slice(&(i as u64 * 3).to_le_bytes());
            p
        })
        .collect();
    let mut sim = PipelineSim::with_options(
        &design,
        SimOptions { backend: Backend::Compiled, ..SimOptions::default() },
    );
    assert_eq!(sim.active_backend(), Backend::Compiled, "lookup program must lower");
    assert_steady_state_alloc_free(&mut sim, &packets);
    assert_eq!(sim.counters().flushes, 0, "distinct in-flight keys never collide");
}
