//! Integration: every evaluation program compiles into a hardware design
//! whose structure matches the paper's qualitative claims.

use ehdl::core::{resource, Compiler, Target};
use ehdl::programs::{dnat, leaky_bucket, toy_counter, App};

#[test]
fn all_apps_compile() {
    for app in App::ALL {
        let program = app.program();
        let design = Compiler::new().compile(&program).unwrap_or_else(|e| panic!("{app}: {e}"));
        assert!(design.stage_count() > 0, "{app}");
        assert!(!design.exit_stages().is_empty(), "{app}");
        println!(
            "{app:10} {:3} insns -> {:3} hw -> {:3} stages, ILP max {} avg {:.2}, {} FEB {} WAR {} atomics",
            design.stats.source_insns,
            design.stats.hw_insns,
            design.stage_count(),
            design.stats.ilp.max,
            design.stats.ilp.avg,
            design.hazards.febs.len(),
            design.hazards.war_buffers.len(),
            design.hazards.atomic_stages.len(),
        );
    }
}

#[test]
fn toy_counter_matches_figure8_shape() {
    let design = Compiler::new().compile(&toy_counter::program()).unwrap();
    // Figure 8: 20 stages for the running example; allow a band since our
    // clang-equivalent codegen differs slightly.
    let stages = design.stage_count();
    assert!((10..=32).contains(&stages), "stage count {stages}");
    // ILP is low (the program is control-heavy): max 2-3.
    assert!(design.stats.ilp.max <= 4);
    // Atomic counter handled by the atomic block, not by flushes.
    assert!(!design.hazards.atomic_stages.is_empty());
    assert!(design.hazards.febs.is_empty());
    // Stack usage pruned to the 4-byte lookup key (§4.4).
    let max_stack = design.prune.live_stack_bytes.iter().copied().max().unwrap();
    assert!(max_stack <= 8, "stack pruned to the key, got {max_stack}");
}

#[test]
fn stateful_apps_have_expected_hazard_structure() {
    // DNAT: lookup → update on the connection table ⇒ RAW FEB with a large
    // window (Table 3 reports L = 51), plus an atomic port allocator.
    let d = Compiler::new().compile(&dnat::program()).unwrap();
    assert!(!d.hazards.febs.is_empty(), "DNAT needs a FEB");
    assert!(d.hazards.max_raw_window().unwrap() >= 10);
    assert!(!d.hazards.atomic_stages.is_empty(), "port allocator is atomic");

    // Leaky bucket: non-atomizable read-modify-write ⇒ FEB.
    let d = Compiler::new().compile(&leaky_bucket::program()).unwrap();
    assert!(!d.hazards.febs.is_empty());
}

#[test]
fn resources_within_paper_band() {
    for app in App::ALL {
        let design = Compiler::new().compile(&app.program()).unwrap();
        let u = resource::estimate_with_shell(&design).utilization(Target::ALVEO_U50);
        println!(
            "{app:10} LUT {:.1}% FF {:.1}% BRAM {:.1}%",
            u.luts * 100.0,
            u.ffs * 100.0,
            u.brams * 100.0
        );
        assert!(
            (0.05..=0.16).contains(&u.luts),
            "{app}: LUT fraction {:.3} outside the 6.5-13.3% band (with margin)",
            u.luts
        );
        assert!(u.ffs < 0.30, "{app}");
        assert!(u.brams < 0.45, "{app}");
    }
}

#[test]
fn vhdl_emits_for_all_apps() {
    for app in App::ALL {
        let design = Compiler::new().compile(&app.program()).unwrap();
        let v = ehdl::core::vhdl::emit(&design);
        assert!(v.contains("entity"), "{app}");
        assert!(v.contains("architecture rtl"), "{app}");
        assert!(v.len() > 1000, "{app}: VHDL suspiciously short");
    }
}

#[test]
fn all_apps_pass_the_strict_verifier() {
    // The bundled programs are "what clang would emit": they must satisfy
    // the kernel-style definite-initialization check, including the
    // helper-call r1-r5 clobber rule.
    use ehdl::ebpf::verifier::check_initialized;
    for app in App::ALL {
        check_initialized(&app.program()).unwrap_or_else(|e| panic!("{app}: {e}"));
    }
    check_initialized(&toy_counter::program()).unwrap();
    check_initialized(&leaky_bucket::program()).unwrap();
}

#[test]
fn all_apps_roundtrip_through_elf_objects() {
    // The toolchain interface: every application serializes to a BPF ELF
    // object and loads back bit-identical; the loaded object compiles to
    // the same pipeline.
    use ehdl::ebpf::elf;
    for app in App::ALL {
        let program = app.program();
        let object = elf::write(&program);
        let loaded = elf::load(&object).unwrap_or_else(|e| panic!("{app}: {e}"));
        assert_eq!(loaded.insns, program.insns, "{app}");
        assert_eq!(loaded.maps.len(), program.maps.len(), "{app}");
        for (a, b) in loaded.maps.iter().zip(&program.maps) {
            assert_eq!(a.kind, b.kind, "{app}");
            assert_eq!(a.key_size, b.key_size, "{app}");
            assert_eq!(a.value_size, b.value_size, "{app}");
            assert_eq!(a.max_entries, b.max_entries, "{app}");
            assert_eq!(a.name, b.name, "{app}");
        }
        let d1 = Compiler::new().compile(&program).unwrap();
        let d2 = Compiler::new().compile(&loaded).unwrap();
        assert_eq!(d1.stage_count(), d2.stage_count(), "{app}");
    }
}
