//! Determinism and parallel-equivalence tests for the evaluation harness.
//!
//! The simulator's hot loop recycles checkpoint boxes, scratch write sets
//! and key buffers, and the evaluation paths fan out across threads
//! (`MultiNic::run`, `diff::compare_full`). None of that may change a
//! single observable bit: repeated runs must produce identical
//! [`SimOutcome`]s, [`SimCounters`] and map contents, and the threaded
//! paths must match their sequential lockstep reference exactly.

use ehdl::core::Compiler;
use ehdl::ebpf::vm::XdpAction;
use ehdl::hwsim::diff::compare_with;
use ehdl::hwsim::{
    rss_flow_hash, Backend, MultiNic, PipelineSim, ShardedNic, SharedMapOptions, SimCounters,
    SimOptions, Steering,
};
use ehdl::net::{IPPROTO_TCP, IPPROTO_UDP};
use ehdl::programs::App;
use ehdl_bench::{eval_packets, setup_app};

const TRACE_PACKETS: usize = 1_000;

fn opts() -> SimOptions {
    SimOptions { freeze_time_ns: Some(1000), ..Default::default() }
}

/// One retired packet: (seq, action, redirect ifindex, bytes, latency).
type OutcomeRow = (u64, XdpAction, Option<u32>, Vec<u8>, u64);
/// Sorted (key, value) entries of one map.
type MapEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Every observable of one simulated run, in comparable form.
#[derive(Debug, PartialEq)]
struct RunRecord {
    outcomes: Vec<OutcomeRow>,
    counters: SimCounters,
    cycles: u64,
    maps: Vec<(u32, MapEntries)>,
}

fn run_once(app: App, packets: &[Vec<u8>]) -> RunRecord {
    run_once_on(app, packets, Backend::Auto)
}

fn run_once_on(app: App, packets: &[Vec<u8>], backend: Backend) -> RunRecord {
    let program = app.program();
    let design = Compiler::new().compile(&program).expect("app compiles");
    let mut sim = PipelineSim::with_options(&design, SimOptions { backend, ..opts() });
    if backend != Backend::Auto {
        assert_eq!(sim.active_backend(), backend, "{} must honor the request", app.name());
    }
    setup_app(app, sim.maps_mut());
    for p in packets {
        sim.enqueue(p.clone());
    }
    sim.settle(50_000_000);
    let outcomes = sim
        .drain()
        .into_iter()
        .map(|o| (o.seq, o.action, o.redirect_ifindex, o.packet, o.latency_cycles))
        .collect();
    let maps = program
        .maps
        .iter()
        .map(|def| {
            let m = sim.maps().get(def.id).expect("map exists");
            let mut entries: Vec<_> = m.iter().map(|(_, k, v)| (k.to_vec(), v.to_vec())).collect();
            entries.sort();
            (def.id, entries)
        })
        .collect();
    RunRecord { outcomes, counters: *sim.counters(), cycles: sim.cycle(), maps }
}

/// Two runs of the same app over the same 1k-packet trace — including the
/// flush/replay machinery with its recycled checkpoints — agree on every
/// outcome byte, every counter, every map entry and the final cycle count.
#[test]
fn repeated_runs_are_bit_identical() {
    for app in App::ALL {
        let packets = eval_packets(app, TRACE_PACKETS);
        let first = run_once(app, &packets);
        let second = run_once(app, &packets);
        assert_eq!(first, second, "{} runs must be bit-identical", app.name());
    }
}

/// The threaded differential harness sees no divergence from the
/// sequential reference interpreter on the evaluation traces. (DNAT is
/// excluded here: its port-allocator skew under racing flows is expected
/// and covered by its own dedicated test.)
#[test]
fn diff_harness_clean_on_eval_traces() {
    for app in [App::Firewall, App::Router, App::Tunnel, App::Suricata] {
        let program = app.program();
        let design = Compiler::new().compile(&program).expect("app compiles");
        let packets = eval_packets(app, TRACE_PACKETS);
        let divs = compare_with(&program, &design, &packets, |m| setup_app(app, m));
        assert!(divs.is_empty(), "{}: {} divergences, first: {}", app.name(), divs.len(), divs[0]);
    }
}

/// `MultiNic::run` executes each pipeline on its own thread by replaying
/// the global arrival schedule; the result must equal stepping all
/// pipelines in lockstep on one thread.
#[test]
fn parallel_multinic_matches_lockstep_reference() {
    let designs = vec![
        Compiler::new().compile(&App::Firewall.program()).unwrap(),
        Compiler::new().compile(&App::Suricata.program()).unwrap(),
    ];
    let steering =
        Steering::ByIpProto { rules: vec![(IPPROTO_UDP, 0), (IPPROTO_TCP, 1)], default: 0 };
    let mut packets = eval_packets(App::Firewall, 400);
    packets.extend(eval_packets(App::Suricata, 400));

    // Threaded run.
    let mut nic = MultiNic::new(&designs, steering.clone(), opts());
    setup_app(App::Firewall, nic.sim_mut(0).maps_mut());
    setup_app(App::Suricata, nic.sim_mut(1).maps_mut());
    let report = nic.run(packets.clone());

    // Sequential lockstep reference.
    let mut sims: Vec<PipelineSim> =
        designs.iter().map(|d| PipelineSim::with_options(d, opts())).collect();
    setup_app(App::Firewall, sims[0].maps_mut());
    setup_app(App::Suricata, sims[1].maps_mut());
    let compiled = steering.compile();
    let mut steered = vec![0u64; 2];
    for pkt in &packets {
        let t = compiled.steer(pkt);
        steered[t] += 1;
        sims[t].enqueue(pkt.clone());
        for sim in &mut sims {
            sim.step();
        }
    }
    for sim in &mut sims {
        sim.settle(10_000_000);
    }

    assert_eq!(report.steered, steered);
    let mut reference = Vec::new();
    for (i, sim) in sims.iter_mut().enumerate() {
        for o in sim.drain() {
            reference.push((i, o.seq, o.action, o.packet, o.latency_cycles));
        }
    }
    let threaded: Vec<_> = report
        .outcomes
        .into_iter()
        .map(|(i, o)| (i, o.seq, o.action, o.packet, o.latency_cycles))
        .collect();
    assert_eq!(threaded, reference);
}

/// The compiled steering structures agree with a straight rule scan for
/// every byte value, including first-match priority on duplicate rules.
#[test]
fn compiled_steering_matches_rule_scan() {
    let by_proto =
        Steering::ByIpProto { rules: vec![(17, 1), (6, 2), (17, 3), (1, 0)], default: 4 };
    let compiled = by_proto.compile();
    for proto in 0..=255u8 {
        let mut pkt = vec![0u8; 64];
        pkt[23] = proto;
        let expected = match proto {
            17 => 1, // first rule wins, not (17, 3)
            6 => 2,
            1 => 0,
            _ => 4,
        };
        assert_eq!(compiled.steer(&pkt), expected, "proto {proto}");
    }

    let by_ether = Steering::ByEtherType {
        rules: vec![(0x0800, 0), (0x86dd, 1), (0x0800, 2), (0x0806, 3)],
        default: 5,
    };
    let compiled = by_ether.compile();
    for ty in [0x0800u16, 0x0806, 0x86dd, 0x1234, 0x0000, 0xffff] {
        let mut pkt = vec![0u8; 64];
        pkt[12..14].copy_from_slice(&ty.to_be_bytes());
        let expected = match ty {
            0x0800 => 0, // first rule wins, not (0x0800, 2)
            0x86dd => 1,
            0x0806 => 3,
            _ => 5,
        };
        assert_eq!(compiled.steer(&pkt), expected, "ethertype {ty:#06x}");
    }
    // Short packets steer to the default-equivalent entry (type 0).
    assert_eq!(compiled.steer(&[0u8; 4]), 5);
}

/// Swap an IPv4 packet's direction in place: source/destination address
/// and L4 ports exchange, everything else stays (Ether + option-less
/// IPv4 + UDP/TCP layout, as the evaluation traces use).
fn reverse_direction(pkt: &[u8]) -> Vec<u8> {
    let mut rev = pkt.to_vec();
    for i in 0..4 {
        rev.swap(26 + i, 30 + i);
    }
    for i in 0..2 {
        rev.swap(34 + i, 36 + i);
    }
    rev
}

/// RSS flow steering is a pure function of `(packet, seed)`: the same
/// seed and trace give the identical shard assignment on every compile
/// and every run, the symmetric hash maps both directions of a flow to
/// the same replica, and the seed actually matters.
#[test]
fn rss_assignment_is_seeded_symmetric_and_replayable() {
    let packets = eval_packets(App::Firewall, TRACE_PACKETS);
    let steering = Steering::RssFlowHash { replicas: (0..4).collect(), seed: 99 };
    let a = steering.compile();
    let b = steering.compile();
    let mut reseeded_differs = false;
    let reseeded = Steering::RssFlowHash { replicas: (0..4).collect(), seed: 100 }.compile();
    for pkt in &packets {
        let shard = a.steer(pkt);
        assert_eq!(shard, b.steer(pkt), "assignment must survive recompilation");
        assert_eq!(
            shard,
            (rss_flow_hash(pkt, 99) % 4) as usize,
            "compiled steering must equal the raw hash"
        );
        assert_eq!(
            shard,
            a.steer(&reverse_direction(pkt)),
            "both directions of a flow must land on the same replica"
        );
        reseeded_differs |= reseeded.steer(pkt) != shard;
    }
    assert!(reseeded_differs, "a different seed must move at least one flow");
}

/// A full sharded run — RSS steering, four replicas, the banked fabric
/// with a shared map and event logging — replays bit-identically: same
/// per-replica steering, same outcome bytes in the same global order,
/// same cycle count, fabric telemetry, event history and canonical
/// shared-map state. The realized per-packet assignment also matches the
/// raw hash prediction.
#[test]
fn sharded_runs_replay_bit_identically() {
    use ehdl::programs::simple_firewall;

    let design = Compiler::new().compile(&App::Firewall.program()).expect("compiles");
    let packets = eval_packets(App::Firewall, TRACE_PACKETS);
    let seed = 7;
    let run = || {
        let mut nic = ShardedNic::new(
            &design,
            4,
            seed,
            opts(),
            SharedMapOptions {
                shared_maps: vec![simple_firewall::STATS_MAP],
                log_events: true,
                ..Default::default()
            },
        );
        nic.setup_maps(|m| setup_app(App::Firewall, m));
        let report = nic.run(packets.clone());
        let outcomes: Vec<(usize, u64, OutcomeRow)> = report
            .outcomes
            .iter()
            .map(|(r, g, o)| {
                (*r, *g, (o.seq, o.action, o.redirect_ifindex, o.packet.clone(), o.latency_cycles))
            })
            .collect();
        let mut stats: MapEntries = nic
            .shared_store()
            .get(simple_firewall::STATS_MAP)
            .expect("stats map")
            .iter()
            .map(|(_, k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        stats.sort();
        (
            report.steered.clone(),
            report.completed.clone(),
            report.dropped.clone(),
            report.cycles,
            outcomes,
            report.fabric.clone(),
            report.events.clone(),
            stats,
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "sharded runs must be bit-identical");

    // The realized assignment is exactly the hash prediction.
    let compiled = Steering::RssFlowHash { replicas: (0..4).collect(), seed }.compile();
    assert_eq!(first.4.len(), packets.len(), "every packet completes");
    for (replica, global, _) in &first.4 {
        assert_eq!(
            *replica,
            compiled.steer(&packets[*global as usize]),
            "packet {global} must run on its RSS-assigned replica"
        );
    }
}

/// One seeded host-op/packet interleaving through the runtime, on the
/// requested stage engine, in comparable form.
fn host_ops_run(
    backend: Backend,
) -> (Vec<OutcomeRow>, Vec<ehdl::hwsim::HostCompletion>, SimCounters, u64, MapEntries) {
    use ehdl::hwsim::CtrlOptions;
    use ehdl::programs::simple_firewall;
    use ehdl::runtime::{Runtime, RuntimeOptions};
    use ehdl::traffic::{interleave_ops, ControlOpGen, FlowSet, OpMix, Popularity, Workload};

    let flows = FlowSet::udp(32, 81);
    let packets =
        Workload::new(flows.clone(), Popularity::Hot { p_hot: 0.6 }, 64, 82).packets(TRACE_PACKETS);
    let keys = flows.flows().iter().map(|f| f.to_key().to_vec()).collect();
    let mut gen = ControlOpGen::new(
        simple_firewall::SESSIONS_MAP,
        keys,
        8,
        OpMix::default(),
        Popularity::Hot { p_hot: 0.7 },
        83,
    );
    let schedule = interleave_ops(packets, &mut gen, 0.1, 84);

    let design = Compiler::new().compile(&simple_firewall::program()).expect("compiles");
    let mut rt = Runtime::new(
        &design,
        RuntimeOptions {
            sim: SimOptions { backend, ..opts() },
            ctrl: CtrlOptions { latency_cycles: 2, queue_depth: 1024 },
            ..Default::default()
        },
    );
    if backend != Backend::Auto {
        assert_eq!(rt.sim_mut().active_backend(), backend, "runtime must honor the request");
    }
    let report = rt.run_schedule(&schedule);
    let outcomes: Vec<OutcomeRow> = report
        .outcomes
        .into_iter()
        .map(|o| (o.seq, o.action, o.redirect_ifindex, o.packet, o.latency_cycles))
        .collect();
    let mut sessions: MapEntries = rt
        .maps()
        .get(simple_firewall::SESSIONS_MAP)
        .expect("sessions map")
        .iter()
        .map(|(_, k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    sessions.sort();
    (outcomes, report.completions, *rt.sim_mut().counters(), rt.total_cycles(), sessions)
}

/// A seeded interleaving of host control ops and packets through the
/// runtime — flushes from writes inside RAW windows included — replays
/// bit-identically: same outcomes, same completions (ids, payloads,
/// apply cycles), same counters, same final map state.
#[test]
fn interleaved_host_ops_are_bit_identical() {
    let first = host_ops_run(Backend::Auto);
    let second = host_ops_run(Backend::Auto);
    assert!(
        first.1.iter().any(|c| c.flushed_readers > 0) || first.2.host_op_flushes > 0,
        "trace should exercise host-write flushes to make the check meaningful"
    );
    assert_eq!(first, second, "host-op interleaving must replay bit-identically");
}

/// The compiled backend locksteps with the interpreter on every
/// evaluation app: same outcome bytes, same counters, same final map
/// state, same cycle count, over the full 1k-packet traces with their
/// flush/replay traffic.
#[test]
fn compiled_backend_locksteps_with_interpreter_on_all_apps() {
    for app in App::ALL {
        let packets = eval_packets(app, TRACE_PACKETS);
        let interp = run_once_on(app, &packets, Backend::Interpreter);
        let compiled = run_once_on(app, &packets, Backend::Compiled);
        assert_eq!(interp, compiled, "{}: backends must be bit-identical", app.name());
    }
}

/// The same seeded host-op interleaving — control-channel fences, forced
/// checkpoints, host-write flushes — is bit-identical across the two
/// stage engines, completions and apply cycles included.
#[test]
fn host_op_interleaving_locksteps_across_backends() {
    let interp = host_ops_run(Backend::Interpreter);
    let compiled = host_ops_run(Backend::Compiled);
    assert_eq!(interp, compiled, "host-op schedule must be backend-independent");
}

/// A seeded fault campaign (transients, stuck-ats, hangs, watchdog
/// recoveries) resolves identically under both stage engines: same
/// packet outcomes, same counters and map state, same fault statistics.
#[test]
fn fault_campaign_locksteps_across_backends() {
    use ehdl::hwsim::FaultConfig;

    let run = |backend: Backend| {
        let app = App::Firewall;
        let program = app.program();
        let design = Compiler::new().compile(&program).expect("app compiles");
        let mut sim = PipelineSim::with_options(&design, SimOptions { backend, ..opts() });
        assert_eq!(sim.active_backend(), backend, "campaign must run on the requested engine");
        setup_app(app, sim.maps_mut());
        sim.attach_faults(FaultConfig {
            seed: 7,
            rate: 0.01,
            stuck_fraction: 0.2,
            hang_fraction: 0.1,
            watchdog_timeout: 256,
            ..Default::default()
        });
        for p in eval_packets(app, TRACE_PACKETS) {
            sim.enqueue(p);
        }
        sim.settle(50_000_000);
        let outcomes: Vec<OutcomeRow> = sim
            .drain()
            .into_iter()
            .map(|o| (o.seq, o.action, o.redirect_ifindex, o.packet, o.latency_cycles))
            .collect();
        let stats = *sim.fault_engine().expect("engine attached").stats();
        (outcomes, *sim.counters(), sim.cycle(), stats)
    };

    let interp = run(Backend::Interpreter);
    let compiled = run(Backend::Compiled);
    assert!(interp.3.injected > 0, "campaign must actually inject faults");
    assert_eq!(interp, compiled, "fault campaign must be backend-independent");
}

/// An unlowerable plan feature under [`Backend::Auto`] falls back to the
/// interpreter *loudly* — typed error recorded, active backend reported —
/// and the fallback run matches a forced interpreter run bit-for-bit.
#[test]
fn unlowerable_plan_falls_back_cleanly_under_auto() {
    use ehdl::core::ir::HwInsn;
    use ehdl::core::LowerError;
    use ehdl::ebpf::helpers::BPF_FIB_LOOKUP;
    use ehdl::ebpf::insn::Instruction;

    // The verifier rejects unknown helpers at load time, so splice one
    // into an already-compiled design to model a future compiler feature
    // the executor has no specialization for.
    let mut design = Compiler::new().compile(&App::Firewall.program()).expect("compiles");
    let op = &mut design.stages[0].ops[0];
    op.insn = HwInsn::Simple(Instruction::Call { helper: BPF_FIB_LOOKUP });

    let run = |backend: Backend| {
        let mut sim = PipelineSim::with_options(&design, SimOptions { backend, ..opts() });
        setup_app(App::Firewall, sim.maps_mut());
        for p in eval_packets(App::Firewall, 200) {
            sim.enqueue(p);
        }
        sim.settle(10_000_000);
        let outcomes: Vec<OutcomeRow> = sim
            .drain()
            .into_iter()
            .map(|o| (o.seq, o.action, o.redirect_ifindex, o.packet, o.latency_cycles))
            .collect();
        let fell_back = sim.lower_error().cloned();
        (outcomes, *sim.counters(), sim.cycle(), sim.active_backend(), fell_back)
    };

    let auto = run(Backend::Auto);
    assert_eq!(auto.3, Backend::Interpreter, "auto must fall back");
    match auto.4 {
        Some(LowerError::UnsupportedHelper { helper, .. }) => {
            assert_eq!(helper, BPF_FIB_LOOKUP);
        }
        other => panic!("expected a typed UnsupportedHelper fallback, got {other:?}"),
    }
    let forced = run(Backend::Interpreter);
    assert_eq!(
        (&auto.0, &auto.1, auto.2),
        (&forced.0, &forced.1, forced.2),
        "fallback run must match the forced interpreter bit-for-bit"
    );
}
