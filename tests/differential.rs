//! Differential tests: every evaluation program's compiled pipeline must
//! behave exactly like the reference VM on realistic traffic — including
//! under data hazards (same-flow bursts) where the Flush Evaluation Blocks
//! and write buffers do their work.

use ehdl::core::{Compiler, CompilerOptions};
use ehdl::ebpf::vm::XdpAction;
use ehdl::hwsim::diff::{assert_equivalent_with, compare_with};
use ehdl::hwsim::{PipelineSim, SimOptions};
use ehdl::net::{FiveTuple, IPPROTO_UDP};
use ehdl::programs::{dnat, leaky_bucket, router, simple_firewall, suricata, toy_counter, tunnel};
use ehdl::traffic::{build_flow_packet, FlowSet, Popularity, Workload};

fn mixed_traffic(n: usize, seed: u64) -> Vec<Vec<u8>> {
    // Mostly UDP flows, plus a sprinkle of short/odd packets.
    let mut wl = Workload::new(FlowSet::udp(32, seed), Popularity::Zipf { alpha: 1.0 }, 64, seed);
    let mut out: Vec<Vec<u8>> = wl.packets(n);
    out.push(vec![0; 12]); // runt
    let mut arp = vec![0u8; 64];
    arp[12] = 0x08;
    arp[13] = 0x06;
    out.push(arp);
    out
}

#[test]
fn toy_counter_equivalent() {
    assert_equivalent_with(
        &toy_counter::program(),
        CompilerOptions::default(),
        &mixed_traffic(200, 11),
        |_| {},
    );
}

#[test]
fn firewall_equivalent_including_same_flow_bursts() {
    // Zipf over few flows maximizes same-flow adjacency → FEB flushes.
    let mut packets = mixed_traffic(300, 22);
    // A burst of one flow back-to-back: the worst case for the session
    // table's lookup→update window.
    let f = FiveTuple {
        saddr: [10, 0, 0, 9],
        daddr: [192, 168, 1, 1],
        sport: 777,
        dport: 53,
        proto: IPPROTO_UDP,
    };
    for _ in 0..24 {
        packets.push(build_flow_packet(&f, [2; 6], [3; 6], 64));
    }
    assert_equivalent_with(
        &simple_firewall::program(),
        CompilerOptions::default(),
        &packets,
        |_| {},
    );
}

#[test]
fn router_equivalent_with_host_routes() {
    let packets = mixed_traffic(250, 33);
    assert_equivalent_with(&router::program(), CompilerOptions::default(), &packets, |maps| {
        router::install_route(maps, [0, 0, 0, 0], 0, 1, [0xaa; 6], [0x02; 6]);
        router::install_route(maps, [192, 168, 0, 0], 16, 2, [0xbb; 6], [0x02; 6]);
        router::install_route(maps, [192, 168, 7, 0], 24, 3, [0xcc; 6], [0x02; 6]);
    });
}

#[test]
fn tunnel_equivalent_with_endpoints() {
    let flows = FlowSet::udp(16, 44);
    let mut packets: Vec<Vec<u8>> =
        Workload::new(flows.clone(), Popularity::Uniform, 96, 44).packets(200);
    packets.extend(mixed_traffic(20, 45));
    let endpoints: Vec<[u8; 4]> = flows.flows().iter().take(8).map(|f| f.daddr).collect();
    assert_equivalent_with(&tunnel::program(), CompilerOptions::default(), &packets, move |maps| {
        for (i, daddr) in endpoints.iter().enumerate() {
            tunnel::install_endpoint(
                maps,
                *daddr,
                [172, 16, 0, 1],
                [172, 16, (i as u8) + 1, 2],
                [0xaa, 0, 0, 0, 0, i as u8],
                [0xbb; 6],
            );
        }
    });
}

#[test]
fn dnat_equivalent_including_binding_races() {
    // New flows arriving back-to-back race on the connection table: the
    // second packet of a flow must not allocate a second binding. This is
    // exactly the DNAT hazard of Table 3 (L = 51).
    let mut packets = Vec::new();
    for flow_idx in 0..12u16 {
        let f = FiveTuple {
            saddr: [10, 0, 1, flow_idx as u8],
            daddr: [8, 8, 8, 8],
            sport: 1000 + flow_idx,
            dport: 53,
            proto: IPPROTO_UDP,
        };
        // Back-to-back packets of the same brand-new flow.
        for _ in 0..4 {
            packets.push(build_flow_packet(&f, [2; 6], [3; 6], 64));
        }
    }
    packets.extend(mixed_traffic(100, 55));

    // Under racing new flows, a discarded first attempt's fetch-and-add on
    // the port allocator is not replayed — the hardware simply skips a
    // port, exactly as the paper's design would. Absolute port numbers may
    // therefore differ from the sequential reference; what must hold is
    // the NAT *invariant*: same flow → same stable port, distinct flows →
    // distinct ports, all in range, all other bytes identical.
    let program = dnat::program();
    let design = Compiler::new().compile(&program).unwrap();

    let mut vm = ehdl::ebpf::vm::Vm::new(&program);
    vm.set_time_ns(1000);
    let mut vm_actions = Vec::new();
    let mut vm_bytes = Vec::new();
    for p in &packets {
        let mut b = p.clone();
        let out = vm.run(&mut b, 0).expect("vm runs dnat");
        vm_actions.push(out.action);
        vm_bytes.push(b);
    }

    let mut sim = PipelineSim::with_options(
        &design,
        SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
    );
    for p in &packets {
        sim.enqueue(p.clone());
    }
    sim.settle(10_000_000);
    let outs = sim.drain();
    assert_eq!(outs.len(), packets.len());

    let mut flow_port: std::collections::HashMap<FiveTuple, u16> = Default::default();
    for (i, o) in outs.iter().enumerate() {
        assert_eq!(o.action, vm_actions[i], "packet {i}");
        if o.action != XdpAction::Tx {
            continue;
        }
        // Everything but the translated source port (bytes 34-35) matches
        // the sequential reference byte-for-byte.
        assert_eq!(o.packet.len(), vm_bytes[i].len(), "packet {i}");
        for (off, (a, b)) in o.packet.iter().zip(&vm_bytes[i]).enumerate() {
            if off == 34 || off == 35 {
                continue;
            }
            assert_eq!(a, b, "packet {i} byte {off}");
        }
        let orig = FiveTuple::parse(&packets[i]).expect("udp traffic");
        let port = u16::from_be_bytes([o.packet[34], o.packet[35]]);
        assert!(
            (dnat::PORT_BASE..dnat::PORT_BASE + dnat::PORT_RANGE).contains(&port),
            "packet {i}: port {port} out of range"
        );
        match flow_port.entry(orig) {
            std::collections::hash_map::Entry::Occupied(e) => {
                assert_eq!(*e.get(), port, "packet {i}: flow changed port");
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(port);
            }
        }
    }
    // Distinct flows must hold distinct ports.
    let mut ports: Vec<u16> = flow_port.values().copied().collect();
    ports.sort_unstable();
    ports.dedup();
    assert_eq!(ports.len(), flow_port.len(), "port collision across flows");
    // Statistics must agree exactly (bindings happen once per flow in both).
    assert_eq!(dnat::read_stats(vm.maps()), dnat::read_stats(sim.maps()));
}

#[test]
fn suricata_equivalent_with_rules() {
    let flows = FlowSet::tcp(24, 66);
    let blocked: Vec<FiveTuple> = flows.flows().iter().take(6).copied().collect();
    let mut packets: Vec<Vec<u8>> =
        Workload::new(flows, Popularity::Zipf { alpha: 1.0 }, 64, 66).packets(300);
    packets.extend(mixed_traffic(30, 67));
    assert_equivalent_with(
        &suricata::program(),
        CompilerOptions::default(),
        &packets,
        move |maps| {
            for f in &blocked {
                suricata::install_rule(maps, f);
            }
        },
    );
}

#[test]
fn leaky_bucket_equivalent_under_flush_pressure() {
    // All packets from a handful of flows: constant RAW hazards.
    let mut packets = Vec::new();
    for i in 0..150 {
        let f = FiveTuple {
            saddr: [10, 0, 0, (i % 3) as u8],
            daddr: [192, 168, 1, 1],
            sport: 5000 + (i % 3) as u16,
            dport: 443,
            proto: IPPROTO_UDP,
        };
        packets.push(build_flow_packet(&f, [2; 6], [3; 6], 64));
    }
    assert_equivalent_with(&leaky_bucket::program(), CompilerOptions::default(), &packets, |_| {});
}

#[test]
fn flushes_actually_happen_and_stay_transparent() {
    // Sanity: the leaky-bucket run above must actually exercise flushing.
    let program = leaky_bucket::program();
    let design = Compiler::new().compile(&program).unwrap();
    let mut sim = PipelineSim::with_options(
        &design,
        SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
    );
    let f = FiveTuple {
        saddr: [10, 0, 0, 1],
        daddr: [192, 168, 1, 1],
        sport: 5000,
        dport: 443,
        proto: IPPROTO_UDP,
    };
    for _ in 0..50 {
        sim.enqueue(build_flow_packet(&f, [2; 6], [3; 6], 64));
    }
    sim.settle(1_000_000);
    assert!(sim.counters().flushes > 0, "single-flow burst must flush");
    assert_eq!(sim.counters().completed, 50);
}

#[test]
fn ablation_options_stay_equivalent() {
    // Every ablation configuration must preserve semantics.
    let program = simple_firewall::program();
    let packets = mixed_traffic(120, 77);
    for opts in [
        CompilerOptions { fusion: false, ..Default::default() },
        CompilerOptions { parallelize: false, ..Default::default() },
        CompilerOptions { prune: false, ..Default::default() },
        CompilerOptions { elide_bounds_checks: false, ..Default::default() },
        CompilerOptions { dce: false, ..Default::default() },
        CompilerOptions { hazard_opt: false, ..Default::default() },
        CompilerOptions { frame_size: 32, ..Default::default() },
        CompilerOptions { frame_size: 128, ..Default::default() },
    ] {
        assert_equivalent_with(&program, opts, &packets, |_| {});
    }
}

#[test]
fn actions_distribute_as_expected() {
    // Cross-check a run's verdict mix against the VM, in aggregate.
    let program = simple_firewall::program();
    let design = Compiler::new().compile(&program).unwrap();
    let packets = mixed_traffic(200, 88);
    let divs = compare_with(&program, &design, &packets, |_| {});
    assert!(divs.is_empty(), "{divs:?}");
    let mut sim = PipelineSim::with_options(
        &design,
        SimOptions { freeze_time_ns: Some(1000), ..Default::default() },
    );
    for p in &packets {
        sim.enqueue(p.clone());
    }
    sim.settle(10_000_000);
    let outs = sim.drain();
    let tx = outs.iter().filter(|o| o.action == XdpAction::Tx).count();
    let drop = outs.iter().filter(|o| o.action == XdpAction::Drop).count();
    assert!(tx > 0 && drop > 0, "traffic should exercise both verdicts");
}

#[test]
fn pruning_is_dynamically_sound_under_poisoning() {
    // Clobber every register and stack byte the pruning analysis declares
    // dead, at every stage boundary — the hardware equivalent of not
    // wiring them. Behaviour must be unchanged for every application.
    use ehdl::hwsim::diff::compare_full;
    use ehdl::programs::{leaky_bucket, App};

    let poison =
        SimOptions { freeze_time_ns: Some(1000), poison_dead_state: true, ..Default::default() };
    for app in App::ALL {
        if app == App::Dnat {
            continue; // port numbers legitimately diverge under races
        }
        let program = app.program();
        let design = Compiler::new().compile(&program).unwrap();
        let packets = mixed_traffic(150, 99);
        let divs = compare_full(
            &program,
            &design,
            &packets,
            |maps| {
                if app == App::Router {
                    router::install_route(maps, [0, 0, 0, 0], 0, 1, [0xaa; 6], [0x02; 6]);
                }
                if app == App::Tunnel {
                    tunnel::install_endpoint(
                        maps,
                        [192, 168, 0, 1],
                        [1; 4],
                        [2; 4],
                        [3; 6],
                        [4; 6],
                    );
                }
                if app == App::Suricata {
                    suricata::install_rule(
                        maps,
                        &FiveTuple { saddr: [9; 4], daddr: [8; 4], sport: 1, dport: 2, proto: 17 },
                    );
                }
            },
            &[],
            poison,
        );
        assert!(divs.is_empty(), "{app} diverges under dead-state poisoning: {divs:?}");
    }
    // The leaky bucket exercises poisoning under flush replays as well.
    let program = leaky_bucket::program();
    let design = Compiler::new().compile(&program).unwrap();
    let mut packets = Vec::new();
    for i in 0..120 {
        let f = FiveTuple {
            saddr: [10, 0, 0, (i % 2) as u8],
            daddr: [192, 168, 1, 1],
            sport: 7000,
            dport: 443,
            proto: IPPROTO_UDP,
        };
        packets.push(build_flow_packet(&f, [2; 6], [3; 6], 64));
    }
    let divs = compare_full(&program, &design, &packets, |_| {}, &[], poison);
    assert!(divs.is_empty(), "leaky bucket diverges under poisoning: {divs:?}");
}

#[test]
fn exotic_atomics_equivalent() {
    // xchg, cmpxchg and fetching and/or/xor/add on a map value, across
    // many packets — the atomic block must match the VM bit-for-bit.
    use ehdl::ebpf::asm::Asm;
    use ehdl::ebpf::helpers::BPF_MAP_LOOKUP_ELEM;
    use ehdl::ebpf::maps::{MapDef, MapKind};
    use ehdl::ebpf::opcode::{AluOp, AtomicOp, JmpOp, MemSize};
    use ehdl::ebpf::Program;
    use ehdl::hwsim::diff::assert_equivalent_with;

    let ops: [AtomicOp; 6] = [
        AtomicOp::Add { fetch: true },
        AtomicOp::Or { fetch: true },
        AtomicOp::And { fetch: true },
        AtomicOp::Xor { fetch: true },
        AtomicOp::Xchg,
        AtomicOp::Cmpxchg,
    ];
    for op in ops {
        let mut a = Asm::new();
        let miss = a.new_label();
        a.mov64_reg(6, 1);
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::W, 8, 1, 4);
        a.mov64_reg(1, 7);
        a.alu64_imm(AluOp::Add, 1, 16);
        a.jmp_reg(JmpOp::Jgt, 1, 8, miss);
        // key 0 -> counter cell
        a.mov64_imm(1, 0);
        a.store_reg(MemSize::W, 10, -4, 1);
        a.ld_map_fd(1, 0);
        a.mov64_reg(2, 10);
        a.alu64_imm(AluOp::Add, 2, -4);
        a.call(BPF_MAP_LOOKUP_ELEM);
        a.jmp_imm(JmpOp::Jeq, 0, 0, miss);
        a.mov64_reg(9, 0);
        // operand derived from the packet so packets differ
        a.load(MemSize::B, 2, 7, 5);
        a.alu64_imm(AluOp::Or, 2, 1);
        if op == AtomicOp::Cmpxchg {
            // r0 is the expected value for cmpxchg; vary it too.
            a.mov64_imm(0, 0);
        }
        a.atomic(op, MemSize::Dw, 9, 0, 2);
        // Fold the fetched old value into the verdict.
        let fetched = if op == AtomicOp::Cmpxchg { 0 } else { 2 };
        a.mov64_reg(0, fetched);
        a.alu64_imm(AluOp::And, 0, 1);
        a.alu64_imm(AluOp::Add, 0, 2);
        a.exit();
        a.bind(miss);
        a.mov64_imm(0, 1);
        a.exit();
        let program = Program::new(
            "atomics",
            a.into_insns(),
            vec![MapDef::new(0, "cell", MapKind::Array, 4, 8, 1)],
        );
        let packets: Vec<Vec<u8>> = (0..40u8)
            .map(|i| {
                let mut p = vec![0u8; 64];
                p[5] = i.wrapping_mul(37);
                p
            })
            .collect();
        assert_equivalent_with(&program, CompilerOptions::default(), &packets, |_| {});
    }
}
