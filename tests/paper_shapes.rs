//! Paper-shape assertions: the qualitative claims of §5 must hold on
//! (scaled-down) reruns of the evaluation harness. These are the same code
//! paths as `cargo bench`, with smaller packet counts so they fit in the
//! test suite.

use ehdl::programs::App;
use ehdl_bench as bench;

const PKTS: usize = 6_000;

#[test]
fn fig9a_shape_line_rate_and_orderings() {
    for row in bench::fig9a(PKTS) {
        // eHDL holds 100GbE line rate at 64B on every app.
        assert!(
            (140.0..155.0).contains(&row.ehdl_mpps),
            "{}: eHDL {:.1} Mpps",
            row.app,
            row.ehdl_mpps
        );
        // hXDP in the paper's 0.9-5.4 band; 10-100x below eHDL.
        assert!((0.9..5.4).contains(&row.hxdp_mpps), "{}: hXDP {:.1} Mpps", row.app, row.hxdp_mpps);
        assert!(row.ehdl_mpps / row.hxdp_mpps >= 10.0, "{}", row.app);
        // Bf2 1c comparable-or-faster than hXDP; 4c roughly linear.
        assert!(row.bf2_1c_mpps >= row.hxdp_mpps * 0.8, "{}", row.app);
        assert!((3.0..4.01).contains(&(row.bf2_4c_mpps / row.bf2_1c_mpps)), "{}", row.app);
        // SDNet: line rate everywhere except DNAT.
        match row.app {
            App::Dnat => assert!(row.sdnet_mpps.is_none(), "DNAT must be N/A on SDNet"),
            _ => assert!(row.sdnet_mpps.is_some(), "{}", row.app),
        }
    }
}

#[test]
fn fig9b_shape_about_one_microsecond() {
    for row in bench::fig9b(2_000) {
        assert!((500.0..1500.0).contains(&row.ehdl_ns), "{}: eHDL {:.0} ns", row.app, row.ehdl_ns);
        assert!((600.0..2000.0).contains(&row.hxdp_ns), "{}: hXDP {:.0} ns", row.app, row.hxdp_ns);
    }
}

#[test]
fn fig9c_shape_optimizers_shrink_programs() {
    for row in bench::fig9c() {
        assert!(row.hxdp_instrs < row.original_instrs, "{}", row.app);
        assert!(row.stages <= row.hxdp_instrs, "{}", row.app);
        assert!(row.stages >= row.original_instrs / 4, "{}: implausibly few stages", row.app);
    }
}

#[test]
fn fig10_shape_resource_orderings() {
    for row in bench::fig10() {
        // Paper band (6.5-13.3% LUTs) with a little slack.
        assert!((0.06..0.14).contains(&row.ehdl.luts), "{}: {:.3}", row.app, row.ehdl.luts);
        // Comparable to hXDP (within 1.5x either way).
        let ratio = row.ehdl.luts / row.hxdp.luts;
        assert!((0.5..1.5).contains(&ratio), "{}: vs hXDP {ratio:.2}", row.app);
        // SDNet 2-4x more expensive where expressible.
        if let Some(sdnet) = row.sdnet {
            let r = sdnet.luts / row.ehdl.luts;
            assert!((1.8..4.5).contains(&r), "{}: vs SDNet {r:.2}", row.app);
        }
    }
}

#[test]
fn tab4_matches_paper_points() {
    let rows = bench::tab4(50_000);
    let paper = [(2usize, 61.0f64), (3, 21.0), (4, 11.0), (5, 7.0)];
    for ((l, _pf, k), (pl, pk)) in rows.iter().zip(paper) {
        assert_eq!(*l, pl);
        assert!((k - pk).abs() / pk < 0.45, "L={l}: K_max {k:.0} vs paper {pk}");
    }
}

#[test]
fn tab5_ilp_in_band() {
    for (app, max, avg) in bench::tab5() {
        assert!((1.1..2.5).contains(&avg), "{app}: avg ILP {avg:.2}");
        assert!((2..=8).contains(&max), "{app}: max ILP {max}");
    }
}

#[test]
fn sec54_pruning_shape() {
    let (pruned, unpruned) = bench::sec54();
    assert!(unpruned.luts as f64 >= pruned.luts as f64 * 1.2);
    assert!(unpruned.ffs as f64 >= pruned.ffs as f64 * 1.3);
    assert!(unpruned.brams >= pruned.brams);
}

#[test]
fn tab2_shape_no_loss_under_traces() {
    // Scaled-down trace replay: zero loss, flushing present but amortized.
    let trace = ehdl::traffic::caida_like(12_000, 5);
    let row = bench::run_trace(&trace);
    assert_eq!(row.lost, 0, "no packets lost at 100Gbps replay");
    assert!(row.flushes_per_sec > 0.0, "realistic traces do flush sometimes");
}
