//! Randomized differential testing: randomly generated XDP programs —
//! ALU chains, packet reads and writes, stack spills, forward branches and
//! atomic map counters — must behave identically on the reference VM and
//! on the compiled hardware pipeline, for every compiler configuration.
//!
//! Formerly proptest-based; rewritten as deterministic seeded campaigns so
//! the workspace builds without crates.io access. The two historical
//! proptest regression cases are preserved verbatim as explicit tests.

use ehdl::core::CompilerOptions;
use ehdl::ebpf::asm::Asm;
use ehdl::ebpf::helpers::BPF_MAP_LOOKUP_ELEM;
use ehdl::ebpf::maps::{MapDef, MapKind};
use ehdl::ebpf::opcode::{AluOp, JmpOp, MemSize};
use ehdl::ebpf::Program;
use ehdl::hwsim::diff::assert_equivalent_with;
use ehdl_rng::Rng;

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Mod,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Lsh,
    AluOp::Arsh,
];

const JMP_OPS: [JmpOp; 6] =
    [JmpOp::Jeq, JmpOp::Jne, JmpOp::Jgt, JmpOp::Jlt, JmpOp::Jsge, JmpOp::Jsle];

/// One straight-line random operation. Registers r2-r5 are scratch; r7 is
/// the packet pointer from the prologue.
#[derive(Debug, Clone, Copy)]
enum Op {
    MovImm(u8, i32),
    AluImm(usize, u8, i32),
    AluReg(usize, u8, u8),
    PktLoad(u8, u8, u8),  // size-sel, dst, offset (0..56)
    PktStore(u8, u8, u8), // size-sel, src, offset
    StackStore(u8, u8),   // src, slot (0..8 -> fp-8*(slot+1))
    StackLoad(u8, u8),    // dst, slot
    Endian(u8, u8),       // dst, width-sel
}

fn rand_op(rng: &mut Rng) -> Op {
    let scratch = |rng: &mut Rng| 2 + rng.gen_index(4) as u8;
    match rng.gen_index(8) {
        0 => Op::MovImm(scratch(rng), rng.gen_i32()),
        1 => Op::AluImm(rng.gen_index(ALU_OPS.len()), scratch(rng), rng.gen_i32()),
        2 => Op::AluReg(rng.gen_index(ALU_OPS.len()), scratch(rng), scratch(rng)),
        3 => Op::PktLoad(rng.gen_index(3) as u8, scratch(rng), rng.gen_index(56) as u8),
        4 => Op::PktStore(rng.gen_index(3) as u8, scratch(rng), rng.gen_index(56) as u8),
        5 => Op::StackStore(scratch(rng), rng.gen_index(8) as u8),
        6 => Op::StackLoad(scratch(rng), rng.gen_index(8) as u8),
        _ => Op::Endian(scratch(rng), rng.gen_index(3) as u8),
    }
}

fn rand_ops(rng: &mut Rng, max_len: usize) -> Vec<Op> {
    let n = rng.gen_index(max_len);
    (0..n).map(|_| rand_op(rng)).collect()
}

fn emit_ops(a: &mut Asm, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::MovImm(r, i) => {
                a.mov64_imm(r, i);
            }
            Op::AluImm(o, r, i) => {
                a.alu64_imm(ALU_OPS[o], r, i);
            }
            Op::AluReg(o, d, s) => {
                a.alu64_reg(ALU_OPS[o], d, s);
            }
            Op::PktLoad(sz, d, off) => {
                let size = [MemSize::B, MemSize::H, MemSize::W][sz as usize];
                a.load(size, d, 7, i16::from(off));
            }
            Op::PktStore(sz, s, off) => {
                let size = [MemSize::B, MemSize::H, MemSize::W][sz as usize];
                a.store_reg(size, 7, i16::from(off), s);
            }
            Op::StackStore(r, slot) => {
                a.store_reg(MemSize::Dw, 10, -8 * (i16::from(slot) + 1), r);
            }
            Op::StackLoad(r, slot) => {
                a.load(MemSize::Dw, r, 10, -8 * (i16::from(slot) + 1));
            }
            Op::Endian(r, w) => {
                a.to_be(r, [16, 32, 64][w as usize]);
            }
        }
    }
}

/// A random structured program: prologue + bounds check, a few ops, an
/// if/else on a random comparison (optionally with a counter-map bump in
/// one arm), a join block, and a data-dependent verdict.
#[derive(Debug, Clone)]
struct RandProgram {
    pre: Vec<Op>,
    cond: (usize, u8, i32),
    then_ops: Vec<Op>,
    else_ops: Vec<Op>,
    post: Vec<Op>,
    bump_in_then: bool,
    verdict_reg: u8,
}

fn rand_program(rng: &mut Rng) -> RandProgram {
    RandProgram {
        pre: rand_ops(rng, 14),
        cond: (
            rng.gen_index(JMP_OPS.len()),
            2 + rng.gen_index(4) as u8,
            rng.gen_range_i64(-4, 59) as i32,
        ),
        then_ops: rand_ops(rng, 10),
        else_ops: rand_ops(rng, 10),
        post: rand_ops(rng, 10),
        bump_in_then: rng.gen_bool(),
        verdict_reg: 2 + rng.gen_index(4) as u8,
    }
}

fn build(rp: &RandProgram) -> Program {
    let mut a = Asm::new();
    let drop = a.new_label();
    let els = a.new_label();
    let join = a.new_label();

    // Prologue: r6=ctx, r7=data, r8=data_end; check 60 bytes.
    a.mov64_reg(6, 1);
    a.load(MemSize::W, 7, 1, 0);
    a.load(MemSize::W, 8, 1, 4);
    a.mov64_reg(1, 7);
    a.alu64_imm(AluOp::Add, 1, 60);
    a.jmp_reg(JmpOp::Jgt, 1, 8, drop);
    // Deterministic scratch state.
    for r in 2..6 {
        a.mov64_imm(r, i32::from(r) * 1000);
    }

    emit_ops(&mut a, &rp.pre);
    let (jop, jreg, jimm) = rp.cond;
    a.jmp_imm(JMP_OPS[jop], jreg, jimm, els);
    emit_ops(&mut a, &rp.then_ops);
    if rp.bump_in_then {
        // Counter bump: lookup key0, atomic add (global-state pattern).
        let skip = a.new_label();
        a.mov64_imm(1, 0);
        a.store_reg(MemSize::W, 10, -68, 1);
        a.ld_map_fd(1, 0);
        a.mov64_reg(2, 10);
        a.alu64_imm(AluOp::Add, 2, -68);
        a.call(BPF_MAP_LOOKUP_ELEM);
        a.jmp_imm(JmpOp::Jeq, 0, 0, skip);
        a.mov64_imm(2, 1);
        a.atomic_add64(0, 0, 2);
        a.bind(skip);
    }
    a.jmp(join);
    a.bind(els);
    emit_ops(&mut a, &rp.else_ops);
    a.bind(join);
    emit_ops(&mut a, &rp.post);

    // Data-dependent verdict: 1..3 from a scratch register.
    a.mov64_reg(0, rp.verdict_reg);
    a.alu64_imm(AluOp::And, 0, 1);
    a.alu64_imm(AluOp::Add, 0, 2); // PASS or TX
    a.exit();

    a.bind(drop);
    a.mov64_imm(0, 1);
    a.exit();

    Program::new(
        "prop_random",
        a.into_insns(),
        vec![MapDef::new(0, "ctr", MapKind::Array, 4, 8, 4)],
    )
}

fn packets(seed: u64, n: usize) -> Vec<Vec<u8>> {
    // Deterministic varied packets, including one runt.
    let mut out: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let mut p = vec![0u8; 64];
            for (j, b) in p.iter_mut().enumerate() {
                *b = (seed as usize + i * 31 + j * 7) as u8;
            }
            p
        })
        .collect();
    out.push(vec![0; 16]);
    out
}

/// Random branching programs are VM-equivalent under default options.
#[test]
fn random_programs_equivalent() {
    let mut rng = Rng::seed_from_u64(0xd1ff);
    for _ in 0..48 {
        let rp = rand_program(&mut rng);
        let seed = rng.next_u64();
        let program = build(&rp);
        assert_equivalent_with(&program, CompilerOptions::default(), &packets(seed, 24), |_| {});
    }
}

/// ... and under every ablation configuration.
#[test]
fn random_programs_equivalent_under_ablations() {
    let mut rng = Rng::seed_from_u64(0xab1a);
    for _ in 0..48 {
        let rp = rand_program(&mut rng);
        let seed = rng.next_u64();
        let program = build(&rp);
        let pkts = packets(seed, 12);
        for opts in [
            CompilerOptions { fusion: false, dce: false, ..Default::default() },
            CompilerOptions { parallelize: false, ..Default::default() },
            CompilerOptions { prune: false, ..Default::default() },
            CompilerOptions { elide_bounds_checks: false, ..Default::default() },
            CompilerOptions { hazard_opt: false, ..Default::default() },
            CompilerOptions { frame_size: 32, ..Default::default() },
        ] {
            assert_equivalent_with(&program, opts, &pkts, |_| {});
        }
    }
}

/// Hazard-window minimization is semantics-preserving on every evaluation
/// app: with `hazard_opt` on and off, the compiled pipeline's actions,
/// packet bytes, map contents and counters match the reference VM over
/// new-flow-churn Zipf workloads (the trace shape that actually triggers
/// flushes). DNAT uses the differential suite's relaxed NAT-invariant
/// comparison via `ehdl_bench::flush_opt::outcomes_identical`.
#[test]
fn hazard_opt_apps_equivalent_under_zipf_churn() {
    use ehdl::core::Compiler;
    use ehdl::programs::App;
    use ehdl_bench::flush_opt::{churn_packets, outcomes_identical};

    for app in App::ALL {
        let program = app.program();
        for alpha in [0.5, 1.2] {
            let packets = churn_packets(app, 300, alpha, 1_200);
            for hazard_opt in [true, false] {
                let design =
                    Compiler::with_options(CompilerOptions { hazard_opt, ..Default::default() })
                        .compile(&program)
                        .expect("app compiles");
                assert!(
                    outcomes_identical(app, &program, &design, &packets, true),
                    "{} diverges from the VM (alpha={alpha}, hazard_opt={hazard_opt})",
                    app.name(),
                );
            }
        }
    }
}

/// Historical regression: a lone `to_be` on a scratch register before the
/// branch (from the proptest corpus; kept as an explicit deterministic case).
#[test]
fn regression_endian_before_branch() {
    let rp = RandProgram {
        pre: vec![Op::Endian(5, 2)],
        cond: (3, 2, 0),
        then_ops: vec![],
        else_ops: vec![],
        post: vec![],
        bump_in_then: false,
        verdict_reg: 2,
    };
    let program = build(&rp);
    assert_equivalent_with(&program, CompilerOptions::default(), &packets(0, 24), |_| {});
}

/// Historical regression: a `to_be` in the else arm only (from the proptest
/// corpus; kept as an explicit deterministic case).
#[test]
fn regression_endian_in_else_arm() {
    let rp = RandProgram {
        pre: vec![],
        cond: (1, 2, 0),
        then_ops: vec![],
        else_ops: vec![Op::Endian(3, 0)],
        post: vec![],
        bump_in_then: false,
        verdict_reg: 2,
    };
    let program = build(&rp);
    assert_equivalent_with(&program, CompilerOptions::default(), &packets(0, 24), |_| {});
}

/// Bounded loops: unrolled pipelines match the VM on loop programs too.
#[test]
fn loop_programs_equivalent() {
    for trip in [1i32, 3, 7, 19] {
        let mut a = Asm::new();
        let drop = a.new_label();
        let top = a.new_label();
        a.mov64_reg(6, 1);
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::W, 8, 1, 4);
        a.mov64_reg(1, 7);
        a.alu64_imm(AluOp::Add, 1, 40);
        a.jmp_reg(JmpOp::Jgt, 1, 8, drop);
        // Sum the first `trip` packet bytes in a bounded loop.
        a.mov64_imm(2, 0); // induction
        a.mov64_imm(3, 0); // accumulator
        a.bind(top);
        a.mov64_reg(4, 7);
        a.alu64_reg(AluOp::Add, 4, 2);
        a.load(MemSize::B, 5, 4, 0);
        a.alu64_reg(AluOp::Add, 3, 5);
        a.alu64_imm(AluOp::Add, 2, 1);
        a.jmp_imm(JmpOp::Jlt, 2, trip, top);
        a.mov64_reg(0, 3);
        a.alu64_imm(AluOp::And, 0, 1);
        a.alu64_imm(AluOp::Add, 0, 2);
        a.exit();
        a.bind(drop);
        a.mov64_imm(0, 1);
        a.exit();
        let program = Program::from_insns(a.into_insns());
        assert_equivalent_with(
            &program,
            CompilerOptions::default(),
            &packets(trip as u64, 16),
            |_| {},
        );
    }
}

/// Packet-geometry helpers: programs that grow the head and trim the tail
/// stay VM-equivalent (the packet bytes leaving the pipeline shrink/grow
/// exactly as the interpreter says).
#[test]
fn adjust_head_and_tail_equivalent() {
    use ehdl::ebpf::helpers::{BPF_XDP_ADJUST_HEAD, BPF_XDP_ADJUST_TAIL};
    for (head_delta, tail_delta) in [(-8i32, -16i32), (-4, 0), (0, -32), (8, -8)] {
        let mut a = Asm::new();
        let drop = a.new_label();
        a.mov64_reg(6, 1);
        a.load(MemSize::W, 7, 1, 0);
        a.load(MemSize::W, 8, 1, 4);
        a.mov64_reg(1, 7);
        a.alu64_imm(AluOp::Add, 1, 60);
        a.jmp_reg(JmpOp::Jgt, 1, 8, drop);
        // Move the head.
        a.mov64_reg(1, 6);
        a.mov64_imm(2, head_delta);
        a.call(BPF_XDP_ADJUST_HEAD);
        a.jmp_imm(JmpOp::Jne, 0, 0, drop);
        // Trim the tail.
        a.mov64_reg(1, 6);
        a.mov64_imm(2, tail_delta);
        a.call(BPF_XDP_ADJUST_TAIL);
        a.jmp_imm(JmpOp::Jne, 0, 0, drop);
        // Stamp the (new) first byte so the rewrite is observable.
        a.load(MemSize::W, 7, 6, 0);
        a.mov64_imm(2, 0x5a);
        a.store_reg(MemSize::B, 7, 0, 2);
        a.mov64_imm(0, 3);
        a.exit();
        a.bind(drop);
        a.mov64_imm(0, 1);
        a.exit();
        let program = Program::from_insns(a.into_insns());
        assert_equivalent_with(&program, CompilerOptions::default(), &packets(7, 16), |_| {});
    }
}

/// Long soak: a larger random-program campaign (run explicitly with
/// `cargo test --release -- --ignored soak`).
#[test]
#[ignore = "long soak; run explicitly"]
fn soak_random_programs() {
    let mut rng = Rng::seed_from_u64(0x50a4);
    for case in 0..400u64 {
        let rp = rand_program(&mut rng);
        let program = build(&rp);
        assert_equivalent_with(&program, CompilerOptions::default(), &packets(case, 32), |_| {});
    }
}
